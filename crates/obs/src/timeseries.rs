//! Windowed time-series telemetry: the flight recorder's storage layer.
//!
//! Aggregate histograms answer "how slow was the run"; they cannot
//! answer "when did throughput dip" or "did the retransmit storm line up
//! with the partition window". A [`TimeSeries`] chops simulated time
//! into fixed-width windows and accumulates three primitive shapes into
//! the window each sample lands in:
//!
//! * **counters** — monotonic deltas (calls completed, retransmissions,
//!   cache hits, bytes on a link),
//! * **gauges** — instantaneous levels sampled at transition points
//!   (calls in flight, queue depth, scheduler heap depth),
//! * **histograms** — full distributions per window (per-service
//!   latency, scheduler lag), reusing the log₂-bucket [`Histogram`].
//!
//! The store is a bounded ring: when more than `capacity` windows have
//! been touched, the oldest fall off *and are counted*, so a truncated
//! recording is never mistaken for a complete one (the same honesty
//! contract the trace ring keeps). All timestamps are simulated
//! nanoseconds, so the recording is exactly as deterministic as the
//! simulation that produced it.
//!
//! Series are free-form names; the conventions used by the workspace:
//!
//! | series                      | shape   | fed by                     |
//! |-----------------------------|---------|----------------------------|
//! | `calls_ok@<svc>`            | counter | span close (ok invokes)    |
//! | `calls_err@<svc>`           | counter | span close (failed invokes)|
//! | `latency@<svc>`             | hist    | span close (invoke dur)    |
//! | `retx@<svc>`                | counter | channel/client retransmits |
//! | `inflight@<svc>`            | gauge   | `rpc::Channel` window      |
//! | `queued@<svc>`              | gauge   | `rpc::Channel` backlog     |
//! | `cache_hit@<svc>`           | counter | caching proxy              |
//! | `cache_miss@<svc>`          | counter | caching proxy              |
//! | `link_bytes@n<a>->n<b>`     | counter | simnet send path           |
//! | `sched_lag`                 | hist    | scheduler dispatch loop    |
//! | `sched_depth`               | gauge   | scheduler event heap       |
//! | `processes_spawned`         | gauge   | simnet process spawn path  |
//! | `processes_peak`            | gauge   | simnet live high-water mark|
//!
//! A multi-domain scheduler suffixes its per-domain series with
//! `@d<domain>` (`sched_lag@d2`, `sched_depth@d0`,
//! `processes_spawned@d1`, `processes_current@d1`) so each domain's
//! stream stays deterministic regardless of how domains interleave; the
//! plain names above are the single-domain (default) spelling.

use std::collections::{BTreeMap, VecDeque};

use serde::{Deserialize, Serialize};

use crate::{Histogram, OpLatency};

/// Summary of one gauge inside one window.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct GaugeStat {
    /// The last level sampled in the window.
    pub last: u64,
    /// Smallest level sampled.
    pub min: u64,
    /// Largest level sampled.
    pub max: u64,
    /// Sum of sampled levels (for a mean over `samples`).
    pub sum: u64,
    /// How many samples landed in the window.
    pub samples: u64,
}

impl GaugeStat {
    fn observe(&mut self, value: u64) {
        if self.samples == 0 {
            self.min = value;
            self.max = value;
        } else {
            self.min = self.min.min(value);
            self.max = self.max.max(value);
        }
        self.last = value;
        self.sum = self.sum.saturating_add(value);
        self.samples += 1;
    }

    /// Mean sampled level, or 0 if the window saw no samples.
    pub fn mean(&self) -> u64 {
        self.sum.checked_div(self.samples).unwrap_or(0)
    }

    /// Folds `other` into `self` when merging writer lanes. Extrema,
    /// sum and sample count combine exactly; `last` is taken from
    /// `other` when it has samples (lanes are absorbed in ascending
    /// lane order, so "last" deterministically means "the last sample
    /// of the highest-indexed lane that sampled this window" — an
    /// approximation, since samples of concurrent lanes have no single
    /// total order within a window).
    fn absorb(&mut self, other: &GaugeStat) {
        if other.samples == 0 {
            return;
        }
        if self.samples == 0 {
            *self = *other;
            return;
        }
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        self.sum = self.sum.saturating_add(other.sum);
        self.samples += other.samples;
        self.last = other.last;
    }
}

/// One fixed-width window of accumulated samples.
#[derive(Debug, Clone, Default)]
struct Window {
    /// Window index: the window covers `[index*width, (index+1)*width)`.
    index: u64,
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, GaugeStat>,
    hists: BTreeMap<String, Histogram>,
}

/// The bounded windowed store. Normally owned by the
/// [`MetricsRegistry`](crate::MetricsRegistry); usable standalone in
/// tests.
#[derive(Debug, Clone)]
pub struct TimeSeries {
    width_ns: u64,
    capacity: usize,
    windows: VecDeque<Window>,
    /// Windows evicted from the front of the ring.
    evicted: u64,
    /// Samples that arrived for a window already evicted (out-of-order
    /// stragglers; structurally zero in a monotonic simulation).
    late_dropped: u64,
}

impl TimeSeries {
    /// A store with `width_ns`-wide windows keeping at most `capacity`
    /// of them. Width is clamped to ≥ 1ns, capacity to ≥ 1.
    pub fn new(width_ns: u64, capacity: usize) -> TimeSeries {
        TimeSeries {
            width_ns: width_ns.max(1),
            capacity: capacity.max(1),
            windows: VecDeque::new(),
            evicted: 0,
            late_dropped: 0,
        }
    }

    /// The configured window width.
    pub fn width_ns(&self) -> u64 {
        self.width_ns
    }

    /// The configured ring capacity (windows).
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Windows evicted so far.
    pub fn evicted(&self) -> u64 {
        self.evicted
    }

    /// Merges per-lane recordings into one store, deterministically.
    ///
    /// Windows are united by index: counters sum, histograms merge
    /// bucket-wise, gauges combine via [`GaugeStat::absorb`] in
    /// ascending lane order. Eviction and straggler counts sum — a
    /// window evicted from *any* lane's ring still counts as truncation
    /// even if another lane retained its copy of that window index.
    /// All lanes must share the width (enforced by the registry, which
    /// creates them together); the first lane's width is used.
    pub fn merged(lanes: &[&TimeSeries]) -> TimeSeries {
        let width_ns = lanes.first().map_or(1, |l| l.width_ns);
        let mut by_index: BTreeMap<u64, Window> = BTreeMap::new();
        let mut evicted = 0u64;
        let mut late_dropped = 0u64;
        for lane in lanes {
            debug_assert_eq!(lane.width_ns, width_ns, "lanes share a window width");
            evicted += lane.evicted;
            late_dropped += lane.late_dropped;
            for w in &lane.windows {
                let merged = by_index.entry(w.index).or_insert_with(|| Window {
                    index: w.index,
                    ..Window::default()
                });
                for (name, delta) in &w.counters {
                    *merged.counters.entry(name.clone()).or_insert(0) += delta;
                }
                for (name, g) in &w.gauges {
                    merged.gauges.entry(name.clone()).or_default().absorb(g);
                }
                for (name, h) in &w.hists {
                    merged.hists.entry(name.clone()).or_default().merge(h);
                }
            }
        }
        let windows: VecDeque<Window> = by_index.into_values().collect();
        TimeSeries {
            width_ns,
            capacity: windows.len().max(1),
            windows,
            evicted,
            late_dropped,
        }
    }

    /// The window covering `at_ns`, creating (and possibly evicting) as
    /// needed. Windows are kept sparse: an index with no samples is
    /// never materialized.
    fn window_mut(&mut self, at_ns: u64) -> Option<&mut Window> {
        let index = at_ns / self.width_ns;
        // Samples arrive in non-decreasing sim time, so the match is
        // almost always the back window; scan backwards for the rare
        // same-instant straggler.
        match self.windows.back() {
            Some(back) if back.index == index => {}
            Some(back) if back.index > index => {
                // Out-of-order sample: find its window if it still
                // exists, count it as dropped if it was evicted.
                return match self.windows.iter_mut().rev().find(|w| w.index <= index) {
                    Some(w) if w.index == index => Some(w),
                    _ => {
                        self.late_dropped += 1;
                        None
                    }
                };
            }
            _ => {
                self.windows.push_back(Window {
                    index,
                    ..Window::default()
                });
                if self.windows.len() > self.capacity {
                    self.windows.pop_front();
                    self.evicted += 1;
                }
            }
        }
        self.windows.back_mut()
    }

    /// Adds `delta` to counter `series` in the window covering `at_ns`.
    pub fn add(&mut self, at_ns: u64, series: &str, delta: u64) {
        if let Some(w) = self.window_mut(at_ns) {
            *w.counters.entry(series.to_owned()).or_insert(0) += delta;
        }
    }

    /// Samples gauge `series` at level `value` in the window covering
    /// `at_ns`.
    pub fn gauge(&mut self, at_ns: u64, series: &str, value: u64) {
        if let Some(w) = self.window_mut(at_ns) {
            w.gauges
                .entry(series.to_owned())
                .or_default()
                .observe(value);
        }
    }

    /// Records `value` into histogram `series` in the window covering
    /// `at_ns`.
    pub fn observe(&mut self, at_ns: u64, series: &str, value: u64) {
        if let Some(w) = self.window_mut(at_ns) {
            w.hists.entry(series.to_owned()).or_default().record(value);
        }
    }

    /// Snapshots the ring into a serializable report.
    pub fn report(&self) -> TimeSeriesReport {
        TimeSeriesReport {
            width_ns: self.width_ns,
            windows_evicted: self.evicted,
            late_dropped: self.late_dropped,
            windows: self
                .windows
                .iter()
                .map(|w| WindowReport {
                    start_ns: w.index * self.width_ns,
                    counters: w.counters.clone(),
                    gauges: w.gauges.clone(),
                    hists: w
                        .hists
                        .iter()
                        .map(|(k, h)| (k.clone(), h.summary()))
                        .collect(),
                })
                .collect(),
        }
    }
}

/// One exported window: everything that landed in
/// `[start_ns, start_ns + width_ns)`.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct WindowReport {
    /// Window start (simulated nanoseconds).
    pub start_ns: u64,
    /// Counter totals for the window.
    pub counters: BTreeMap<String, u64>,
    /// Gauge summaries for the window.
    pub gauges: BTreeMap<String, GaugeStat>,
    /// Histogram summaries for the window.
    pub hists: BTreeMap<String, OpLatency>,
}

/// The exported flight recording: a run's windows in time order.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct TimeSeriesReport {
    /// Window width (simulated nanoseconds).
    pub width_ns: u64,
    /// Windows the bounded ring evicted (0 = recording is complete).
    pub windows_evicted: u64,
    /// Samples dropped because their window was already evicted.
    pub late_dropped: u64,
    /// Surviving windows, oldest first.
    pub windows: Vec<WindowReport>,
}

impl TimeSeriesReport {
    /// Sums counter `series` across every surviving window.
    pub fn counter_total(&self, series: &str) -> u64 {
        self.windows
            .iter()
            .filter_map(|w| w.counters.get(series))
            .sum()
    }

    /// Largest `max` seen for histogram `series` across windows.
    pub fn hist_max(&self, series: &str) -> u64 {
        self.windows
            .iter()
            .filter_map(|w| w.hists.get(series))
            .map(|h| h.max_ns)
            .max()
            .unwrap_or(0)
    }

    /// The sorted set of series names appearing anywhere in the recording.
    pub fn series_names(&self) -> Vec<String> {
        let mut names: Vec<String> = self
            .windows
            .iter()
            .flat_map(|w| {
                w.counters
                    .keys()
                    .chain(w.gauges.keys())
                    .chain(w.hists.keys())
            })
            .cloned()
            .collect();
        names.sort();
        names.dedup();
        names
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn samples_land_in_their_windows() {
        let mut ts = TimeSeries::new(1_000, 64);
        ts.add(0, "calls", 1);
        ts.add(999, "calls", 1);
        ts.add(1_000, "calls", 1);
        ts.gauge(500, "depth", 4);
        ts.gauge(600, "depth", 2);
        ts.observe(2_500, "lat", 42);
        let r = ts.report();
        assert_eq!(r.windows.len(), 3);
        assert_eq!(r.windows[0].start_ns, 0);
        assert_eq!(r.windows[0].counters["calls"], 2);
        assert_eq!(r.windows[1].start_ns, 1_000);
        assert_eq!(r.windows[1].counters["calls"], 1);
        let g = r.windows[0].gauges["depth"];
        assert_eq!((g.min, g.max, g.last, g.samples), (2, 4, 2, 2));
        assert_eq!(g.mean(), 3);
        assert_eq!(r.windows[2].hists["lat"].max_ns, 42);
        assert_eq!(r.counter_total("calls"), 3);
    }

    #[test]
    fn ring_evicts_and_counts() {
        let mut ts = TimeSeries::new(100, 2);
        for i in 0..5u64 {
            ts.add(i * 100, "c", 1);
        }
        let r = ts.report();
        assert_eq!(r.windows.len(), 2);
        assert_eq!(r.windows_evicted, 3);
        assert_eq!(r.windows[0].start_ns, 300);
        // A straggler for an evicted window is counted, not resurrected.
        let mut ts2 = TimeSeries::new(100, 2);
        ts2.add(0, "c", 1);
        ts2.add(100, "c", 1);
        ts2.add(200, "c", 1); // evicts window 0
        ts2.add(50, "c", 1); // straggler for the evicted window
        let r2 = ts2.report();
        assert_eq!(r2.late_dropped, 1);
        assert_eq!(r2.counter_total("c"), 2);
    }

    #[test]
    fn sparse_windows_skip_quiet_time() {
        let mut ts = TimeSeries::new(1_000, 64);
        ts.add(0, "c", 1);
        ts.add(10_000, "c", 1);
        let r = ts.report();
        assert_eq!(r.windows.len(), 2, "no windows materialized for the gap");
        assert_eq!(r.windows[1].start_ns, 10_000);
    }

    #[test]
    fn same_instant_straggler_finds_live_window() {
        let mut ts = TimeSeries::new(1_000, 8);
        ts.add(1_500, "a", 1);
        ts.add(2_500, "a", 1);
        // A sample for the previous (still live) window.
        ts.add(1_600, "a", 1);
        let r = ts.report();
        assert_eq!(r.windows[0].counters["a"], 2);
        assert_eq!(r.late_dropped, 0);
    }

    #[test]
    fn series_names_are_sorted_and_deduped() {
        let mut ts = TimeSeries::new(1_000, 8);
        ts.add(0, "b", 1);
        ts.gauge(0, "a", 1);
        ts.observe(1_500, "b", 1);
        assert_eq!(ts.report().series_names(), vec!["a", "b"]);
    }

    #[test]
    fn lane_merge_unites_windows_deterministically() {
        let mut a = TimeSeries::new(1_000, 8);
        let mut b = TimeSeries::new(1_000, 8);
        a.add(100, "c", 1);
        a.gauge(150, "g", 4);
        a.observe(200, "h", 10);
        b.add(120, "c", 2);
        b.gauge(160, "g", 8);
        b.add(1_500, "c", 5);
        let r = TimeSeries::merged(&[&a, &b]).report();
        assert_eq!(r.windows.len(), 2);
        assert_eq!(r.windows[0].counters["c"], 3);
        let g = r.windows[0].gauges["g"];
        assert_eq!((g.min, g.max, g.sum, g.samples), (4, 8, 12, 2));
        assert_eq!(g.last, 8, "highest lane's last sample wins");
        assert_eq!(r.windows[0].hists["h"].count, 1);
        assert_eq!(r.windows[1].start_ns, 1_000);
        assert_eq!(r.windows[1].counters["c"], 5);
        // Merging a single lane reproduces its own report.
        assert_eq!(
            TimeSeries::merged(&[&a]).report().windows.len(),
            a.report().windows.len()
        );
    }

    #[test]
    fn zero_width_clamps() {
        let mut ts = TimeSeries::new(0, 0);
        ts.add(5, "c", 1);
        let r = ts.report();
        assert_eq!(r.width_ns, 1);
        assert_eq!(r.windows[0].start_ns, 5);
    }
}
