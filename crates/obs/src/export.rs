//! Trace exporters: Chrome Trace Format JSON and a compact JSONL log.
//!
//! * [`to_chrome_json`] emits the Trace Event Format understood by
//!   Perfetto / `chrome://tracing`: one *process* track per context
//!   (each service gets a track, each simulated node gets a track),
//!   spans as complete (`"ph":"X"`) duration events laid out on
//!   non-overlapping thread lanes, network events as instants, and
//!   matched send→deliver pairs as flow arrows (`"s"`/`"f"`).
//! * [`to_jsonl`] / [`from_jsonl`] round-trip the full causal trace
//!   through a line-per-event log, so `tracectl analyze` can work on a
//!   file long after the simulation is gone.
//! * [`validate_chrome`] structurally checks an exported Chrome trace —
//!   the CI smoke test fails on malformed output.

use std::collections::{BTreeMap, HashMap, VecDeque};
use std::fmt::Write as _;

use crate::json::{self, Json};
use crate::timeseries::TimeSeriesReport;
use crate::trace::{CausalEvent, CausalTrace, Loc, NetEvent, NetEventKind};
use crate::{SpanId, SpanKind, SpanRecord};

// ---------------------------------------------------------------------------
// Chrome Trace Format
// ---------------------------------------------------------------------------

/// Where a network event is drawn: the track of the node it happened on.
fn net_event_site(e: &NetEvent) -> Option<(Loc, &'static str)> {
    match &e.kind {
        NetEventKind::Sent { src, .. } => Some((*src, "sent")),
        NetEventKind::Delivered { dst, .. } => Some((*dst, "delivered")),
        NetEventKind::Dropped { src, .. } => Some((*src, "dropped")),
        NetEventKind::Blackholed { src, .. } => Some((*src, "blackholed")),
        NetEventKind::Retransmit { src, .. } => Some((*src, "retransmit")),
        NetEventKind::Batched { src, .. } => Some((*src, "batched")),
        NetEventKind::Forwarded { from, .. } => Some((*from, "forwarded")),
        NetEventKind::ServerExecute { .. }
        | NetEventKind::ProxyCacheHit { .. }
        | NetEventKind::ProxyCacheMiss { .. }
        | NetEventKind::Migrated { .. } => None,
    }
}

/// The process-track name a net event belongs to when it has no
/// node site (service-level events).
fn net_event_service(e: &NetEvent) -> Option<&str> {
    match &e.kind {
        NetEventKind::ServerExecute { service, .. }
        | NetEventKind::ProxyCacheHit { service, .. }
        | NetEventKind::ProxyCacheMiss { service, .. }
        | NetEventKind::Migrated { service, .. } => Some(service),
        _ => None,
    }
}

fn micros(ns: u64) -> f64 {
    ns as f64 / 1000.0
}

struct ChromeWriter {
    out: String,
    first: bool,
    /// process-track name → pid (1-based, dense).
    pids: BTreeMap<String, u64>,
}

impl ChromeWriter {
    fn new() -> ChromeWriter {
        ChromeWriter {
            out: String::from("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n"),
            first: true,
            pids: BTreeMap::new(),
        }
    }

    fn pid(&mut self, track: &str) -> u64 {
        if let Some(&p) = self.pids.get(track) {
            return p;
        }
        let p = self.pids.len() as u64 + 1;
        self.pids.insert(track.to_owned(), p);
        p
    }

    fn event(&mut self, body: &str) {
        if !self.first {
            self.out.push_str(",\n");
        }
        self.first = false;
        self.out.push('{');
        self.out.push_str(body);
        self.out.push('}');
    }

    fn finish(mut self) -> String {
        // Metadata events naming every track, emitted last (Chrome does
        // not care about ordering of "M" events).
        let pids: Vec<(String, u64)> = self
            .pids
            .iter()
            .map(|(name, &pid)| (name.clone(), pid))
            .collect();
        for (name, pid) in pids {
            self.event(&format!(
                "\"name\":\"process_name\",\"ph\":\"M\",\"pid\":{pid},\"tid\":0,\
                 \"args\":{{\"name\":{}}}",
                json::quote(&name)
            ));
        }
        self.out.push_str("\n]}\n");
        self.out
    }
}

/// Exports the trace as Chrome Trace Format JSON.
///
/// Load the result in [Perfetto](https://ui.perfetto.dev) or
/// `chrome://tracing`. Spans whose service is `S` land on the `S`
/// process track; network instants land on their node's `node N` track
/// with the port as the thread id.
pub fn to_chrome_json(trace: &CausalTrace) -> String {
    let mut w = ChromeWriter::new();

    // Spans → "X" complete events on greedy non-overlapping lanes.
    let mut lanes: HashMap<u64, Vec<u64>> = HashMap::new(); // pid → lane end times
    for ev in &trace.events {
        let span = match ev {
            CausalEvent::Span(s) => s,
            CausalEvent::Net(_) => continue,
        };
        let pid = w.pid(&span.service);
        let (ts, dur) = match span.end_ns {
            Some(end) => (span.start_ns, end.saturating_sub(span.start_ns)),
            // Open span: zero-length marker so it is still visible.
            None => (span.start_ns, 0),
        };
        let lane_ends = lanes.entry(pid).or_default();
        let lane = match lane_ends.iter().position(|&end| end <= ts) {
            Some(i) => {
                lane_ends[i] = ts + dur;
                i
            }
            None => {
                lane_ends.push(ts + dur);
                lane_ends.len() - 1
            }
        };
        let mut body = String::new();
        let _ = write!(
            body,
            "\"name\":{},\"cat\":\"span\",\"ph\":\"X\",\"ts\":{:.3},\"dur\":{:.3},\
             \"pid\":{},\"tid\":{},\"args\":{{\"span\":{},\"parent\":{},\"kind\":\"{}\"",
            json::quote(&format!("{}/{}", span.service, span.op)),
            micros(ts),
            micros(dur),
            pid,
            lane,
            span.id.raw(),
            span.parent.raw(),
            span.kind.label(),
        );
        if let Some(ok) = span.ok {
            let _ = write!(body, ",\"ok\":{ok}");
        }
        if span.retransmissions > 0 {
            let _ = write!(body, ",\"retx\":{}", span.retransmissions);
        }
        body.push('}');
        w.event(&body);
    }

    // Network events → instants, plus flow arrows for send→deliver.
    let mut flow_id = 0u64;
    let mut pending_sends: HashMap<(u64, Loc, Loc), VecDeque<(u64, u64)>> = HashMap::new();
    for e in trace.net_events() {
        let (pid, tid) = match net_event_site(e) {
            Some((loc, _)) => (w.pid(&format!("node {}", loc.node)), loc.port as u64),
            None => match net_event_service(e) {
                Some(service) => (w.pid(service), 0),
                None => continue,
            },
        };
        let mut args = String::new();
        let _ = write!(args, "\"span\":{}", e.span.raw());
        match &e.kind {
            NetEventKind::Sent { src, dst, bytes }
            | NetEventKind::Delivered { src, dst, bytes } => {
                let _ = write!(
                    args,
                    ",\"src\":\"{src}\",\"dst\":\"{dst}\",\"bytes\":{bytes}"
                );
            }
            NetEventKind::Dropped { src, dst }
            | NetEventKind::Blackholed { src, dst }
            | NetEventKind::Retransmit { src, dst, .. } => {
                let _ = write!(args, ",\"src\":\"{src}\",\"dst\":\"{dst}\"");
            }
            NetEventKind::Batched { src, dst, count } => {
                let _ = write!(
                    args,
                    ",\"src\":\"{src}\",\"dst\":\"{dst}\",\"count\":{count}"
                );
            }
            NetEventKind::ServerExecute { op, dur_ns, .. } => {
                let _ = write!(args, ",\"op\":{},\"dur_ns\":{dur_ns}", json::quote(op));
            }
            NetEventKind::ProxyCacheHit { op, .. } | NetEventKind::ProxyCacheMiss { op, .. } => {
                let _ = write!(args, ",\"op\":{}", json::quote(op));
            }
            NetEventKind::Forwarded { from, to } => {
                let _ = write!(args, ",\"from\":\"{from}\",\"to\":\"{to}\"");
            }
            NetEventKind::Migrated { from, to, .. } => {
                let _ = write!(args, ",\"from\":\"{from}\",\"to\":\"{to}\"");
            }
        }
        w.event(&format!(
            "\"name\":\"{}\",\"cat\":\"net\",\"ph\":\"i\",\"s\":\"t\",\"ts\":{:.3},\
             \"pid\":{},\"tid\":{},\"args\":{{{}}}",
            e.kind.tag(),
            micros(e.at_ns),
            pid,
            tid,
            args
        ));

        // Flow arrows: a Delivered matches the oldest unmatched Sent
        // with the same (span, src, dst).
        match &e.kind {
            NetEventKind::Sent { src, dst, .. } => {
                pending_sends
                    .entry((e.span.raw(), *src, *dst))
                    .or_default()
                    .push_back((e.at_ns, pid));
            }
            NetEventKind::Delivered { src, dst, .. } => {
                let sent = pending_sends
                    .get_mut(&(e.span.raw(), *src, *dst))
                    .and_then(|q| q.pop_front());
                if let Some((sent_ns, _)) = sent {
                    flow_id += 1;
                    let src_pid = w.pid(&format!("node {}", src.node));
                    let dst_pid = w.pid(&format!("node {}", dst.node));
                    w.event(&format!(
                        "\"name\":\"msg\",\"cat\":\"flow\",\"ph\":\"s\",\"id\":{},\
                         \"ts\":{:.3},\"pid\":{},\"tid\":{}",
                        flow_id,
                        micros(sent_ns),
                        src_pid,
                        src.port
                    ));
                    w.event(&format!(
                        "\"name\":\"msg\",\"cat\":\"flow\",\"ph\":\"f\",\"bp\":\"e\",\
                         \"id\":{},\"ts\":{:.3},\"pid\":{},\"tid\":{}",
                        flow_id,
                        micros(e.at_ns),
                        dst_pid,
                        dst.port
                    ));
                }
            }
            _ => {}
        }
    }

    w.finish()
}

/// Summary returned by [`validate_chrome`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ChromeSummary {
    /// Total events (excluding metadata).
    pub events: usize,
    /// Duration (`"X"`) events.
    pub spans: usize,
    /// Instant (`"i"`) events.
    pub instants: usize,
    /// Flow (`"s"`/`"f"`) events.
    pub flows: usize,
    /// Distinct process tracks.
    pub tracks: usize,
}

/// Structurally validates a Chrome Trace Format document.
///
/// Checks the shape the Trace Event Format requires: a `traceEvents`
/// array whose members carry a one-character `ph`, integer `pid`/`tid`,
/// a numeric `ts` (except metadata), a non-negative `dur` on `X`
/// events, `id` on flow events — and that every track in use is named
/// by a `process_name` metadata event (one track per context).
///
/// # Errors
///
/// Returns a description of the first violation found.
pub fn validate_chrome(text: &str) -> Result<ChromeSummary, String> {
    let doc = json::parse(text).map_err(|e| e.to_string())?;
    let events = doc
        .get("traceEvents")
        .and_then(Json::as_arr)
        .ok_or("missing traceEvents array")?;
    if events.is_empty() {
        return Err("empty traceEvents".into());
    }
    let mut summary = ChromeSummary::default();
    let mut named_pids = Vec::new();
    let mut used_pids = Vec::new();
    for (i, ev) in events.iter().enumerate() {
        let at = |msg: &str| format!("traceEvents[{i}]: {msg}");
        let obj = ev.as_obj().ok_or_else(|| at("not an object"))?;
        let ph = obj
            .get("ph")
            .and_then(Json::as_str)
            .ok_or_else(|| at("missing ph"))?;
        if ph.len() != 1 || !"XBEiIsfMbenS".contains(ph) {
            return Err(at(&format!("bad ph {ph:?}")));
        }
        let pid = ev.u64_field("pid").ok_or_else(|| at("missing pid"))?;
        ev.u64_field("tid").ok_or_else(|| at("missing tid"))?;
        if ph == "M" {
            if ev.str_field("name") == Some("process_name") {
                let named = ev
                    .get("args")
                    .and_then(|a| a.str_field("name"))
                    .ok_or_else(|| at("process_name without args.name"))?;
                if named.is_empty() {
                    return Err(at("empty process name"));
                }
                named_pids.push(pid);
            }
            continue;
        }
        ev.get("ts")
            .and_then(Json::as_f64)
            .ok_or_else(|| at("missing ts"))?;
        used_pids.push(pid);
        summary.events += 1;
        match ph {
            "X" => {
                let dur = ev
                    .get("dur")
                    .and_then(Json::as_f64)
                    .ok_or_else(|| at("X without dur"))?;
                if dur < 0.0 {
                    return Err(at("negative dur"));
                }
                ev.str_field("name").ok_or_else(|| at("X without name"))?;
                summary.spans += 1;
            }
            "i" | "I" => summary.instants += 1,
            "s" | "f" => {
                ev.u64_field("id").ok_or_else(|| at("flow without id"))?;
                summary.flows += 1;
            }
            _ => {}
        }
    }
    named_pids.sort_unstable();
    named_pids.dedup();
    used_pids.sort_unstable();
    used_pids.dedup();
    for pid in &used_pids {
        if named_pids.binary_search(pid).is_err() {
            return Err(format!("pid {pid} has events but no process_name metadata"));
        }
    }
    summary.tracks = used_pids.len();
    Ok(summary)
}

// ---------------------------------------------------------------------------
// JSONL
// ---------------------------------------------------------------------------

fn jsonl_loc(out: &mut String, prefix: &str, loc: Loc) {
    let _ = write!(
        out,
        ",\"{prefix}_n\":{},\"{prefix}_p\":{}",
        loc.node, loc.port
    );
}

/// Exports the trace as one JSON object per line.
///
/// The first line is a `{"k":"meta",...}` header carrying the
/// eviction/sampling counters; every following line is either a
/// `{"k":"span",...}` record or a network event keyed by
/// [`NetEventKind::tag`]. [`from_jsonl`] reads the format back.
pub fn to_jsonl(trace: &CausalTrace) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{{\"k\":\"meta\",\"evicted\":{},\"sampled_out_spans\":{},\"sampled_out_events\":{}}}",
        trace.evicted, trace.sampled_out_spans, trace.sampled_out_events
    );
    for ev in &trace.events {
        match ev {
            CausalEvent::Span(s) => {
                let _ = write!(
                    out,
                    "{{\"k\":\"span\",\"t\":{},\"id\":{},\"parent\":{},\"kind\":\"{}\",\
                     \"service\":{},\"op\":{},\"retx\":{},\"replies\":{}",
                    s.start_ns,
                    s.id.raw(),
                    s.parent.raw(),
                    s.kind.label(),
                    json::quote(&s.service),
                    json::quote(&s.op),
                    s.retransmissions,
                    s.replies
                );
                if let Some(end) = s.end_ns {
                    let _ = write!(out, ",\"end_ns\":{end}");
                }
                if let Some(ok) = s.ok {
                    let _ = write!(out, ",\"ok\":{ok}");
                }
                out.push_str("}\n");
            }
            CausalEvent::Net(e) => {
                let _ = write!(
                    out,
                    "{{\"k\":\"{}\",\"t\":{},\"span\":{}",
                    e.kind.tag(),
                    e.at_ns,
                    e.span.raw()
                );
                match &e.kind {
                    NetEventKind::Sent { src, dst, bytes }
                    | NetEventKind::Delivered { src, dst, bytes } => {
                        jsonl_loc(&mut out, "src", *src);
                        jsonl_loc(&mut out, "dst", *dst);
                        let _ = write!(out, ",\"bytes\":{bytes}");
                    }
                    NetEventKind::Dropped { src, dst } | NetEventKind::Blackholed { src, dst } => {
                        jsonl_loc(&mut out, "src", *src);
                        jsonl_loc(&mut out, "dst", *dst);
                    }
                    NetEventKind::Retransmit { src, dst, attempt } => {
                        jsonl_loc(&mut out, "src", *src);
                        jsonl_loc(&mut out, "dst", *dst);
                        let _ = write!(out, ",\"attempt\":{attempt}");
                    }
                    NetEventKind::Batched { src, dst, count } => {
                        jsonl_loc(&mut out, "src", *src);
                        jsonl_loc(&mut out, "dst", *dst);
                        let _ = write!(out, ",\"count\":{count}");
                    }
                    NetEventKind::ServerExecute {
                        service,
                        op,
                        dur_ns,
                    } => {
                        let _ = write!(
                            out,
                            ",\"service\":{},\"op\":{},\"dur_ns\":{dur_ns}",
                            json::quote(service),
                            json::quote(op)
                        );
                    }
                    NetEventKind::ProxyCacheHit { service, op }
                    | NetEventKind::ProxyCacheMiss { service, op } => {
                        let _ = write!(
                            out,
                            ",\"service\":{},\"op\":{}",
                            json::quote(service),
                            json::quote(op)
                        );
                    }
                    NetEventKind::Forwarded { from, to } => {
                        jsonl_loc(&mut out, "from", *from);
                        jsonl_loc(&mut out, "to", *to);
                    }
                    NetEventKind::Migrated { service, from, to } => {
                        let _ = write!(out, ",\"service\":{}", json::quote(service));
                        jsonl_loc(&mut out, "from", *from);
                        jsonl_loc(&mut out, "to", *to);
                    }
                }
                out.push_str("}\n");
            }
        }
    }
    out
}

fn parse_loc(v: &Json, prefix: &str) -> Result<Loc, String> {
    let node = v
        .u64_field(&format!("{prefix}_n"))
        .ok_or_else(|| format!("missing {prefix}_n"))?;
    let port = v
        .u64_field(&format!("{prefix}_p"))
        .ok_or_else(|| format!("missing {prefix}_p"))?;
    Ok(Loc::new(node as u32, port as u32))
}

fn parse_span_line(v: &Json) -> Result<SpanRecord, String> {
    let kind = match v.str_field("kind") {
        Some("invoke") => SpanKind::Invoke,
        Some("dispatch") => SpanKind::Dispatch,
        Some("oneway") => SpanKind::Oneway,
        other => return Err(format!("bad span kind {other:?}")),
    };
    Ok(SpanRecord {
        id: SpanId(v.u64_field("id").ok_or("span missing id")?),
        parent: SpanId(v.u64_field("parent").unwrap_or(0)),
        kind,
        service: v.str_field("service").unwrap_or("").to_owned(),
        op: v.str_field("op").unwrap_or("").to_owned(),
        start_ns: v.u64_field("t").ok_or("span missing t")?,
        end_ns: v.u64_field("end_ns"),
        ok: v.get("ok").and_then(Json::as_bool),
        retransmissions: v.u64_field("retx").unwrap_or(0),
        replies: v.u64_field("replies").unwrap_or(0),
    })
}

/// Reads a JSONL trace produced by [`to_jsonl`] back into a
/// [`CausalTrace`].
///
/// # Errors
///
/// Returns a message naming the first malformed line.
pub fn from_jsonl(text: &str) -> Result<CausalTrace, String> {
    let mut trace = CausalTrace::default();
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let v = json::parse(line).map_err(|e| format!("line {}: {e}", lineno + 1))?;
        let err = |msg: String| format!("line {}: {msg}", lineno + 1);
        let kind = v.str_field("k").ok_or_else(|| err("missing k".into()))?;
        match kind {
            "meta" => {
                trace.evicted = v.u64_field("evicted").unwrap_or(0);
                trace.sampled_out_spans = v.u64_field("sampled_out_spans").unwrap_or(0);
                trace.sampled_out_events = v.u64_field("sampled_out_events").unwrap_or(0);
                continue;
            }
            "span" => {
                trace
                    .events
                    .push(CausalEvent::Span(parse_span_line(&v).map_err(err)?));
                continue;
            }
            _ => {}
        }
        let at_ns = v.u64_field("t").ok_or_else(|| err("missing t".into()))?;
        let span = SpanId(v.u64_field("span").unwrap_or(0));
        let net_kind = match kind {
            "sent" => NetEventKind::Sent {
                src: parse_loc(&v, "src").map_err(&err)?,
                dst: parse_loc(&v, "dst").map_err(&err)?,
                bytes: v.u64_field("bytes").unwrap_or(0),
            },
            "delivered" => NetEventKind::Delivered {
                src: parse_loc(&v, "src").map_err(&err)?,
                dst: parse_loc(&v, "dst").map_err(&err)?,
                bytes: v.u64_field("bytes").unwrap_or(0),
            },
            "dropped" => NetEventKind::Dropped {
                src: parse_loc(&v, "src").map_err(&err)?,
                dst: parse_loc(&v, "dst").map_err(&err)?,
            },
            "blackholed" => NetEventKind::Blackholed {
                src: parse_loc(&v, "src").map_err(&err)?,
                dst: parse_loc(&v, "dst").map_err(&err)?,
            },
            "retransmit" => NetEventKind::Retransmit {
                src: parse_loc(&v, "src").map_err(&err)?,
                dst: parse_loc(&v, "dst").map_err(&err)?,
                attempt: v.u64_field("attempt").unwrap_or(0) as u32,
            },
            "batched" => NetEventKind::Batched {
                src: parse_loc(&v, "src").map_err(&err)?,
                dst: parse_loc(&v, "dst").map_err(&err)?,
                count: v.u64_field("count").unwrap_or(0),
            },
            "server_execute" => NetEventKind::ServerExecute {
                service: v.str_field("service").unwrap_or("").to_owned(),
                op: v.str_field("op").unwrap_or("").to_owned(),
                dur_ns: v.u64_field("dur_ns").unwrap_or(0),
            },
            "cache_hit" => NetEventKind::ProxyCacheHit {
                service: v.str_field("service").unwrap_or("").to_owned(),
                op: v.str_field("op").unwrap_or("").to_owned(),
            },
            "cache_miss" => NetEventKind::ProxyCacheMiss {
                service: v.str_field("service").unwrap_or("").to_owned(),
                op: v.str_field("op").unwrap_or("").to_owned(),
            },
            "forwarded" => NetEventKind::Forwarded {
                from: parse_loc(&v, "from").map_err(&err)?,
                to: parse_loc(&v, "to").map_err(&err)?,
            },
            "migrated" => NetEventKind::Migrated {
                service: v.str_field("service").unwrap_or("").to_owned(),
                from: parse_loc(&v, "from").map_err(&err)?,
                to: parse_loc(&v, "to").map_err(&err)?,
            },
            other => return Err(err(format!("unknown event kind {other:?}"))),
        };
        trace.events.push(CausalEvent::Net(NetEvent {
            at_ns,
            span,
            kind: net_kind,
        }));
    }
    trace.events.sort_by_key(CausalEvent::at_ns);
    Ok(trace)
}

// ---------------------------------------------------------------------------
// Flight-recorder time series
// ---------------------------------------------------------------------------

/// Column header of the time-series CSV, in long format: one row per
/// `(window, series)` pair. Counter rows fill only `value`; gauge rows
/// fill `value` (last level), `min`, `max`, `mean` and `count`
/// (samples); histogram rows fill everything but `value`.
pub const TIMESERIES_CSV_HEADER: &str = "start_ns,kind,series,value,min,max,mean,p50,p95,p99,count";

/// Exports a flight recording as CSV in long format, windows in time
/// order and series sorted within each window. The layout imports
/// directly into spreadsheet tools and plotters; the `kind` column
/// (`counter` / `gauge` / `hist`) tells rows apart.
pub fn timeseries_to_csv(ts: &TimeSeriesReport) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "# width_ns={} windows_evicted={} late_dropped={}",
        ts.width_ns, ts.windows_evicted, ts.late_dropped
    );
    out.push_str(TIMESERIES_CSV_HEADER);
    out.push('\n');
    for w in &ts.windows {
        for (name, v) in &w.counters {
            let _ = writeln!(out, "{},counter,{name},{v},,,,,,,", w.start_ns);
        }
        for (name, g) in &w.gauges {
            let _ = writeln!(
                out,
                "{},gauge,{name},{},{},{},{},,,,{}",
                w.start_ns,
                g.last,
                g.min,
                g.max,
                g.mean(),
                g.samples
            );
        }
        for (name, h) in &w.hists {
            let _ = writeln!(
                out,
                "{},hist,{name},,{},{},{},{},{},{},{}",
                w.start_ns, h.min_ns, h.max_ns, h.mean_ns, h.p50_ns, h.p95_ns, h.p99_ns, h.count
            );
        }
    }
    out
}

/// Summary returned by [`validate_timeseries_csv`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TimeSeriesCsvSummary {
    /// Data rows (excluding comment and header).
    pub rows: usize,
    /// Distinct window start times.
    pub windows: usize,
    /// Distinct series names.
    pub series: usize,
    /// Counter rows.
    pub counters: usize,
    /// Gauge rows.
    pub gauges: usize,
    /// Histogram rows.
    pub hists: usize,
}

/// Structurally validates a time-series CSV produced by
/// [`timeseries_to_csv`]: exact header, 11 columns per row, numeric
/// fields where the row kind requires them, non-decreasing window start
/// times, and per-row sanity (`min ≤ max`, histogram quantiles ordered).
///
/// # Errors
///
/// Returns a description of the first violation found.
pub fn validate_timeseries_csv(text: &str) -> Result<TimeSeriesCsvSummary, String> {
    let mut lines = text.lines();
    let comment = lines.next().ok_or("empty file")?;
    if !comment.starts_with("# width_ns=") {
        return Err("missing width_ns comment line".into());
    }
    let header = lines.next().ok_or("missing header")?;
    if header != TIMESERIES_CSV_HEADER {
        return Err(format!("bad header {header:?}"));
    }
    let mut summary = TimeSeriesCsvSummary::default();
    let mut starts: Vec<u64> = Vec::new();
    let mut names: Vec<&str> = Vec::new();
    let mut last_start = 0u64;
    for (i, line) in lines.enumerate() {
        let at = |msg: &str| format!("row {}: {msg}", i + 1);
        if line.is_empty() {
            continue;
        }
        let cols: Vec<&str> = line.split(',').collect();
        if cols.len() != 11 {
            return Err(at(&format!("{} columns, want 11", cols.len())));
        }
        let num = |s: &str, what: &str| -> Result<u64, String> {
            s.parse::<u64>()
                .map_err(|_| at(&format!("bad {what} {s:?}")))
        };
        let start = num(cols[0], "start_ns")?;
        if start < last_start {
            return Err(at("window start went backwards"));
        }
        last_start = start;
        starts.push(start);
        if cols[2].is_empty() {
            return Err(at("empty series name"));
        }
        names.push(cols[2]);
        match cols[1] {
            "counter" => {
                num(cols[3], "counter value")?;
                summary.counters += 1;
            }
            "gauge" => {
                num(cols[3], "gauge last")?;
                let min = num(cols[4], "gauge min")?;
                let max = num(cols[5], "gauge max")?;
                if min > max {
                    return Err(at("gauge min > max"));
                }
                num(cols[10], "gauge samples")?;
                summary.gauges += 1;
            }
            "hist" => {
                let min = num(cols[4], "hist min")?;
                let max = num(cols[5], "hist max")?;
                let p50 = num(cols[7], "p50")?;
                let p95 = num(cols[8], "p95")?;
                let p99 = num(cols[9], "p99")?;
                if min > max || p50 > p95 || p95 > p99 || p99 > max {
                    return Err(at("histogram quantiles out of order"));
                }
                num(cols[10], "hist count")?;
                summary.hists += 1;
            }
            other => return Err(at(&format!("unknown row kind {other:?}"))),
        }
        summary.rows += 1;
    }
    starts.dedup();
    summary.windows = starts.len();
    names.sort_unstable();
    names.dedup();
    summary.series = names.len();
    Ok(summary)
}

// ---------------------------------------------------------------------------
// Run-report validation
// ---------------------------------------------------------------------------

/// Summary returned by [`validate_report`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ReportSummary {
    /// Windows in the embedded flight recording (0 when absent).
    pub windows: usize,
    /// Exemplars pinned by the watchdog.
    pub exemplars: usize,
    /// Of those, exemplars with a causal breakdown attached.
    pub with_breakdown: usize,
    /// Spans retired (folded into aggregates and evicted) by the
    /// sharded registry; 0 for reports predating the obs section.
    pub spans_retired: u64,
    /// Spans resident in the span table at report time.
    pub spans_resident: u64,
    /// Distinct profiler frame paths resident (0 when the profiler was
    /// off).
    pub prof_frames: u64,
    /// Profiler folds dropped on a full frame table.
    pub prof_evicted: u64,
}

/// Structurally validates a `RunReport` JSON document, including the
/// flight-recorder sections added by the watchdog work:
///
/// * required aggregate sections (`net`, `rpc`, `spans`) are present,
/// * `timeseries.windows` (when present) are in strictly increasing
///   start order, each aligned to `width_ns`,
/// * every exemplar names a span/service/trigger and — when a breakdown
///   is attached — its queue/wire/server/retransmit components tile the
///   exemplar latency *exactly*,
/// * the obs self-measurement section (when present) carries every
///   gauge, and retirement conserves spans: retired + resident equals
///   the spans the run allocated (`started + oneways`). Reports written
///   before the sharded registry have no `obs` object and stay valid,
/// * the profiler section (when present) carries its honesty counters,
///   `frames_resident` matches the frame map, and every frame path is
///   well-formed with a nonzero call count.
///
/// # Errors
///
/// Returns a description of the first violation found.
pub fn validate_report(text: &str) -> Result<ReportSummary, String> {
    let doc = json::parse(text).map_err(|e| e.to_string())?;
    doc.u64_field("end_time_ns").ok_or("missing end_time_ns")?;
    for section in ["net", "rpc", "spans"] {
        if doc.get(section).and_then(Json::as_obj).is_none() {
            return Err(format!("missing {section} object"));
        }
    }
    let mut summary = ReportSummary::default();
    if let Some(ts) = doc.get("timeseries") {
        let width = ts
            .u64_field("width_ns")
            .ok_or("timeseries missing width_ns")?;
        if width == 0 {
            return Err("timeseries width_ns is 0".into());
        }
        let windows = ts
            .get("windows")
            .and_then(Json::as_arr)
            .ok_or("timeseries missing windows array")?;
        let mut prev: Option<u64> = None;
        for (i, w) in windows.iter().enumerate() {
            let at = |msg: &str| format!("windows[{i}]: {msg}");
            let start = w
                .u64_field("start_ns")
                .ok_or_else(|| at("missing start_ns"))?;
            if start % width != 0 {
                return Err(at("start_ns not aligned to width_ns"));
            }
            if let Some(p) = prev {
                if start <= p {
                    return Err(at("window starts not strictly increasing"));
                }
            }
            prev = Some(start);
            for section in ["counters", "gauges", "hists"] {
                if w.get(section).and_then(Json::as_obj).is_none() {
                    return Err(at(&format!("missing {section} object")));
                }
            }
        }
        summary.windows = windows.len();
    }
    if let Some(exemplars) = doc.get("exemplars").and_then(Json::as_arr) {
        for (i, ex) in exemplars.iter().enumerate() {
            let at = |msg: &str| format!("exemplars[{i}]: {msg}");
            ex.u64_field("span").ok_or_else(|| at("missing span"))?;
            ex.str_field("service")
                .ok_or_else(|| at("missing service"))?;
            let latency = ex
                .u64_field("latency_ns")
                .ok_or_else(|| at("missing latency_ns"))?;
            let threshold = ex
                .u64_field("threshold_ns")
                .ok_or_else(|| at("missing threshold_ns"))?;
            if latency <= threshold {
                return Err(at("latency does not exceed threshold"));
            }
            match ex.str_field("trigger") {
                Some("p99") | Some("slo") => {}
                other => return Err(at(&format!("bad trigger {other:?}"))),
            }
            if let Some(b) = ex.get("breakdown") {
                let part = |k: &str| b.u64_field(k).ok_or_else(|| at(&format!("missing {k}")));
                let total = part("queue_ns")?
                    + part("wire_ns")?
                    + part("server_ns")?
                    + part("retransmit_ns")?;
                if total != latency {
                    return Err(at(&format!(
                        "breakdown sums to {total}ns, span is {latency}ns"
                    )));
                }
                summary.with_breakdown += 1;
            }
        }
        summary.exemplars = exemplars.len();
    }
    if let Some(obs) = doc.get("obs") {
        let field = |k: &str| obs.u64_field(k).ok_or_else(|| format!("obs: missing {k}"));
        let retired = field("spans_retired")?;
        let resident = field("spans_resident")?;
        let resident_peak = field("spans_resident_peak")?;
        let bytes = field("span_table_bytes")?;
        let bytes_peak = field("span_table_bytes_peak")?;
        field("spans_sampled")?;
        field("self_ns")?;
        field("self_calls")?;
        if resident > resident_peak {
            return Err("obs: spans_resident exceeds its peak".into());
        }
        if bytes > bytes_peak {
            return Err("obs: span_table_bytes exceeds its peak".into());
        }
        let spans = doc.get("spans").expect("presence checked above");
        let allocated =
            spans.u64_field("started").unwrap_or(0) + spans.u64_field("oneways").unwrap_or(0);
        if retired + resident != allocated {
            return Err(format!(
                "obs: retirement does not conserve spans — \
                 {retired} retired + {resident} resident != {allocated} allocated"
            ));
        }
        summary.spans_retired = retired;
        summary.spans_resident = resident;
    }
    if let Some(prof) = doc.get("profile") {
        let field = |k: &str| {
            prof.u64_field(k)
                .ok_or_else(|| format!("profile: missing {k}"))
        };
        let resident = field("frames_resident")?;
        let evicted = field("frames_evicted")?;
        field("self_ns")?;
        field("self_calls")?;
        let frames = prof
            .get("frames")
            .and_then(Json::as_obj)
            .ok_or("profile: missing frames object")?;
        if frames.len() as u64 != resident {
            return Err(format!(
                "profile: frames_resident says {resident}, frames object has {}",
                frames.len()
            ));
        }
        for (path, st) in frames {
            let at = |msg: &str| format!("profile frame {path:?}: {msg}");
            if path.is_empty() || path.split(';').any(str::is_empty) {
                return Err(at("empty frame in path"));
            }
            let calls = st.u64_field("calls").ok_or_else(|| at("missing calls"))?;
            if calls == 0 {
                return Err(at("zero calls"));
            }
            st.u64_field("wall_ns")
                .ok_or_else(|| at("missing wall_ns"))?;
        }
        summary.prof_frames = resident;
        summary.prof_evicted = evicted;
    }
    Ok(summary)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::TraceSink;

    fn sample_trace() -> CausalTrace {
        let mut sink = TraceSink::new();
        sink.push_span(SpanRecord {
            id: SpanId(1),
            parent: SpanId::NONE,
            kind: SpanKind::Invoke,
            service: "kv".into(),
            op: "get".into(),
            start_ns: 1_000,
            end_ns: Some(9_000),
            ok: Some(true),
            retransmissions: 1,
            replies: 1,
        });
        sink.push_span(SpanRecord {
            id: SpanId(2),
            parent: SpanId(1),
            kind: SpanKind::Dispatch,
            service: "kv-server".into(),
            op: "get".into(),
            start_ns: 4_000,
            end_ns: Some(5_000),
            ok: Some(true),
            retransmissions: 0,
            replies: 0,
        });
        let a = Loc::new(0, 70_000);
        let b = Loc::new(1, 10);
        for (at, kind) in [
            (
                1_100,
                NetEventKind::Sent {
                    src: a,
                    dst: b,
                    bytes: 64,
                },
            ),
            (2_000, NetEventKind::Dropped { src: a, dst: b }),
            (
                3_000,
                NetEventKind::Retransmit {
                    src: a,
                    dst: b,
                    attempt: 1,
                },
            ),
            (
                3_100,
                NetEventKind::Sent {
                    src: a,
                    dst: b,
                    bytes: 64,
                },
            ),
            (
                4_000,
                NetEventKind::Delivered {
                    src: a,
                    dst: b,
                    bytes: 64,
                },
            ),
            (
                5_000,
                NetEventKind::ServerExecute {
                    service: "kv-server".into(),
                    op: "get".into(),
                    dur_ns: 1_000,
                },
            ),
            (
                5_500,
                NetEventKind::ProxyCacheMiss {
                    service: "kv".into(),
                    op: "get".into(),
                },
            ),
            (
                6_000,
                NetEventKind::Forwarded {
                    from: b,
                    to: Loc::new(2, 10),
                },
            ),
            (
                7_000,
                NetEventKind::Migrated {
                    service: "kv".into(),
                    from: b,
                    to: Loc::new(2, 10),
                },
            ),
            (8_000, NetEventKind::Blackholed { src: b, dst: a }),
        ] {
            sink.push_net(NetEvent {
                at_ns: at,
                span: SpanId(1),
                kind,
            });
        }
        sink.build()
    }

    #[test]
    fn chrome_export_validates() {
        let trace = sample_trace();
        let text = to_chrome_json(&trace);
        let summary = validate_chrome(&text).expect("well-formed chrome trace");
        assert_eq!(summary.spans, 2, "both spans exported");
        assert_eq!(summary.flows, 2, "one matched send->deliver pair");
        assert!(summary.instants >= 9);
        // Tracks: kv, kv-server, node 0, node 1.
        assert_eq!(summary.tracks, 4);
    }

    #[test]
    fn validator_rejects_malformed() {
        assert!(validate_chrome("not json").is_err());
        assert!(validate_chrome("{\"traceEvents\":[]}").is_err());
        // Event without a named track.
        assert!(
            validate_chrome("{\"traceEvents\":[{\"ph\":\"i\",\"ts\":1,\"pid\":1,\"tid\":0}]}")
                .is_err()
        );
        // Missing ts.
        assert!(validate_chrome(
            "{\"traceEvents\":[{\"ph\":\"X\",\"pid\":1,\"tid\":0,\"dur\":1}]}"
        )
        .is_err());
    }

    #[test]
    fn jsonl_round_trips() {
        let trace = sample_trace();
        let text = to_jsonl(&trace);
        let back = from_jsonl(&text).expect("reimport");
        assert_eq!(back.events.len(), trace.events.len());
        assert_eq!(back.evicted, trace.evicted);
        assert_eq!(back.spans().count(), 2);
        let kinds: Vec<&str> = back.net_events().map(|e| e.kind.tag()).collect();
        let orig: Vec<&str> = trace.net_events().map(|e| e.kind.tag()).collect();
        assert_eq!(kinds, orig);
        // Structural equality of the net events survives the round trip.
        for (a, b) in back.net_events().zip(trace.net_events()) {
            assert_eq!(a, b);
        }
    }

    #[test]
    fn jsonl_rejects_malformed_lines() {
        assert!(from_jsonl("{\"k\":\"span\"}").is_err());
        assert!(from_jsonl("{\"t\":1}").is_err());
        assert!(from_jsonl("{\"k\":\"sent\",\"t\":1}").is_err());
        assert!(from_jsonl("{\"k\":\"warp\",\"t\":1}").is_err());
    }

    #[test]
    fn timeseries_csv_round_validates() {
        let mut ts = crate::TimeSeries::new(1_000, 16);
        ts.add(100, "calls_ok@kv", 3);
        ts.add(1_100, "calls_ok@kv", 2);
        ts.gauge(150, "inflight@kv", 5);
        ts.gauge(180, "inflight@kv", 2);
        ts.observe(1_200, "latency@kv", 400);
        ts.observe(1_300, "latency@kv", 900);
        let csv = timeseries_to_csv(&ts.report());
        let summary = validate_timeseries_csv(&csv).expect("well-formed csv");
        assert_eq!(summary.counters, 2);
        assert_eq!(summary.gauges, 1);
        assert_eq!(summary.hists, 1);
        assert_eq!(summary.windows, 2);
        assert_eq!(summary.series, 3);
        assert_eq!(summary.rows, 4);
    }

    #[test]
    fn timeseries_csv_validator_rejects_malformed() {
        assert!(validate_timeseries_csv("").is_err());
        assert!(validate_timeseries_csv("start_ns,kind\n").is_err());
        let good_head =
            format!("# width_ns=10 windows_evicted=0 late_dropped=0\n{TIMESERIES_CSV_HEADER}\n");
        // Wrong column count.
        assert!(validate_timeseries_csv(&format!("{good_head}10,counter,x,1\n")).is_err());
        // Non-numeric counter value.
        assert!(validate_timeseries_csv(&format!("{good_head}10,counter,x,abc,,,,,,,\n")).is_err());
        // Window start regression.
        assert!(validate_timeseries_csv(&format!(
            "{good_head}20,counter,x,1,,,,,,,\n10,counter,x,1,,,,,,,\n"
        ))
        .is_err());
        // Unknown row kind.
        assert!(validate_timeseries_csv(&format!("{good_head}10,meter,x,1,,,,,,,\n")).is_err());
        // Empty file body is fine (a run with the recorder on but idle).
        assert!(validate_timeseries_csv(&good_head).is_ok());
    }

    #[test]
    fn report_validator_accepts_live_report_and_checks_tiling() {
        use crate::{MetricsRegistry, MetricsSnapshot, SpanKind, WatchdogConfig};
        let reg = MetricsRegistry::new();
        reg.enable_timeseries(1_000, 8);
        reg.enable_watchdog(WatchdogConfig {
            slo_ns: Some(100),
            min_samples: u64::MAX,
            ..Default::default()
        });
        let sp = reg.open_span(SpanKind::Invoke, SpanId::NONE, "kv", "get", 0);
        reg.close_span(sp, 5_000, true);
        let report = reg.report(MetricsSnapshot::default(), 5_000);
        let summary = validate_report(&report.to_json()).expect("valid report");
        assert_eq!(summary.windows, 1);
        assert_eq!(summary.exemplars, 1);
        assert_eq!(summary.with_breakdown, 0);

        // Hand-build a breakdown that does NOT tile the span: rejected.
        let bad = r#"{"end_time_ns":1,"net":{},"rpc":{},"spans":{},
            "exemplars":[{"span":1,"service":"kv","op":"get","latency_ns":100,
            "threshold_ns":10,"trigger":"slo",
            "breakdown":{"queue_ns":10,"wire_ns":10,"server_ns":10,"retransmit_ns":10}}]}"#;
        let err = validate_report(bad).unwrap_err();
        assert!(err.contains("breakdown sums to 40ns"), "{err}");
        // And one that does: accepted, counted.
        let good = bad.replace("\"queue_ns\":10", "\"queue_ns\":70");
        let summary = validate_report(&good).expect("tiling breakdown accepted");
        assert_eq!(summary.with_breakdown, 1);
    }

    #[test]
    fn report_validator_rejects_structural_damage() {
        assert!(validate_report("not json").is_err());
        assert!(validate_report("{\"end_time_ns\":1}").is_err());
        // Misaligned window start.
        let bad = r#"{"end_time_ns":1,"net":{},"rpc":{},"spans":{},
            "timeseries":{"width_ns":1000,"windows":[
            {"start_ns":500,"counters":{},"gauges":{},"hists":{}}]}}"#;
        assert!(validate_report(bad).unwrap_err().contains("aligned"));
        // Non-increasing window starts.
        let bad = r#"{"end_time_ns":1,"net":{},"rpc":{},"spans":{},
            "timeseries":{"width_ns":1000,"windows":[
            {"start_ns":1000,"counters":{},"gauges":{},"hists":{}},
            {"start_ns":1000,"counters":{},"gauges":{},"hists":{}}]}}"#;
        assert!(validate_report(bad)
            .unwrap_err()
            .contains("strictly increasing"));
    }
}
