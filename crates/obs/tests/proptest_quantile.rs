//! Property-based tests of `Histogram::quantile` against exact
//! sorted-sample quantiles.
//!
//! The histogram stores only log₂ bucket counts, so it cannot return
//! the exact sample — but it must never leave the exact sample's
//! bucket. For any sample set and any q, the estimate must fall within
//! `[lo(bucket(exact)), hi(bucket(exact))]` where `exact` is the true
//! quantile of the sorted samples (rank `max(1, ceil(q·n))`, 1-based),
//! and always within the observed `[min, max]`.

use obs::Histogram;
use proptest::prelude::*;

/// The exact quantile the histogram approximates: the sample at rank
/// `max(1, ceil(q·n))` of the sorted data (matching the histogram's own
/// rank rule).
fn exact_quantile(sorted: &[u64], q: f64) -> u64 {
    let n = sorted.len() as u64;
    let rank = ((q * n as f64).ceil() as u64).clamp(1, n);
    sorted[(rank - 1) as usize]
}

/// Inclusive bounds of the log₂ bucket holding `value` (bucket 0 holds
/// exactly 0; bucket i ≥ 1 holds values of bit-length i).
fn bucket_bounds(value: u64) -> (u64, u64) {
    if value == 0 {
        return (0, 0);
    }
    let i = 64 - value.leading_zeros();
    let lo = 1u64 << (i - 1);
    (lo, lo.saturating_mul(2).saturating_sub(1))
}

fn histogram_of(samples: &[u64]) -> Histogram {
    let mut h = Histogram::new();
    for &s in samples {
        h.record(s);
    }
    h
}

proptest! {
    /// p50/p95/p99 (and arbitrary q) stay inside the exact quantile's
    /// log₂ bucket and inside the observed range.
    #[test]
    fn quantile_stays_in_exact_samples_bucket(
        mut samples in collection::vec(0u64..1_000_000_000_000, 1..200),
        q in 0.0f64..=1.0,
    ) {
        let h = histogram_of(&samples);
        samples.sort_unstable();
        for q in [q, 0.50, 0.95, 0.99] {
            let exact = exact_quantile(&samples, q);
            let (lo, hi) = bucket_bounds(exact);
            let est = h.quantile(q);
            prop_assert!(
                (lo..=hi).contains(&est),
                "q={q}: estimate {est} outside bucket [{lo}, {hi}] of exact {exact}"
            );
            prop_assert!((h.min()..=h.max()).contains(&est));
        }
    }

    /// With a single sample, min/max clamping makes every quantile
    /// exact.
    #[test]
    fn single_sample_is_exact(v in 0u64..u64::MAX / 2, q in 0.0f64..=1.0) {
        let h = histogram_of(&[v]);
        prop_assert_eq!(h.quantile(q), v);
    }

    /// Bucket 0 is exact: all-zero samples give zero at every quantile.
    #[test]
    fn all_zeros_give_zero(n in 1usize..100, q in 0.0f64..=1.0) {
        let h = histogram_of(&vec![0u64; n]);
        prop_assert_eq!(h.quantile(q), 0);
    }

    /// Merging an empty histogram changes no quantile; merging two
    /// empties stays empty (quantile 0 everywhere).
    #[test]
    fn merge_with_empty_is_identity(
        samples in collection::vec(0u64..1_000_000_000, 0..100),
        q in 0.0f64..=1.0,
    ) {
        let mut h = histogram_of(&samples);
        let before = (h.quantile(q), h.count(), h.min(), h.max());
        h.merge(&Histogram::new());
        prop_assert_eq!((h.quantile(q), h.count(), h.min(), h.max()), before);

        let mut empty = Histogram::new();
        empty.merge(&Histogram::new());
        prop_assert_eq!(empty.count(), 0);
        prop_assert_eq!(empty.quantile(q), 0);
    }

    /// A merged histogram answers like one built from the concatenated
    /// samples (bucket counts are additive).
    #[test]
    fn merge_equals_rebuild(
        a in collection::vec(0u64..1_000_000_000, 0..80),
        b in collection::vec(0u64..1_000_000_000, 0..80),
        q in 0.0f64..=1.0,
    ) {
        let mut merged = histogram_of(&a);
        merged.merge(&histogram_of(&b));
        let mut all = a.clone();
        all.extend_from_slice(&b);
        let rebuilt = histogram_of(&all);
        prop_assert_eq!(merged.quantile(q), rebuilt.quantile(q));
        prop_assert_eq!(merged.count(), rebuilt.count());
    }
}

/// Empty histogram: every quantile is 0 (no samples to clamp to).
#[test]
fn empty_histogram_quantiles_are_zero() {
    let h = Histogram::new();
    for q in [0.0, 0.5, 0.95, 0.99, 1.0] {
        assert_eq!(h.quantile(q), 0);
    }
    assert_eq!(h.count(), 0);
}
