//! # services — realistic services built on the proxy framework
//!
//! The worked examples a release of the paper's system would ship.
//! Each service provides:
//!
//! * a [`proxy_core::ServiceObject`] implementation (the server-side
//!   state and operations),
//! * a factory function for the [`proxy_core::FactoryRegistry`] (so the
//!   object can migrate), and
//! * a typed client wrapper that turns `invoke(op, Value)` into ordinary
//!   Rust methods — the "stub interface" a code generator would emit.
//!
//! | Module | Service | Flavour |
//! |---|---|---|
//! | [`kv`] | key-value store | general-purpose, mixed workloads |
//! | [`mod@file`] | block file service | read-heavy; the classic caching-proxy example |
//! | [`directory`] | directory (name → entry) | read-mostly; the replication example |
//! | [`counter`] | counter | tiny state; the migration example |
//! | [`queue`] | print queue | write-heavy; where caching must *not* win |
//! | [`blob`] | blob store | bulk payloads; the out-of-band data plane + edge caches |

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod blob;
pub mod counter;
pub mod directory;
pub mod file;
pub mod kv;
pub mod queue;

use proxy_core::FactoryRegistry;

/// A factory registry knowing every service type in this crate — handy
/// default for clients and servers of migratable services.
pub fn all_factories() -> FactoryRegistry {
    FactoryRegistry::new()
        .register(kv::TYPE_NAME, kv::KvStore::from_snapshot)
        .register(file::TYPE_NAME, file::BlockFile::from_snapshot)
        .register(directory::TYPE_NAME, directory::Directory::from_snapshot)
        .register(counter::TYPE_NAME, counter::Counter::from_snapshot)
        .register(queue::TYPE_NAME, queue::PrintQueue::from_snapshot)
        .register(blob::TYPE_NAME, blob::BlobStore::from_snapshot)
}

/// Converts a wire error into the conventional `BadArgs` remote error.
pub(crate) fn bad_args(e: wire::WireError) -> rpc::RemoteError {
    rpc::RemoteError::new(rpc::ErrorCode::BadArgs, e.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_factories_knows_every_type() {
        let f = all_factories();
        for t in [
            kv::TYPE_NAME,
            file::TYPE_NAME,
            directory::TYPE_NAME,
            counter::TYPE_NAME,
            queue::TYPE_NAME,
            blob::TYPE_NAME,
        ] {
            assert!(f.knows(t), "missing factory for {t}");
        }
    }
}
