//! A block file service — the paper era's canonical caching example.
//!
//! Files are arrays of fixed-size blocks addressed by `(name, index)`.
//! Reads dominate real workloads, which is exactly where a caching proxy
//! shines (experiment E2). The service models server-side disk time with
//! a configurable per-block delay.

use std::collections::BTreeMap;
use std::time::Duration;

use bytes::Bytes;
use proxy_core::{InterfaceDesc, OpDesc, ProxyHandle, ServiceObject, Session};
use rpc::{ErrorCode, RemoteError, RpcError};
use simnet::Ctx;
use wire::Value;

use crate::bad_args;

/// The interface type name (keys the factory registry).
pub const TYPE_NAME: &str = "proxide.file";

/// Block size in bytes.
pub const BLOCK_SIZE: usize = 1024;

/// Server-side state of the block file service.
#[derive(Debug, Default, Clone)]
pub struct BlockFile {
    /// `(file, block index)` → block content.
    blocks: BTreeMap<(String, u64), Bytes>,
    /// Simulated disk time charged per block access.
    disk_time: Duration,
}

impl BlockFile {
    /// An empty file service with no disk delay.
    pub fn new() -> BlockFile {
        BlockFile::default()
    }

    /// Adds a simulated disk delay per block access.
    pub fn with_disk_time(mut self, d: Duration) -> BlockFile {
        self.disk_time = d;
        self
    }

    /// The interface every `BlockFile` exports. The cache tag of a block
    /// operation is its `addr` argument (`"file:index"`), so writes
    /// invalidate exactly the block they touch.
    pub fn interface() -> InterfaceDesc {
        InterfaceDesc::new(
            TYPE_NAME,
            [
                OpDesc::read("read", "addr"),
                OpDesc::write("write", "addr"),
                OpDesc::read_whole("blocks"),
                OpDesc::write_whole("truncate"),
            ],
        )
    }

    /// Rebuilds the service from a snapshot (factory entry point).
    ///
    /// # Errors
    ///
    /// Never fails; malformed snapshot fields are skipped.
    pub fn from_snapshot(v: &Value) -> Result<Box<dyn ServiceObject>, RemoteError> {
        let mut f = BlockFile::new();
        if let Some(fields) = v.as_record() {
            for (addr, val) in fields {
                if let (Some((name, idx)), Some(b)) = (parse_addr(addr), val.as_blob()) {
                    f.blocks.insert((name, idx), b.clone());
                }
            }
        }
        Ok(Box::new(f))
    }
}

/// Formats a block address as the wire `addr` argument.
pub fn block_addr(file: &str, index: u64) -> String {
    format!("{file}:{index}")
}

fn parse_addr(addr: &str) -> Option<(String, u64)> {
    let (name, idx) = addr.rsplit_once(':')?;
    Some((name.to_owned(), idx.parse().ok()?))
}

impl ServiceObject for BlockFile {
    fn interface(&self) -> InterfaceDesc {
        BlockFile::interface()
    }

    fn dispatch(&mut self, ctx: &mut Ctx, op: &str, args: &Value) -> Result<Value, RemoteError> {
        match op {
            "read" => {
                let addr = args.get_str("addr").map_err(bad_args)?;
                let key = parse_addr(addr)
                    .ok_or_else(|| RemoteError::new(ErrorCode::BadArgs, "bad block addr"))?;
                if !self.disk_time.is_zero() {
                    let _ = ctx.sleep(self.disk_time);
                }
                Ok(self
                    .blocks
                    .get(&key)
                    .map(|b| Value::Blob(b.clone()))
                    .unwrap_or(Value::Null))
            }
            "write" => {
                let addr = args.get_str("addr").map_err(bad_args)?;
                let key = parse_addr(addr)
                    .ok_or_else(|| RemoteError::new(ErrorCode::BadArgs, "bad block addr"))?;
                let data = args.get_blob("data").map_err(bad_args)?;
                if data.len() > BLOCK_SIZE {
                    return Err(RemoteError::new(
                        ErrorCode::BadArgs,
                        format!("block larger than {BLOCK_SIZE} bytes"),
                    ));
                }
                if !self.disk_time.is_zero() {
                    let _ = ctx.sleep(self.disk_time);
                }
                self.blocks.insert(key, data.clone());
                Ok(Value::Null)
            }
            "blocks" => Ok(Value::U64(self.blocks.len() as u64)),
            "truncate" => {
                let file = args.get_str("file").map_err(bad_args)?;
                let before = self.blocks.len();
                self.blocks.retain(|(name, _), _| name != file);
                Ok(Value::U64((before - self.blocks.len()) as u64))
            }
            other => Err(RemoteError::new(ErrorCode::NoSuchOp, other.to_owned())),
        }
    }

    fn snapshot(&self) -> Result<Value, RemoteError> {
        Ok(Value::record(self.blocks.iter().map(|((name, idx), b)| {
            (block_addr(name, *idx), Value::Blob(b.clone()))
        })))
    }
}

/// Typed client wrapper for the block file service.
#[derive(Debug, Clone, Copy)]
pub struct FileClient {
    handle: ProxyHandle,
}

impl FileClient {
    /// Binds to the named file service.
    ///
    /// # Errors
    ///
    /// Any [`RpcError`] from the bind.
    pub fn bind(session: &mut Session<'_>, service: &str) -> Result<FileClient, RpcError> {
        Ok(FileClient {
            handle: session.bind(service)?,
        })
    }

    /// The underlying proxy handle (for stats).
    pub fn handle(&self) -> ProxyHandle {
        self.handle
    }

    /// Reads one block; `None` if never written.
    ///
    /// # Errors
    ///
    /// Any [`RpcError`] from the invocation.
    pub fn read(
        &self,
        session: &mut Session<'_>,
        file: &str,
        index: u64,
    ) -> Result<Option<Bytes>, RpcError> {
        let v = session.invoke(
            self.handle,
            "read",
            Value::record([("addr", Value::str(block_addr(file, index)))]),
        )?;
        Ok(v.as_blob().cloned())
    }

    /// Writes one block.
    ///
    /// # Errors
    ///
    /// Any [`RpcError`] from the invocation, including `BadArgs` for
    /// blocks over [`BLOCK_SIZE`].
    pub fn write(
        &self,
        session: &mut Session<'_>,
        file: &str,
        index: u64,
        data: impl Into<Bytes>,
    ) -> Result<(), RpcError> {
        session.invoke(
            self.handle,
            "write",
            Value::record([
                ("addr", Value::str(block_addr(file, index))),
                ("data", Value::Blob(data.into())),
            ]),
        )?;
        Ok(())
    }

    /// Total number of stored blocks across all files.
    ///
    /// # Errors
    ///
    /// Any [`RpcError`] from the invocation.
    pub fn blocks(&self, session: &mut Session<'_>) -> Result<u64, RpcError> {
        let v = session.invoke(self.handle, "blocks", Value::Null)?;
        Ok(v.as_u64().unwrap_or(0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simnet::{NetworkConfig, NodeId, Simulation};

    fn with_object(f: impl FnOnce(&mut Ctx, &mut BlockFile) + Send + 'static) {
        let mut sim = Simulation::new(NetworkConfig::lan(), 0);
        sim.spawn("driver", NodeId(0), move |ctx| {
            let mut file = BlockFile::new();
            f(ctx, &mut file);
        });
        sim.run();
    }

    #[test]
    fn write_then_read_block() {
        with_object(|ctx, f| {
            f.dispatch(
                ctx,
                "write",
                &Value::record([
                    ("addr", Value::str("doc:0")),
                    ("data", Value::blob(vec![7u8; 10])),
                ]),
            )
            .unwrap();
            let v = f
                .dispatch(ctx, "read", &Value::record([("addr", Value::str("doc:0"))]))
                .unwrap();
            assert_eq!(v.as_blob().unwrap().as_ref(), &[7u8; 10]);
        });
    }

    #[test]
    fn unwritten_block_is_null() {
        with_object(|ctx, f| {
            let v = f
                .dispatch(ctx, "read", &Value::record([("addr", Value::str("doc:9"))]))
                .unwrap();
            assert_eq!(v, Value::Null);
        });
    }

    #[test]
    fn oversized_block_rejected() {
        with_object(|ctx, f| {
            let err = f
                .dispatch(
                    ctx,
                    "write",
                    &Value::record([
                        ("addr", Value::str("doc:0")),
                        ("data", Value::blob(vec![0u8; BLOCK_SIZE + 1])),
                    ]),
                )
                .unwrap_err();
            assert_eq!(err.code, ErrorCode::BadArgs);
        });
    }

    #[test]
    fn truncate_removes_only_that_file() {
        with_object(|ctx, f| {
            for (file, idx) in [("a", 0u64), ("a", 1), ("b", 0)] {
                f.dispatch(
                    ctx,
                    "write",
                    &Value::record([
                        ("addr", Value::str(block_addr(file, idx))),
                        ("data", Value::blob(vec![1u8])),
                    ]),
                )
                .unwrap();
            }
            let removed = f
                .dispatch(ctx, "truncate", &Value::record([("file", Value::str("a"))]))
                .unwrap();
            assert_eq!(removed, Value::U64(2));
            assert_eq!(
                f.dispatch(ctx, "blocks", &Value::Null).unwrap(),
                Value::U64(1)
            );
        });
    }

    #[test]
    fn disk_time_is_charged() {
        with_object(|ctx, f| {
            *f = BlockFile::new().with_disk_time(Duration::from_millis(2));
            let t0 = ctx.now();
            f.dispatch(
                ctx,
                "write",
                &Value::record([
                    ("addr", Value::str("doc:0")),
                    ("data", Value::blob(vec![1u8])),
                ]),
            )
            .unwrap();
            assert_eq!(ctx.now() - t0, Duration::from_millis(2));
        });
    }

    #[test]
    fn snapshot_roundtrip() {
        with_object(|ctx, f| {
            f.dispatch(
                ctx,
                "write",
                &Value::record([
                    ("addr", Value::str("doc:3")),
                    ("data", Value::blob(vec![9u8; 4])),
                ]),
            )
            .unwrap();
            let snap = f.snapshot().unwrap();
            let restored = BlockFile::from_snapshot(&snap).unwrap();
            assert_eq!(restored.snapshot().unwrap(), snap);
        });
    }

    #[test]
    fn addr_parsing() {
        assert_eq!(parse_addr("file:7"), Some(("file".into(), 7)));
        assert_eq!(parse_addr("a:b:3"), Some(("a:b".into(), 3)));
        assert_eq!(parse_addr("nocolon"), None);
        assert_eq!(parse_addr("bad:idx"), None);
        assert_eq!(block_addr("f", 2), "f:2");
    }
}
