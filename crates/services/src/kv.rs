//! A key-value store service.

use std::collections::BTreeMap;

use proxy_core::{InterfaceDesc, OpDesc, ProxyHandle, ServiceObject, Session};
use rpc::{ErrorCode, RemoteError, RpcError};
use simnet::Ctx;
use wire::Value;

use crate::bad_args;

/// The interface type name (keys the factory registry).
pub const TYPE_NAME: &str = "proxide.kv";

/// Server-side state of the key-value store. Values are arbitrary wire
/// values — strings, blobs, records, or out-of-band [`wire::Value::Ref`]
/// handles placed there by bulk-enabled proxies.
#[derive(Debug, Default, Clone)]
pub struct KvStore {
    map: BTreeMap<String, Value>,
}

impl KvStore {
    /// An empty store.
    pub fn new() -> KvStore {
        KvStore::default()
    }

    /// The interface every `KvStore` exports.
    pub fn interface() -> InterfaceDesc {
        InterfaceDesc::new(
            TYPE_NAME,
            [
                OpDesc::read("get", "key"),
                OpDesc::read("contains", "key"),
                OpDesc::write("put", "key"),
                OpDesc::write("del", "key"),
                OpDesc::read_whole("len"),
                OpDesc::read_whole("keys"),
                OpDesc::write_whole("clear"),
            ],
        )
    }

    /// Rebuilds a store from a snapshot (factory entry point).
    ///
    /// # Errors
    ///
    /// Never fails for well-formed snapshots produced by
    /// [`ServiceObject::snapshot`]; malformed fields are skipped.
    pub fn from_snapshot(v: &Value) -> Result<Box<dyn ServiceObject>, RemoteError> {
        let mut store = KvStore::new();
        if let Some(fields) = v.as_record() {
            for (k, val) in fields {
                store.map.insert(k.to_string_owned(), val.clone());
            }
        }
        Ok(Box::new(store))
    }
}

impl ServiceObject for KvStore {
    fn interface(&self) -> InterfaceDesc {
        KvStore::interface()
    }

    fn dispatch(&mut self, _ctx: &mut Ctx, op: &str, args: &Value) -> Result<Value, RemoteError> {
        match op {
            "get" => {
                let key = args.get_str("key").map_err(bad_args)?;
                Ok(self.map.get(key).cloned().unwrap_or(Value::Null))
            }
            "contains" => {
                let key = args.get_str("key").map_err(bad_args)?;
                Ok(Value::Bool(self.map.contains_key(key)))
            }
            "put" => {
                let key = args.get_str("key").map_err(bad_args)?;
                let value = args
                    .get("value")
                    .ok_or_else(|| bad_args(wire::WireError::MissingField("value")))?;
                let prev = self.map.insert(key.to_owned(), value.clone());
                Ok(prev.unwrap_or(Value::Null))
            }
            "del" => {
                let key = args.get_str("key").map_err(bad_args)?;
                Ok(Value::Bool(self.map.remove(key).is_some()))
            }
            "len" => Ok(Value::U64(self.map.len() as u64)),
            "keys" => Ok(Value::list(self.map.keys().map(Value::str))),
            "clear" => {
                self.map.clear();
                Ok(Value::Null)
            }
            other => Err(RemoteError::new(ErrorCode::NoSuchOp, other.to_owned())),
        }
    }

    fn snapshot(&self) -> Result<Value, RemoteError> {
        Ok(Value::record(
            self.map.iter().map(|(k, v)| (k.clone(), v.clone())),
        ))
    }
}

/// Typed client wrapper: the interface a stub generator would emit.
#[derive(Debug, Clone, Copy)]
pub struct KvClient {
    handle: ProxyHandle,
}

impl KvClient {
    /// Binds to the named kv service.
    ///
    /// # Errors
    ///
    /// Any [`RpcError`] from the bind.
    pub fn bind(session: &mut Session<'_>, service: &str) -> Result<KvClient, RpcError> {
        Ok(KvClient {
            handle: session.bind(service)?,
        })
    }

    /// The underlying proxy handle (for stats).
    pub fn handle(&self) -> ProxyHandle {
        self.handle
    }

    /// Reads a key.
    ///
    /// # Errors
    ///
    /// Any [`RpcError`] from the invocation.
    pub fn get(&self, session: &mut Session<'_>, key: &str) -> Result<Option<String>, RpcError> {
        let v = session.invoke(
            self.handle,
            "get",
            Value::record([("key", Value::str(key))]),
        )?;
        Ok(v.as_str().map(str::to_owned))
    }

    /// Writes a key, returning the previous value if any.
    ///
    /// # Errors
    ///
    /// Any [`RpcError`] from the invocation.
    pub fn put(
        &self,
        session: &mut Session<'_>,
        key: &str,
        value: &str,
    ) -> Result<Option<String>, RpcError> {
        let v = session.invoke(
            self.handle,
            "put",
            Value::record([("key", Value::str(key)), ("value", Value::str(value))]),
        )?;
        Ok(v.as_str().map(str::to_owned))
    }

    /// Deletes a key; true if it existed.
    ///
    /// # Errors
    ///
    /// Any [`RpcError`] from the invocation.
    pub fn del(&self, session: &mut Session<'_>, key: &str) -> Result<bool, RpcError> {
        let v = session.invoke(
            self.handle,
            "del",
            Value::record([("key", Value::str(key))]),
        )?;
        Ok(v.as_bool().unwrap_or(false))
    }

    /// Number of keys.
    ///
    /// # Errors
    ///
    /// Any [`RpcError`] from the invocation.
    pub fn len(&self, session: &mut Session<'_>) -> Result<u64, RpcError> {
        let v = session.invoke(self.handle, "len", Value::Null)?;
        Ok(v.as_u64().unwrap_or(0))
    }

    /// Whether the store is empty.
    ///
    /// # Errors
    ///
    /// Any [`RpcError`] from the invocation.
    pub fn is_empty(&self, session: &mut Session<'_>) -> Result<bool, RpcError> {
        Ok(self.len(session)? == 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simnet::{NetworkConfig, NodeId, Simulation};

    /// Drives the object directly (no network) through a scratch context.
    fn with_object(f: impl FnOnce(&mut Ctx, &mut KvStore) + Send + 'static) {
        let mut sim = Simulation::new(NetworkConfig::lan(), 0);
        sim.spawn("driver", NodeId(0), move |ctx| {
            let mut kv = KvStore::new();
            f(ctx, &mut kv);
        });
        sim.run();
    }

    #[test]
    fn put_get_del_roundtrip() {
        with_object(|ctx, kv| {
            let prev = kv
                .dispatch(
                    ctx,
                    "put",
                    &Value::record([("key", Value::str("a")), ("value", Value::str("1"))]),
                )
                .unwrap();
            assert_eq!(prev, Value::Null);
            let v = kv
                .dispatch(ctx, "get", &Value::record([("key", Value::str("a"))]))
                .unwrap();
            assert_eq!(v, Value::str("1"));
            let deleted = kv
                .dispatch(ctx, "del", &Value::record([("key", Value::str("a"))]))
                .unwrap();
            assert_eq!(deleted, Value::Bool(true));
            let v = kv
                .dispatch(ctx, "get", &Value::record([("key", Value::str("a"))]))
                .unwrap();
            assert_eq!(v, Value::Null);
        });
    }

    #[test]
    fn put_returns_previous_value() {
        with_object(|ctx, kv| {
            kv.dispatch(
                ctx,
                "put",
                &Value::record([("key", Value::str("k")), ("value", Value::str("old"))]),
            )
            .unwrap();
            let prev = kv
                .dispatch(
                    ctx,
                    "put",
                    &Value::record([("key", Value::str("k")), ("value", Value::str("new"))]),
                )
                .unwrap();
            assert_eq!(prev, Value::str("old"));
        });
    }

    #[test]
    fn len_keys_clear() {
        with_object(|ctx, kv| {
            for k in ["b", "a", "c"] {
                kv.dispatch(
                    ctx,
                    "put",
                    &Value::record([("key", Value::str(k)), ("value", Value::str("x"))]),
                )
                .unwrap();
            }
            assert_eq!(
                kv.dispatch(ctx, "len", &Value::Null).unwrap(),
                Value::U64(3)
            );
            let keys = kv.dispatch(ctx, "keys", &Value::Null).unwrap();
            assert_eq!(
                keys,
                Value::list([Value::str("a"), Value::str("b"), Value::str("c")])
            );
            kv.dispatch(ctx, "clear", &Value::Null).unwrap();
            assert_eq!(
                kv.dispatch(ctx, "len", &Value::Null).unwrap(),
                Value::U64(0)
            );
        });
    }

    #[test]
    fn snapshot_restores_identically() {
        with_object(|ctx, kv| {
            for (k, v) in [("x", "1"), ("y", "2")] {
                kv.dispatch(
                    ctx,
                    "put",
                    &Value::record([("key", Value::str(k)), ("value", Value::str(v))]),
                )
                .unwrap();
            }
            let snap = kv.snapshot().unwrap();
            let mut restored = KvStore::from_snapshot(&snap).unwrap();
            assert_eq!(restored.snapshot().unwrap(), snap);
            assert_eq!(
                restored.dispatch(ctx, "len", &Value::Null).unwrap(),
                Value::U64(2)
            );
        });
    }

    #[test]
    fn bad_args_rejected() {
        with_object(|ctx, kv| {
            let err = kv.dispatch(ctx, "get", &Value::Null).unwrap_err();
            assert_eq!(err.code, ErrorCode::BadArgs);
            let err = kv.dispatch(ctx, "frob", &Value::Null).unwrap_err();
            assert_eq!(err.code, ErrorCode::NoSuchOp);
        });
    }

    #[test]
    fn interface_classifies_ops() {
        let i = KvStore::interface();
        assert!(i.is_read("get"));
        assert!(i.is_read("keys"));
        assert!(i.is_write("put"));
        assert!(i.is_write("clear"));
    }
}
