//! The blob store: chunked bulk payloads behind the proxy surface.
//!
//! This is the storage half of the out-of-band bulk data plane
//! (`proxy_core::bulk`): spilled payloads live here, uploaded and
//! fetched chunk-by-chunk over the pipelined RPC channel. Chunk
//! operations are tagged by blob key, so the existing write-invalidation
//! machinery gives cache coherence for free: a `put_chunk` at the origin
//! pushes `inv {svc, tag: key}` to every subscribed edge cache.
//!
//! [`spawn_edge_cache`] is the hierarchy piece: a region-local process
//! serving the same chunk protocol out of a [`CachingProxy`] layered
//! over the origin store. Repeat fetches in a region are served locally;
//! origin writes invalidate the edge through the ordinary subscription.

use std::collections::{BTreeMap, VecDeque};

use bytes::Bytes;
use proxy_core::bulk::{ops, MAX_CHUNK};
use proxy_core::proxies::CachingProxy;
use proxy_core::{
    CachingParams, Coherence, InterfaceDesc, OnewaySink, OpDesc, Proxy, ProxySpec, ServiceObject,
};
use rpc::{ErrorCode, RemoteError, RpcError, RpcServer, Served};
use simnet::{Ctx, Endpoint, Message, NodeId, Simulation};
use wire::Value;

use crate::bad_args;

/// The interface type name (keys the factory registry).
pub const TYPE_NAME: &str = "proxide.blob";

/// Upper bound on a blob's chunk count (with the default 64 KiB chunk
/// this admits 4 GiB blobs, the wire-level `MAX_BULK_LEN`).
pub const MAX_TOTAL_CHUNKS: u64 = 1 << 16;

#[derive(Debug, Clone)]
struct Stored {
    total: u64,
    len: u64,
    crc: u32,
    chunks: Vec<Option<Bytes>>,
}

impl Stored {
    fn complete(&self) -> bool {
        self.chunks.iter().all(Option::is_some)
    }
}

/// Server-side state of the blob store.
#[derive(Debug, Default, Clone)]
pub struct BlobStore {
    map: BTreeMap<String, Stored>,
}

impl BlobStore {
    /// An empty store.
    pub fn new() -> BlobStore {
        BlobStore::default()
    }

    /// The interface every `BlobStore` exports. Chunk reads and writes
    /// are tagged by blob key: edge caches cache per key and origin
    /// writes invalidate per key.
    pub fn interface() -> InterfaceDesc {
        InterfaceDesc::new(
            TYPE_NAME,
            [
                OpDesc::read(ops::GET_CHUNK, "key"),
                OpDesc::read(ops::STAT, "key"),
                OpDesc::write(ops::PUT_CHUNK, "key"),
                OpDesc::write(ops::DEL, "key"),
                OpDesc::read_whole("len"),
            ],
        )
    }

    /// Rebuilds a store from a snapshot (factory entry point).
    ///
    /// # Errors
    ///
    /// Never fails for well-formed snapshots produced by
    /// [`ServiceObject::snapshot`]; malformed entries are skipped.
    pub fn from_snapshot(v: &Value) -> Result<Box<dyn ServiceObject>, RemoteError> {
        let mut store = BlobStore::new();
        if let Some(fields) = v.as_record() {
            for (k, entry) in fields {
                let (Ok(len), Ok(crc), Some(Value::List(chunks))) = (
                    entry.get_u64("len"),
                    entry.get_u64("crc"),
                    entry.get("chunks"),
                ) else {
                    continue;
                };
                let chunks: Vec<Option<Bytes>> = chunks
                    .iter()
                    .filter_map(|c| c.as_blob().cloned())
                    .map(Some)
                    .collect();
                store.map.insert(
                    k.to_string_owned(),
                    Stored {
                        total: chunks.len() as u64,
                        len,
                        crc: crc as u32,
                        chunks,
                    },
                );
            }
        }
        Ok(Box::new(store))
    }

    fn put_chunk(&mut self, args: &Value) -> Result<Value, RemoteError> {
        let _p = obs::scope("blob;chunk_put");
        let key = args.get_str("key").map_err(bad_args)?;
        let seq = args.get_u64("seq").map_err(bad_args)?;
        let total = args.get_u64("total").map_err(bad_args)?;
        let len = args.get_u64("len").map_err(bad_args)?;
        let crc = args.get_u64("crc").map_err(bad_args)? as u32;
        let data = args.get_blob("data").map_err(bad_args)?;
        if total == 0 || total > MAX_TOTAL_CHUNKS {
            return Err(RemoteError::new(
                ErrorCode::BadArgs,
                format!("total {total} outside 1..={MAX_TOTAL_CHUNKS}"),
            ));
        }
        if seq >= total {
            return Err(RemoteError::new(
                ErrorCode::BadArgs,
                format!("seq {seq} >= total {total}"),
            ));
        }
        // The hostile-size guard: a chunk larger than MAX_CHUNK is
        // rejected before it is stored (its bytes necessarily arrived,
        // but they are dropped here rather than retained and served).
        if data.len() > MAX_CHUNK {
            return Err(RemoteError::new(
                ErrorCode::BadArgs,
                format!(
                    "chunk of {} bytes exceeds MAX_CHUNK {MAX_CHUNK}",
                    data.len()
                ),
            ));
        }
        if len > wire::MAX_BULK_LEN {
            return Err(RemoteError::new(
                ErrorCode::BadArgs,
                format!("declared length {len} exceeds MAX_BULK_LEN"),
            ));
        }
        let entry = self.map.entry(key.to_owned()).or_insert_with(|| Stored {
            total,
            len,
            crc,
            chunks: vec![None; total as usize],
        });
        if entry.total != total || entry.len != len || entry.crc != crc {
            // A different payload under the same key: a fresh upload
            // supersedes whatever was there (chunk retransmits of the
            // *same* upload match the header and fall through).
            *entry = Stored {
                total,
                len,
                crc,
                chunks: vec![None; total as usize],
            };
        }
        entry.chunks[seq as usize] = Some(data.clone());
        Ok(Value::Null)
    }

    fn get_chunk(&self, args: &Value) -> Result<Value, RemoteError> {
        let _p = obs::scope("blob;chunk_get");
        let key = args.get_str("key").map_err(bad_args)?;
        let seq = args.get_u64("seq").map_err(bad_args)?;
        let entry = self
            .map
            .get(key)
            .ok_or_else(|| RemoteError::new(ErrorCode::NoSuchObject, key.to_owned()))?;
        let chunk = entry.chunks.get(seq as usize).ok_or_else(|| {
            RemoteError::new(
                ErrorCode::BadArgs,
                format!("seq {seq} >= total {}", entry.total),
            )
        })?;
        match chunk {
            Some(data) => Ok(Value::record([("data", Value::Blob(data.clone()))])),
            None => Err(RemoteError::new(
                ErrorCode::Unavailable,
                format!("{key}: chunk {seq} not yet uploaded"),
            )),
        }
    }

    fn stat(&self, args: &Value) -> Result<Value, RemoteError> {
        let key = args.get_str("key").map_err(bad_args)?;
        let entry = self
            .map
            .get(key)
            .ok_or_else(|| RemoteError::new(ErrorCode::NoSuchObject, key.to_owned()))?;
        Ok(Value::record([
            ("len", Value::U64(entry.len)),
            ("crc", Value::U64(u64::from(entry.crc))),
            ("chunks", Value::U64(entry.total)),
            ("complete", Value::Bool(entry.complete())),
        ]))
    }
}

impl ServiceObject for BlobStore {
    fn interface(&self) -> InterfaceDesc {
        BlobStore::interface()
    }

    fn dispatch(&mut self, _ctx: &mut Ctx, op: &str, args: &Value) -> Result<Value, RemoteError> {
        match op {
            ops::PUT_CHUNK => self.put_chunk(args),
            ops::GET_CHUNK => self.get_chunk(args),
            ops::STAT => self.stat(args),
            ops::DEL => {
                let key = args.get_str("key").map_err(bad_args)?;
                Ok(Value::Bool(self.map.remove(key).is_some()))
            }
            "len" => Ok(Value::U64(self.map.len() as u64)),
            other => Err(RemoteError::new(ErrorCode::NoSuchOp, other.to_owned())),
        }
    }

    fn snapshot(&self) -> Result<Value, RemoteError> {
        Ok(Value::record(self.map.iter().filter_map(|(k, e)| {
            if !e.complete() {
                return None; // partial uploads do not survive migration
            }
            Some((
                k.clone(),
                Value::record([
                    ("len", Value::U64(e.len)),
                    ("crc", Value::U64(u64::from(e.crc))),
                    (
                        "chunks",
                        Value::list(
                            e.chunks
                                .iter()
                                .map(|c| Value::Blob(c.clone().expect("checked complete"))),
                        ),
                    ),
                ]),
            ))
        })))
    }
}

/// The edge cache's stray sink: invalidations are collected for the
/// edge's own proxy, and client requests that arrive while the proxy is
/// blocked on the origin are requeued for service instead of dropped.
struct EdgeSink<'a> {
    oneways: Vec<rpc::Oneway>,
    requeued: &'a mut VecDeque<Message>,
}

impl OnewaySink for EdgeSink<'_> {
    fn push(&mut self, oneway: rpc::Oneway) {
        self.oneways.push(oneway);
    }

    fn push_request(&mut self, msg: &Message) -> bool {
        self.requeued.push_back(msg.clone());
        true
    }
}

/// Spawns a region-local edge cache for the blob store registered under
/// `origin`: a process serving the same chunk protocol out of a
/// [`CachingProxy`] bound to the origin with invalidation coherence.
///
/// The edge registers itself in the name service under `name` (with a
/// plain stub spec — its *clients* need no smarts; the caching happens
/// here). Repeat `get_chunk` fetches for a key are served from the edge
/// cache without touching the WAN; a write at the origin pushes an
/// invalidation to the edge's subscription, after which the next fetch
/// re-reads through to the origin.
///
/// While the edge is blocked on an origin miss, concurrent client
/// requests landing in its mailbox are captured (via
/// [`OnewaySink::push_request`]) and requeued, so pipelined clients
/// never lose a request to the edge's own upstream latency.
pub fn spawn_edge_cache(
    sim: &Simulation,
    node: NodeId,
    ns: Endpoint,
    name: impl Into<String>,
    origin: impl Into<String>,
    capacity: usize,
) -> Endpoint {
    let name = name.into();
    let origin = origin.into();
    let label = format!("edge-{name}");
    sim.spawn(label, node, move |ctx| {
        let mut nsc = naming::NameClient::new(ns);
        // The origin registers asynchronously; wait for it.
        let record = loop {
            match nsc.resolve(ctx, &origin) {
                Ok(r) => break r,
                Err(e) if naming::is_not_found(&e) => {
                    nsc.forget(&origin);
                    if ctx.sleep(std::time::Duration::from_millis(1)).is_err() {
                        return;
                    }
                }
                Err(RpcError::Stopped) => return,
                Err(e) => panic!("edge cache failed to resolve origin `{origin}`: {e}"),
            }
        };
        let iface = record
            .meta
            .get("iface")
            .and_then(|v| InterfaceDesc::from_value(v).ok())
            .unwrap_or_else(BlobStore::interface);
        let params = CachingParams {
            coherence: Coherence::Invalidate,
            capacity,
        };
        let mut proxy = match CachingProxy::bind(
            ctx,
            origin.clone(),
            record.endpoint,
            ns,
            iface.clone(),
            params,
        ) {
            Ok(p) => p,
            Err(RpcError::Stopped) => return,
            Err(e) => panic!("edge cache failed to bind origin `{origin}`: {e}"),
        };
        let meta = Value::record([
            ("spec", ProxySpec::Stub.to_value()),
            ("iface", iface.to_value()),
        ]);
        match nsc.register(ctx, &name, ctx.endpoint(), meta) {
            Ok(_) => {}
            Err(RpcError::Stopped) => return,
            Err(e) => panic!("edge cache `{name}` failed to register: {e}"),
        }
        let mut rpc = RpcServer::new();
        // Requests that strayed in while a miss blocked on the origin;
        // replayed before the next receive (same discipline as the
        // replication primary's propagation window).
        let mut requeued: VecDeque<Message> = VecDeque::new();
        loop {
            let msg = match requeued.pop_front() {
                Some(m) => m,
                None => match ctx.recv() {
                    Ok(m) => m,
                    Err(_) => return,
                },
            };
            let served = rpc.handle(ctx, &msg, |ctx, req| {
                let mut sink = EdgeSink {
                    oneways: Vec::new(),
                    requeued: &mut requeued,
                };
                let r = proxy.invoke(ctx, &req.op, req.args.clone(), &mut sink);
                // Invalidations the origin call absorbed belong to us.
                for o in sink.oneways {
                    proxy.on_oneway(ctx, &o);
                }
                match r {
                    Ok(v) => Ok(v),
                    Err(RpcError::Remote(re)) => Err(re),
                    Err(e) => Err(RemoteError::new(ErrorCode::Unavailable, e.to_string())),
                }
            });
            if let Served::Oneway(o) = served {
                proxy.on_oneway(ctx, &o);
            }
            ctx.obs()
                .set_proxy_stats(ctx.name(), &origin, proxy.stats());
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use simnet::{NetworkConfig, Simulation};

    fn with_object(f: impl FnOnce(&mut Ctx, &mut BlobStore) + Send + 'static) {
        let mut sim = Simulation::new(NetworkConfig::lan(), 0);
        sim.spawn("driver", NodeId(0), move |ctx| {
            let mut store = BlobStore::new();
            f(ctx, &mut store);
        });
        sim.run();
    }

    fn put_args(key: &str, seq: u64, total: u64, len: u64, crc: u32, data: &[u8]) -> Value {
        Value::record([
            ("key", Value::str(key)),
            ("seq", Value::U64(seq)),
            ("total", Value::U64(total)),
            ("len", Value::U64(len)),
            ("crc", Value::U64(u64::from(crc))),
            ("data", Value::blob(data.to_vec())),
        ])
    }

    #[test]
    fn chunked_put_get_roundtrip() {
        with_object(|ctx, store| {
            let payload: Vec<u8> = (0..300u32).map(|i| i as u8).collect();
            let crc = wire::crc32(&payload);
            for (seq, chunk) in payload.chunks(128).enumerate() {
                store
                    .dispatch(
                        ctx,
                        ops::PUT_CHUNK,
                        &put_args("k", seq as u64, 3, 300, crc, chunk),
                    )
                    .unwrap();
            }
            let stat = store
                .dispatch(ctx, ops::STAT, &Value::record([("key", Value::str("k"))]))
                .unwrap();
            assert_eq!(stat.get_u64("len").unwrap(), 300);
            assert_eq!(stat.get("complete"), Some(&Value::Bool(true)));
            let mut out = Vec::new();
            for seq in 0..3 {
                let rep = store
                    .dispatch(
                        ctx,
                        ops::GET_CHUNK,
                        &Value::record([("key", Value::str("k")), ("seq", Value::U64(seq))]),
                    )
                    .unwrap();
                out.extend_from_slice(rep.get_blob("data").unwrap());
            }
            assert_eq!(out, payload);
        });
    }

    #[test]
    fn retransmitted_chunk_is_idempotent_and_new_upload_supersedes() {
        with_object(|ctx, store| {
            let a = vec![1u8; 64];
            let crc_a = wire::crc32(&a);
            store
                .dispatch(ctx, ops::PUT_CHUNK, &put_args("k", 0, 1, 64, crc_a, &a))
                .unwrap();
            // Duplicate delivery of the same chunk: same result.
            store
                .dispatch(ctx, ops::PUT_CHUNK, &put_args("k", 0, 1, 64, crc_a, &a))
                .unwrap();
            let stat = store
                .dispatch(ctx, ops::STAT, &Value::record([("key", Value::str("k"))]))
                .unwrap();
            assert_eq!(stat.get("complete"), Some(&Value::Bool(true)));
            // A different payload under the same key resets the entry.
            let b = vec![2u8; 32];
            let crc_b = wire::crc32(&b);
            store
                .dispatch(ctx, ops::PUT_CHUNK, &put_args("k", 0, 2, 64, crc_b, &b))
                .unwrap();
            let stat = store
                .dispatch(ctx, ops::STAT, &Value::record([("key", Value::str("k"))]))
                .unwrap();
            assert_eq!(stat.get("complete"), Some(&Value::Bool(false)));
        });
    }

    #[test]
    fn hostile_sizes_rejected() {
        with_object(|ctx, store| {
            let big = vec![0u8; MAX_CHUNK + 1];
            let err = store
                .dispatch(ctx, ops::PUT_CHUNK, &put_args("k", 0, 1, 1, 0, &big))
                .unwrap_err();
            assert_eq!(err.code, ErrorCode::BadArgs);
            let err = store
                .dispatch(
                    ctx,
                    ops::PUT_CHUNK,
                    &put_args("k", 0, MAX_TOTAL_CHUNKS + 1, 1, 0, &[1]),
                )
                .unwrap_err();
            assert_eq!(err.code, ErrorCode::BadArgs);
            let err = store
                .dispatch(ctx, ops::PUT_CHUNK, &put_args("k", 5, 2, 1, 0, &[1]))
                .unwrap_err();
            assert_eq!(err.code, ErrorCode::BadArgs);
            assert_eq!(
                store.dispatch(ctx, "len", &Value::Null).unwrap(),
                Value::U64(0),
                "rejected chunks must not be retained"
            );
        });
    }

    #[test]
    fn missing_key_and_chunk_errors() {
        with_object(|ctx, store| {
            let err = store
                .dispatch(
                    ctx,
                    ops::GET_CHUNK,
                    &Value::record([("key", Value::str("nope")), ("seq", Value::U64(0))]),
                )
                .unwrap_err();
            assert_eq!(err.code, ErrorCode::NoSuchObject);
            store
                .dispatch(ctx, ops::PUT_CHUNK, &put_args("k", 0, 2, 64, 7, &[1]))
                .unwrap();
            let err = store
                .dispatch(
                    ctx,
                    ops::GET_CHUNK,
                    &Value::record([("key", Value::str("k")), ("seq", Value::U64(1))]),
                )
                .unwrap_err();
            assert_eq!(err.code, ErrorCode::Unavailable);
        });
    }

    #[test]
    fn snapshot_keeps_only_complete_blobs() {
        with_object(|ctx, store| {
            let data = vec![9u8; 16];
            let crc = wire::crc32(&data);
            store
                .dispatch(ctx, ops::PUT_CHUNK, &put_args("done", 0, 1, 16, crc, &data))
                .unwrap();
            store
                .dispatch(
                    ctx,
                    ops::PUT_CHUNK,
                    &put_args("partial", 0, 2, 32, 0, &data),
                )
                .unwrap();
            let snap = store.snapshot().unwrap();
            let mut restored = BlobStore::from_snapshot(&snap).unwrap();
            assert_eq!(
                restored.dispatch(ctx, "len", &Value::Null).unwrap(),
                Value::U64(1)
            );
            let rep = restored
                .dispatch(
                    ctx,
                    ops::GET_CHUNK,
                    &Value::record([("key", Value::str("done")), ("seq", Value::U64(0))]),
                )
                .unwrap();
            assert_eq!(rep.get_blob("data").unwrap().as_ref(), &data[..]);
        });
    }

    #[test]
    fn interface_tags_chunk_ops_by_key() {
        let i = BlobStore::interface();
        assert!(i.is_read(ops::GET_CHUNK));
        assert!(i.is_write(ops::PUT_CHUNK));
        let args = Value::record([("key", Value::str("k7")), ("seq", Value::U64(3))]);
        assert_eq!(i.op(ops::GET_CHUNK).unwrap().tag(&args), "k7");
        assert_eq!(i.op(ops::PUT_CHUNK).unwrap().tag(&args), "k7");
    }
}
