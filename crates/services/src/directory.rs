//! A directory service: path → entry, read-mostly.
//!
//! The replication example (experiment E4): directories are read far
//! more often than they change, so a service can replicate itself and
//! hand clients replica-reading proxies.

use std::collections::BTreeMap;

use proxy_core::{InterfaceDesc, OpDesc, ProxyHandle, ServiceObject, Session};
use rpc::{ErrorCode, RemoteError, RpcError};
use simnet::Ctx;
use wire::Value;

use crate::bad_args;

/// The interface type name (keys the factory registry).
pub const TYPE_NAME: &str = "proxide.directory";

/// A directory entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DirEntry {
    /// Opaque payload (e.g. an address, a document id).
    pub value: String,
    /// Monotonic per-entry revision.
    pub revision: u64,
}

/// Server-side state of the directory.
#[derive(Debug, Default, Clone)]
pub struct Directory {
    entries: BTreeMap<String, DirEntry>,
    /// Simulated compute charged per operation (models lookup cost and
    /// creates server contention in throughput experiments).
    service_time: std::time::Duration,
}

impl Directory {
    /// An empty directory.
    pub fn new() -> Directory {
        Directory::default()
    }

    /// Charges a simulated compute cost on every operation.
    pub fn with_service_time(mut self, d: std::time::Duration) -> Directory {
        self.service_time = d;
        self
    }

    /// The interface every `Directory` exports.
    pub fn interface() -> InterfaceDesc {
        InterfaceDesc::new(
            TYPE_NAME,
            [
                OpDesc::read("lookup", "path"),
                OpDesc::write("insert", "path"),
                OpDesc::write("remove", "path"),
                OpDesc::read_whole("list"),
                OpDesc::read_whole("len"),
            ],
        )
    }

    /// Rebuilds a directory from a snapshot (factory entry point).
    ///
    /// # Errors
    ///
    /// Never fails; malformed snapshot fields are skipped.
    pub fn from_snapshot(v: &Value) -> Result<Box<dyn ServiceObject>, RemoteError> {
        let mut d = Directory::new();
        if let Some(fields) = v.as_record() {
            for (path, entry) in fields {
                if let (Ok(value), Ok(revision)) = (entry.get_str("v"), entry.get_u64("r")) {
                    d.entries.insert(
                        path.to_string_owned(),
                        DirEntry {
                            value: value.to_owned(),
                            revision,
                        },
                    );
                }
            }
        }
        Ok(Box::new(d))
    }
}

impl ServiceObject for Directory {
    fn interface(&self) -> InterfaceDesc {
        Directory::interface()
    }

    fn dispatch(&mut self, ctx: &mut Ctx, op: &str, args: &Value) -> Result<Value, RemoteError> {
        if !self.service_time.is_zero() {
            let _ = ctx.sleep(self.service_time);
        }
        match op {
            "lookup" => {
                let path = args.get_str("path").map_err(bad_args)?;
                Ok(self
                    .entries
                    .get(path)
                    .map(|e| {
                        Value::record([
                            ("v", Value::str(e.value.clone())),
                            ("r", Value::U64(e.revision)),
                        ])
                    })
                    .unwrap_or(Value::Null))
            }
            "insert" => {
                let path = args.get_str("path").map_err(bad_args)?;
                let value = args.get_str("value").map_err(bad_args)?;
                let revision = self.entries.get(path).map(|e| e.revision + 1).unwrap_or(1);
                self.entries.insert(
                    path.to_owned(),
                    DirEntry {
                        value: value.to_owned(),
                        revision,
                    },
                );
                Ok(Value::U64(revision))
            }
            "remove" => {
                let path = args.get_str("path").map_err(bad_args)?;
                Ok(Value::Bool(self.entries.remove(path).is_some()))
            }
            "list" => {
                let prefix = args.get("prefix").and_then(Value::as_str).unwrap_or("");
                Ok(Value::list(
                    self.entries
                        .keys()
                        .filter(|k| k.starts_with(prefix))
                        .map(Value::str),
                ))
            }
            "len" => Ok(Value::U64(self.entries.len() as u64)),
            other => Err(RemoteError::new(ErrorCode::NoSuchOp, other.to_owned())),
        }
    }

    fn snapshot(&self) -> Result<Value, RemoteError> {
        Ok(Value::record(self.entries.iter().map(|(path, e)| {
            (
                path.clone(),
                Value::record([
                    ("v", Value::str(e.value.clone())),
                    ("r", Value::U64(e.revision)),
                ]),
            )
        })))
    }
}

/// Typed client wrapper for the directory service.
#[derive(Debug, Clone, Copy)]
pub struct DirectoryClient {
    handle: ProxyHandle,
}

impl DirectoryClient {
    /// Binds to the named directory service.
    ///
    /// # Errors
    ///
    /// Any [`RpcError`] from the bind.
    pub fn bind(session: &mut Session<'_>, service: &str) -> Result<DirectoryClient, RpcError> {
        Ok(DirectoryClient {
            handle: session.bind(service)?,
        })
    }

    /// The underlying proxy handle (for stats).
    pub fn handle(&self) -> ProxyHandle {
        self.handle
    }

    /// Looks a path up.
    ///
    /// # Errors
    ///
    /// Any [`RpcError`] from the invocation.
    pub fn lookup(
        &self,
        session: &mut Session<'_>,
        path: &str,
    ) -> Result<Option<DirEntry>, RpcError> {
        let v = session.invoke(
            self.handle,
            "lookup",
            Value::record([("path", Value::str(path))]),
        )?;
        if v == Value::Null {
            return Ok(None);
        }
        Ok(Some(DirEntry {
            value: v.get_str("v")?.to_owned(),
            revision: v.get_u64("r")?,
        }))
    }

    /// Inserts or replaces an entry, returning its new revision.
    ///
    /// # Errors
    ///
    /// Any [`RpcError`] from the invocation.
    pub fn insert(
        &self,
        session: &mut Session<'_>,
        path: &str,
        value: &str,
    ) -> Result<u64, RpcError> {
        let v = session.invoke(
            self.handle,
            "insert",
            Value::record([("path", Value::str(path)), ("value", Value::str(value))]),
        )?;
        Ok(v.as_u64().unwrap_or(0))
    }

    /// Removes an entry; true if it existed.
    ///
    /// # Errors
    ///
    /// Any [`RpcError`] from the invocation.
    pub fn remove(&self, session: &mut Session<'_>, path: &str) -> Result<bool, RpcError> {
        let v = session.invoke(
            self.handle,
            "remove",
            Value::record([("path", Value::str(path))]),
        )?;
        Ok(v.as_bool().unwrap_or(false))
    }

    /// Lists paths with the given prefix.
    ///
    /// # Errors
    ///
    /// Any [`RpcError`] from the invocation.
    pub fn list(&self, session: &mut Session<'_>, prefix: &str) -> Result<Vec<String>, RpcError> {
        let v = session.invoke(
            self.handle,
            "list",
            Value::record([("prefix", Value::str(prefix))]),
        )?;
        Ok(v.as_list()
            .map(|items| {
                items
                    .iter()
                    .filter_map(|i| i.as_str().map(str::to_owned))
                    .collect()
            })
            .unwrap_or_default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simnet::{NetworkConfig, NodeId, Simulation};

    fn with_object(f: impl FnOnce(&mut Ctx, &mut Directory) + Send + 'static) {
        let mut sim = Simulation::new(NetworkConfig::lan(), 0);
        sim.spawn("driver", NodeId(0), move |ctx| {
            let mut d = Directory::new();
            f(ctx, &mut d);
        });
        sim.run();
    }

    #[test]
    fn insert_lookup_remove() {
        with_object(|ctx, d| {
            let r1 = d
                .dispatch(
                    ctx,
                    "insert",
                    &Value::record([("path", Value::str("/a")), ("value", Value::str("x"))]),
                )
                .unwrap();
            assert_eq!(r1, Value::U64(1));
            let e = d
                .dispatch(ctx, "lookup", &Value::record([("path", Value::str("/a"))]))
                .unwrap();
            assert_eq!(e.get_str("v").unwrap(), "x");
            let removed = d
                .dispatch(ctx, "remove", &Value::record([("path", Value::str("/a"))]))
                .unwrap();
            assert_eq!(removed, Value::Bool(true));
        });
    }

    #[test]
    fn revisions_increment_per_entry() {
        with_object(|ctx, d| {
            for expected in 1..=3u64 {
                let r = d
                    .dispatch(
                        ctx,
                        "insert",
                        &Value::record([("path", Value::str("/a")), ("value", Value::str("x"))]),
                    )
                    .unwrap();
                assert_eq!(r, Value::U64(expected));
            }
            // Independent path starts at 1.
            let r = d
                .dispatch(
                    ctx,
                    "insert",
                    &Value::record([("path", Value::str("/b")), ("value", Value::str("y"))]),
                )
                .unwrap();
            assert_eq!(r, Value::U64(1));
        });
    }

    #[test]
    fn list_filters_by_prefix() {
        with_object(|ctx, d| {
            for p in ["/etc/hosts", "/etc/passwd", "/var/log"] {
                d.dispatch(
                    ctx,
                    "insert",
                    &Value::record([("path", Value::str(p)), ("value", Value::str("_"))]),
                )
                .unwrap();
            }
            let v = d
                .dispatch(
                    ctx,
                    "list",
                    &Value::record([("prefix", Value::str("/etc/"))]),
                )
                .unwrap();
            assert_eq!(
                v,
                Value::list([Value::str("/etc/hosts"), Value::str("/etc/passwd")])
            );
        });
    }

    #[test]
    fn snapshot_preserves_revisions() {
        with_object(|ctx, d| {
            d.dispatch(
                ctx,
                "insert",
                &Value::record([("path", Value::str("/a")), ("value", Value::str("1"))]),
            )
            .unwrap();
            d.dispatch(
                ctx,
                "insert",
                &Value::record([("path", Value::str("/a")), ("value", Value::str("2"))]),
            )
            .unwrap();
            let snap = d.snapshot().unwrap();
            let restored = Directory::from_snapshot(&snap).unwrap();
            assert_eq!(restored.snapshot().unwrap(), snap);
        });
    }
}
