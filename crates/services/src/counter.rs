//! A counter service — tiny state, ideal for migration experiments.
//!
//! Experiment E3 migrates this object toward its dominant user: the
//! state fits in one datagram, so the checkout cost is one RTT and the
//! crossover against a stub appears after only a handful of calls.

use proxy_core::{InterfaceDesc, OpDesc, ProxyHandle, ServiceObject, Session};
use rpc::{ErrorCode, RemoteError, RpcError};
use simnet::Ctx;
use wire::Value;

use crate::bad_args;

/// The interface type name (keys the factory registry).
pub const TYPE_NAME: &str = "proxide.counter";

/// Server-side state of the counter.
#[derive(Debug, Default, Clone, Copy)]
pub struct Counter {
    value: u64,
}

impl Counter {
    /// A counter starting at zero.
    pub fn new() -> Counter {
        Counter::default()
    }

    /// A counter starting at `value`.
    pub fn starting_at(value: u64) -> Counter {
        Counter { value }
    }

    /// The interface every `Counter` exports.
    pub fn interface() -> InterfaceDesc {
        InterfaceDesc::new(
            TYPE_NAME,
            [
                OpDesc::read_whole("get"),
                OpDesc::write_whole("inc"),
                OpDesc::write_whole("add"),
                OpDesc::write_whole("reset"),
            ],
        )
    }

    /// Rebuilds a counter from a snapshot (factory entry point).
    ///
    /// # Errors
    ///
    /// Never fails; a malformed snapshot restores to zero.
    pub fn from_snapshot(v: &Value) -> Result<Box<dyn ServiceObject>, RemoteError> {
        Ok(Box::new(Counter {
            value: v.as_u64().unwrap_or(0),
        }))
    }
}

impl ServiceObject for Counter {
    fn interface(&self) -> InterfaceDesc {
        Counter::interface()
    }

    fn dispatch(&mut self, _ctx: &mut Ctx, op: &str, args: &Value) -> Result<Value, RemoteError> {
        match op {
            "get" => Ok(Value::U64(self.value)),
            "inc" => {
                self.value += 1;
                Ok(Value::U64(self.value))
            }
            "add" => {
                let n = args.get_u64("n").map_err(bad_args)?;
                self.value = self.value.saturating_add(n);
                Ok(Value::U64(self.value))
            }
            "reset" => {
                self.value = 0;
                Ok(Value::Null)
            }
            other => Err(RemoteError::new(ErrorCode::NoSuchOp, other.to_owned())),
        }
    }

    fn snapshot(&self) -> Result<Value, RemoteError> {
        Ok(Value::U64(self.value))
    }
}

/// Typed client wrapper for the counter service.
#[derive(Debug, Clone, Copy)]
pub struct CounterClient {
    handle: ProxyHandle,
}

impl CounterClient {
    /// Binds to the named counter service.
    ///
    /// # Errors
    ///
    /// Any [`RpcError`] from the bind.
    pub fn bind(session: &mut Session<'_>, service: &str) -> Result<CounterClient, RpcError> {
        Ok(CounterClient {
            handle: session.bind(service)?,
        })
    }

    /// The underlying proxy handle (for stats).
    pub fn handle(&self) -> ProxyHandle {
        self.handle
    }

    /// Current value.
    ///
    /// # Errors
    ///
    /// Any [`RpcError`] from the invocation.
    pub fn get(&self, session: &mut Session<'_>) -> Result<u64, RpcError> {
        let v = session.invoke(self.handle, "get", Value::Null)?;
        Ok(v.as_u64().unwrap_or(0))
    }

    /// Increments and returns the new value.
    ///
    /// # Errors
    ///
    /// Any [`RpcError`] from the invocation.
    pub fn inc(&self, session: &mut Session<'_>) -> Result<u64, RpcError> {
        let v = session.invoke(self.handle, "inc", Value::Null)?;
        Ok(v.as_u64().unwrap_or(0))
    }

    /// Adds `n` and returns the new value.
    ///
    /// # Errors
    ///
    /// Any [`RpcError`] from the invocation.
    pub fn add(&self, session: &mut Session<'_>, n: u64) -> Result<u64, RpcError> {
        let v = session.invoke(self.handle, "add", Value::record([("n", Value::U64(n))]))?;
        Ok(v.as_u64().unwrap_or(0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simnet::{NetworkConfig, NodeId, Simulation};

    fn with_object(f: impl FnOnce(&mut Ctx, &mut Counter) + Send + 'static) {
        let mut sim = Simulation::new(NetworkConfig::lan(), 0);
        sim.spawn("driver", NodeId(0), move |ctx| {
            let mut c = Counter::new();
            f(ctx, &mut c);
        });
        sim.run();
    }

    #[test]
    fn inc_add_get_reset() {
        with_object(|ctx, c| {
            assert_eq!(c.dispatch(ctx, "inc", &Value::Null).unwrap(), Value::U64(1));
            assert_eq!(
                c.dispatch(ctx, "add", &Value::record([("n", Value::U64(10))]))
                    .unwrap(),
                Value::U64(11)
            );
            assert_eq!(
                c.dispatch(ctx, "get", &Value::Null).unwrap(),
                Value::U64(11)
            );
            c.dispatch(ctx, "reset", &Value::Null).unwrap();
            assert_eq!(c.dispatch(ctx, "get", &Value::Null).unwrap(), Value::U64(0));
        });
    }

    #[test]
    fn add_saturates() {
        with_object(|ctx, c| {
            c.dispatch(ctx, "add", &Value::record([("n", Value::U64(u64::MAX))]))
                .unwrap();
            let v = c
                .dispatch(ctx, "add", &Value::record([("n", Value::U64(5))]))
                .unwrap();
            assert_eq!(v, Value::U64(u64::MAX));
        });
    }

    #[test]
    fn snapshot_roundtrip() {
        let c = Counter::starting_at(42);
        let snap = c.snapshot().unwrap();
        let restored = Counter::from_snapshot(&snap).unwrap();
        assert_eq!(restored.snapshot().unwrap(), Value::U64(42));
    }
}
