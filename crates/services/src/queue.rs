//! A print-queue service — write-heavy, order-sensitive.
//!
//! Submissions and take-offs are both writes, so caching buys nothing
//! here: the control case in experiment E2's sweep, and a correctness
//! stressor for at-most-once semantics (duplicated submissions would
//! print documents twice).

use std::collections::VecDeque;

use proxy_core::{InterfaceDesc, OpDesc, ProxyHandle, ServiceObject, Session};
use rpc::{ErrorCode, RemoteError, RpcError};
use simnet::Ctx;
use wire::Value;

use crate::bad_args;

/// The interface type name (keys the factory registry).
pub const TYPE_NAME: &str = "proxide.queue";

/// Server-side state of the print queue.
#[derive(Debug, Default, Clone)]
pub struct PrintQueue {
    jobs: VecDeque<(u64, String)>,
    next_id: u64,
}

impl PrintQueue {
    /// An empty queue.
    pub fn new() -> PrintQueue {
        PrintQueue::default()
    }

    /// The interface every `PrintQueue` exports.
    pub fn interface() -> InterfaceDesc {
        InterfaceDesc::new(
            TYPE_NAME,
            [
                OpDesc::write_whole("submit"),
                OpDesc::write_whole("take"),
                OpDesc::read_whole("len"),
                OpDesc::read_whole("peek"),
            ],
        )
    }

    /// Rebuilds a queue from a snapshot (factory entry point).
    ///
    /// # Errors
    ///
    /// Never fails; malformed snapshot fields are skipped.
    pub fn from_snapshot(v: &Value) -> Result<Box<dyn ServiceObject>, RemoteError> {
        let mut q = PrintQueue::new();
        q.next_id = v.get_u64("next").unwrap_or(1);
        if let Ok(items) = v.get_list("jobs") {
            for item in items {
                if let (Ok(id), Ok(doc)) = (item.get_u64("id"), item.get_str("doc")) {
                    q.jobs.push_back((id, doc.to_owned()));
                }
            }
        }
        Ok(Box::new(q))
    }
}

impl ServiceObject for PrintQueue {
    fn interface(&self) -> InterfaceDesc {
        PrintQueue::interface()
    }

    fn dispatch(&mut self, _ctx: &mut Ctx, op: &str, args: &Value) -> Result<Value, RemoteError> {
        match op {
            "submit" => {
                let doc = args.get_str("doc").map_err(bad_args)?;
                self.next_id += 1;
                let id = self.next_id;
                self.jobs.push_back((id, doc.to_owned()));
                Ok(Value::U64(id))
            }
            "take" => Ok(self
                .jobs
                .pop_front()
                .map(|(id, doc)| Value::record([("id", Value::U64(id)), ("doc", Value::str(doc))]))
                .unwrap_or(Value::Null)),
            "peek" => Ok(self
                .jobs
                .front()
                .map(|(id, doc)| {
                    Value::record([("id", Value::U64(*id)), ("doc", Value::str(doc.clone()))])
                })
                .unwrap_or(Value::Null)),
            "len" => Ok(Value::U64(self.jobs.len() as u64)),
            other => Err(RemoteError::new(ErrorCode::NoSuchOp, other.to_owned())),
        }
    }

    fn snapshot(&self) -> Result<Value, RemoteError> {
        Ok(Value::record([
            ("next", Value::U64(self.next_id)),
            (
                "jobs",
                Value::list(self.jobs.iter().map(|(id, doc)| {
                    Value::record([("id", Value::U64(*id)), ("doc", Value::str(doc.clone()))])
                })),
            ),
        ]))
    }
}

/// A job taken from the queue.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Job {
    /// Server-assigned id (monotonic).
    pub id: u64,
    /// The submitted document.
    pub doc: String,
}

/// Typed client wrapper for the print queue.
#[derive(Debug, Clone, Copy)]
pub struct QueueClient {
    handle: ProxyHandle,
}

impl QueueClient {
    /// Binds to the named queue service.
    ///
    /// # Errors
    ///
    /// Any [`RpcError`] from the bind.
    pub fn bind(session: &mut Session<'_>, service: &str) -> Result<QueueClient, RpcError> {
        Ok(QueueClient {
            handle: session.bind(service)?,
        })
    }

    /// The underlying proxy handle (for stats).
    pub fn handle(&self) -> ProxyHandle {
        self.handle
    }

    /// Submits a document, returning its job id.
    ///
    /// # Errors
    ///
    /// Any [`RpcError`] from the invocation.
    pub fn submit(&self, session: &mut Session<'_>, doc: &str) -> Result<u64, RpcError> {
        let v = session.invoke(
            self.handle,
            "submit",
            Value::record([("doc", Value::str(doc))]),
        )?;
        Ok(v.as_u64().unwrap_or(0))
    }

    /// Takes the next job, if any.
    ///
    /// # Errors
    ///
    /// Any [`RpcError`] from the invocation.
    pub fn take(&self, session: &mut Session<'_>) -> Result<Option<Job>, RpcError> {
        let v = session.invoke(self.handle, "take", Value::Null)?;
        if v == Value::Null {
            return Ok(None);
        }
        Ok(Some(Job {
            id: v.get_u64("id")?,
            doc: v.get_str("doc")?.to_owned(),
        }))
    }

    /// Queue length.
    ///
    /// # Errors
    ///
    /// Any [`RpcError`] from the invocation.
    pub fn len(&self, session: &mut Session<'_>) -> Result<u64, RpcError> {
        let v = session.invoke(self.handle, "len", Value::Null)?;
        Ok(v.as_u64().unwrap_or(0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simnet::{NetworkConfig, NodeId, Simulation};

    fn with_object(f: impl FnOnce(&mut Ctx, &mut PrintQueue) + Send + 'static) {
        let mut sim = Simulation::new(NetworkConfig::lan(), 0);
        sim.spawn("driver", NodeId(0), move |ctx| {
            let mut q = PrintQueue::new();
            f(ctx, &mut q);
        });
        sim.run();
    }

    #[test]
    fn fifo_order() {
        with_object(|ctx, q| {
            for doc in ["a", "b", "c"] {
                q.dispatch(ctx, "submit", &Value::record([("doc", Value::str(doc))]))
                    .unwrap();
            }
            for expected in ["a", "b", "c"] {
                let v = q.dispatch(ctx, "take", &Value::Null).unwrap();
                assert_eq!(v.get_str("doc").unwrap(), expected);
            }
            assert_eq!(q.dispatch(ctx, "take", &Value::Null).unwrap(), Value::Null);
        });
    }

    #[test]
    fn ids_are_monotonic() {
        with_object(|ctx, q| {
            let a = q
                .dispatch(ctx, "submit", &Value::record([("doc", Value::str("x"))]))
                .unwrap();
            let b = q
                .dispatch(ctx, "submit", &Value::record([("doc", Value::str("y"))]))
                .unwrap();
            assert!(b.as_u64().unwrap() > a.as_u64().unwrap());
        });
    }

    #[test]
    fn peek_does_not_remove() {
        with_object(|ctx, q| {
            q.dispatch(ctx, "submit", &Value::record([("doc", Value::str("x"))]))
                .unwrap();
            let p1 = q.dispatch(ctx, "peek", &Value::Null).unwrap();
            let p2 = q.dispatch(ctx, "peek", &Value::Null).unwrap();
            assert_eq!(p1, p2);
            assert_eq!(q.dispatch(ctx, "len", &Value::Null).unwrap(), Value::U64(1));
        });
    }

    #[test]
    fn snapshot_preserves_order_and_ids() {
        with_object(|ctx, q| {
            for doc in ["a", "b"] {
                q.dispatch(ctx, "submit", &Value::record([("doc", Value::str(doc))]))
                    .unwrap();
            }
            q.dispatch(ctx, "take", &Value::Null).unwrap();
            let snap = q.snapshot().unwrap();
            let mut restored = PrintQueue::from_snapshot(&snap).unwrap();
            // Next submission continues the id sequence.
            let id = restored
                .dispatch(ctx, "submit", &Value::record([("doc", Value::str("c"))]))
                .unwrap();
            assert_eq!(id, Value::U64(3));
            let next = restored.dispatch(ctx, "take", &Value::Null).unwrap();
            assert_eq!(next.get_str("doc").unwrap(), "b");
        });
    }
}
