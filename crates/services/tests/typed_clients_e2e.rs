//! End-to-end tests of every typed client wrapper over the network —
//! the interfaces a stub compiler would emit, exercised exactly as an
//! application would.

use std::time::Duration;

use naming::spawn_name_server;
use proxy_core::{CachingParams, ClientRuntime, Coherence, ProxySpec, ServiceBuilder, Session};
use services::counter::{Counter, CounterClient};
use services::directory::{Directory, DirectoryClient};
use services::file::{BlockFile, FileClient};
use services::kv::{KvClient, KvStore};
use services::queue::{PrintQueue, QueueClient};
use simnet::{NetworkConfig, NodeId, Simulation};

#[test]
fn kv_client_full_surface() {
    let mut sim = Simulation::new(NetworkConfig::lan(), 1);
    let ns = spawn_name_server(&sim, NodeId(0));
    ServiceBuilder::new("kv")
        .object(|| Box::new(KvStore::new()))
        .spawn(&sim, NodeId(1), ns);
    sim.spawn("client", NodeId(2), move |ctx| {
        let mut rt = ClientRuntime::new(ns);
        let mut s = Session::new(&mut rt, ctx);
        let kv = KvClient::bind(&mut s, "kv").unwrap();
        assert!(kv.is_empty(&mut s).unwrap());
        assert_eq!(kv.put(&mut s, "a", "1").unwrap(), None);
        assert_eq!(kv.put(&mut s, "a", "2").unwrap(), Some("1".into()));
        assert_eq!(kv.get(&mut s, "a").unwrap(), Some("2".into()));
        assert_eq!(kv.get(&mut s, "zzz").unwrap(), None);
        assert_eq!(kv.len(&mut s).unwrap(), 1);
        assert!(kv.del(&mut s, "a").unwrap());
        assert!(!kv.del(&mut s, "a").unwrap());
        assert!(kv.is_empty(&mut s).unwrap());
    });
    sim.run();
}

#[test]
fn file_client_full_surface() {
    let mut sim = Simulation::new(NetworkConfig::lan(), 2);
    let ns = spawn_name_server(&sim, NodeId(0));
    ServiceBuilder::new("fs")
        .spec(ProxySpec::Caching(CachingParams {
            coherence: Coherence::Invalidate,
            capacity: 64,
        }))
        .object(|| Box::new(BlockFile::new()))
        .spawn(&sim, NodeId(1), ns);
    sim.spawn("client", NodeId(2), move |ctx| {
        let mut rt = ClientRuntime::new(ns);
        let mut s = Session::new(&mut rt, ctx);
        let fs = FileClient::bind(&mut s, "fs").unwrap();
        assert_eq!(fs.read(&mut s, "doc", 0).unwrap(), None);
        fs.write(&mut s, "doc", 0, vec![1, 2, 3]).unwrap();
        assert_eq!(
            fs.read(&mut s, "doc", 0).unwrap().as_deref(),
            Some(&[1u8, 2, 3][..])
        );
        // Cached second read.
        fs.read(&mut s, "doc", 0).unwrap();
        assert_eq!(s.stats(fs.handle()).local_hits, 1);
        assert_eq!(fs.blocks(&mut s).unwrap(), 1);
        // Oversized block surfaces the remote validation error.
        let err = fs
            .write(&mut s, "doc", 1, vec![0u8; services::file::BLOCK_SIZE + 1])
            .unwrap_err();
        assert!(matches!(err, rpc::RpcError::Remote(ref e) if e.code == rpc::ErrorCode::BadArgs));
    });
    sim.run();
}

#[test]
fn counter_client_full_surface() {
    let mut sim = Simulation::new(NetworkConfig::lan(), 3);
    let ns = spawn_name_server(&sim, NodeId(0));
    ServiceBuilder::new("ctr")
        .object(|| Box::new(Counter::starting_at(10)))
        .spawn(&sim, NodeId(1), ns);
    sim.spawn("client", NodeId(2), move |ctx| {
        let mut rt = ClientRuntime::new(ns);
        let mut s = Session::new(&mut rt, ctx);
        let ctr = CounterClient::bind(&mut s, "ctr").unwrap();
        assert_eq!(ctr.get(&mut s).unwrap(), 10);
        assert_eq!(ctr.inc(&mut s).unwrap(), 11);
        assert_eq!(ctr.add(&mut s, 9).unwrap(), 20);
    });
    sim.run();
}

#[test]
fn queue_client_full_surface() {
    let mut sim = Simulation::new(NetworkConfig::lan(), 4);
    let ns = spawn_name_server(&sim, NodeId(0));
    ServiceBuilder::new("q")
        .object(|| Box::new(PrintQueue::new()))
        .spawn(&sim, NodeId(1), ns);
    sim.spawn("client", NodeId(2), move |ctx| {
        let mut rt = ClientRuntime::new(ns);
        let mut s = Session::new(&mut rt, ctx);
        let q = QueueClient::bind(&mut s, "q").unwrap();
        assert_eq!(q.take(&mut s).unwrap(), None);
        let id1 = q.submit(&mut s, "first").unwrap();
        let id2 = q.submit(&mut s, "second").unwrap();
        assert!(id2 > id1);
        assert_eq!(q.len(&mut s).unwrap(), 2);
        let job = q.take(&mut s).unwrap().unwrap();
        assert_eq!((job.id, job.doc.as_str()), (id1, "first"));
    });
    sim.run();
}

#[test]
fn directory_client_full_surface() {
    let mut sim = Simulation::new(NetworkConfig::lan(), 5);
    let ns = spawn_name_server(&sim, NodeId(0));
    ServiceBuilder::new("dir")
        .object(|| Box::new(Directory::new()))
        .spawn(&sim, NodeId(1), ns);
    sim.spawn("client", NodeId(2), move |ctx| {
        let mut rt = ClientRuntime::new(ns);
        let mut s = Session::new(&mut rt, ctx);
        let dir = DirectoryClient::bind(&mut s, "dir").unwrap();
        assert_eq!(dir.lookup(&mut s, "/a").unwrap(), None);
        assert_eq!(dir.insert(&mut s, "/a", "one").unwrap(), 1);
        assert_eq!(dir.insert(&mut s, "/a", "two").unwrap(), 2);
        assert_eq!(dir.insert(&mut s, "/b/c", "x").unwrap(), 1);
        let e = dir.lookup(&mut s, "/a").unwrap().unwrap();
        assert_eq!((e.value.as_str(), e.revision), ("two", 2));
        assert_eq!(dir.list(&mut s, "/b").unwrap(), vec!["/b/c"]);
        assert!(dir.remove(&mut s, "/a").unwrap());
        assert!(!dir.remove(&mut s, "/a").unwrap());
    });
    sim.run();
}

/// Unbinding must actually stop invalidation traffic: after `unbind`,
/// a writer elsewhere no longer costs the server a push to us.
#[test]
fn unbind_cancels_invalidation_subscription() {
    let mut sim = Simulation::new(NetworkConfig::lan(), 6);
    let ns = spawn_name_server(&sim, NodeId(0));
    ServiceBuilder::new("kv")
        .spec(ProxySpec::Caching(CachingParams {
            coherence: Coherence::Invalidate,
            capacity: 64,
        }))
        .object(|| Box::new(KvStore::new()))
        .spawn(&sim, NodeId(1), ns);
    sim.spawn("subscriber", NodeId(2), move |ctx| {
        let mut rt = ClientRuntime::new(ns);
        let mut s = Session::new(&mut rt, ctx);
        let kv = KvClient::bind(&mut s, "kv").unwrap();
        kv.put(&mut s, "a", "1").unwrap();
        kv.get(&mut s, "a").unwrap(); // now subscribed & cached
        s.unbind(kv.handle());
        // Stay alive while the writer writes; if we were still
        // subscribed, an invalidation would arrive in our mailbox.
        s.ctx().sleep(Duration::from_millis(40)).unwrap();
        let stray = s.ctx().try_recv().unwrap();
        assert!(stray.is_none(), "received traffic after unbind: {stray:?}");
    });
    sim.spawn("writer", NodeId(3), move |ctx| {
        ctx.sleep(Duration::from_millis(15)).unwrap();
        let mut rt = ClientRuntime::new(ns);
        let mut s = Session::new(&mut rt, ctx);
        let kv = KvClient::bind(&mut s, "kv").unwrap();
        kv.put(&mut s, "a", "2").unwrap();
    });
    sim.run();
}
