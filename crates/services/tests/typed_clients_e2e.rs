//! End-to-end tests of every typed client wrapper over the network —
//! the interfaces a stub compiler would emit, exercised exactly as an
//! application would.

use std::time::Duration;

use naming::spawn_name_server;
use proxy_core::{spawn_service, CachingParams, ClientRuntime, Coherence, ProxySpec};
use services::counter::{Counter, CounterClient};
use services::directory::{Directory, DirectoryClient};
use services::file::{BlockFile, FileClient};
use services::kv::{KvClient, KvStore};
use services::queue::{PrintQueue, QueueClient};
use simnet::{NetworkConfig, NodeId, Simulation};

#[test]
fn kv_client_full_surface() {
    let mut sim = Simulation::new(NetworkConfig::lan(), 1);
    let ns = spawn_name_server(&sim, NodeId(0));
    spawn_service(&sim, NodeId(1), ns, "kv", ProxySpec::Stub, || {
        Box::new(KvStore::new())
    });
    sim.spawn("client", NodeId(2), move |ctx| {
        let mut rt = ClientRuntime::new(ns);
        let kv = KvClient::bind(&mut rt, ctx, "kv").unwrap();
        assert!(kv.is_empty(&mut rt, ctx).unwrap());
        assert_eq!(kv.put(&mut rt, ctx, "a", "1").unwrap(), None);
        assert_eq!(kv.put(&mut rt, ctx, "a", "2").unwrap(), Some("1".into()));
        assert_eq!(kv.get(&mut rt, ctx, "a").unwrap(), Some("2".into()));
        assert_eq!(kv.get(&mut rt, ctx, "zzz").unwrap(), None);
        assert_eq!(kv.len(&mut rt, ctx).unwrap(), 1);
        assert!(kv.del(&mut rt, ctx, "a").unwrap());
        assert!(!kv.del(&mut rt, ctx, "a").unwrap());
        assert!(kv.is_empty(&mut rt, ctx).unwrap());
    });
    sim.run();
}

#[test]
fn file_client_full_surface() {
    let mut sim = Simulation::new(NetworkConfig::lan(), 2);
    let ns = spawn_name_server(&sim, NodeId(0));
    spawn_service(
        &sim,
        NodeId(1),
        ns,
        "fs",
        ProxySpec::Caching(CachingParams {
            coherence: Coherence::Invalidate,
            capacity: 64,
        }),
        || Box::new(BlockFile::new()),
    );
    sim.spawn("client", NodeId(2), move |ctx| {
        let mut rt = ClientRuntime::new(ns);
        let fs = FileClient::bind(&mut rt, ctx, "fs").unwrap();
        assert_eq!(fs.read(&mut rt, ctx, "doc", 0).unwrap(), None);
        fs.write(&mut rt, ctx, "doc", 0, vec![1, 2, 3]).unwrap();
        assert_eq!(
            fs.read(&mut rt, ctx, "doc", 0).unwrap().as_deref(),
            Some(&[1u8, 2, 3][..])
        );
        // Cached second read.
        fs.read(&mut rt, ctx, "doc", 0).unwrap();
        assert_eq!(rt.stats(fs.handle()).local_hits, 1);
        assert_eq!(fs.blocks(&mut rt, ctx).unwrap(), 1);
        // Oversized block surfaces the remote validation error.
        let err = fs
            .write(
                &mut rt,
                ctx,
                "doc",
                1,
                vec![0u8; services::file::BLOCK_SIZE + 1],
            )
            .unwrap_err();
        assert!(matches!(err, rpc::RpcError::Remote(ref e) if e.code == rpc::ErrorCode::BadArgs));
    });
    sim.run();
}

#[test]
fn counter_client_full_surface() {
    let mut sim = Simulation::new(NetworkConfig::lan(), 3);
    let ns = spawn_name_server(&sim, NodeId(0));
    spawn_service(&sim, NodeId(1), ns, "ctr", ProxySpec::Stub, || {
        Box::new(Counter::starting_at(10))
    });
    sim.spawn("client", NodeId(2), move |ctx| {
        let mut rt = ClientRuntime::new(ns);
        let ctr = CounterClient::bind(&mut rt, ctx, "ctr").unwrap();
        assert_eq!(ctr.get(&mut rt, ctx).unwrap(), 10);
        assert_eq!(ctr.inc(&mut rt, ctx).unwrap(), 11);
        assert_eq!(ctr.add(&mut rt, ctx, 9).unwrap(), 20);
    });
    sim.run();
}

#[test]
fn queue_client_full_surface() {
    let mut sim = Simulation::new(NetworkConfig::lan(), 4);
    let ns = spawn_name_server(&sim, NodeId(0));
    spawn_service(&sim, NodeId(1), ns, "q", ProxySpec::Stub, || {
        Box::new(PrintQueue::new())
    });
    sim.spawn("client", NodeId(2), move |ctx| {
        let mut rt = ClientRuntime::new(ns);
        let q = QueueClient::bind(&mut rt, ctx, "q").unwrap();
        assert_eq!(q.take(&mut rt, ctx).unwrap(), None);
        let id1 = q.submit(&mut rt, ctx, "first").unwrap();
        let id2 = q.submit(&mut rt, ctx, "second").unwrap();
        assert!(id2 > id1);
        assert_eq!(q.len(&mut rt, ctx).unwrap(), 2);
        let job = q.take(&mut rt, ctx).unwrap().unwrap();
        assert_eq!((job.id, job.doc.as_str()), (id1, "first"));
    });
    sim.run();
}

#[test]
fn directory_client_full_surface() {
    let mut sim = Simulation::new(NetworkConfig::lan(), 5);
    let ns = spawn_name_server(&sim, NodeId(0));
    spawn_service(&sim, NodeId(1), ns, "dir", ProxySpec::Stub, || {
        Box::new(Directory::new())
    });
    sim.spawn("client", NodeId(2), move |ctx| {
        let mut rt = ClientRuntime::new(ns);
        let dir = DirectoryClient::bind(&mut rt, ctx, "dir").unwrap();
        assert_eq!(dir.lookup(&mut rt, ctx, "/a").unwrap(), None);
        assert_eq!(dir.insert(&mut rt, ctx, "/a", "one").unwrap(), 1);
        assert_eq!(dir.insert(&mut rt, ctx, "/a", "two").unwrap(), 2);
        assert_eq!(dir.insert(&mut rt, ctx, "/b/c", "x").unwrap(), 1);
        let e = dir.lookup(&mut rt, ctx, "/a").unwrap().unwrap();
        assert_eq!((e.value.as_str(), e.revision), ("two", 2));
        assert_eq!(dir.list(&mut rt, ctx, "/b").unwrap(), vec!["/b/c"]);
        assert!(dir.remove(&mut rt, ctx, "/a").unwrap());
        assert!(!dir.remove(&mut rt, ctx, "/a").unwrap());
    });
    sim.run();
}

/// Unbinding must actually stop invalidation traffic: after `unbind`,
/// a writer elsewhere no longer costs the server a push to us.
#[test]
fn unbind_cancels_invalidation_subscription() {
    let mut sim = Simulation::new(NetworkConfig::lan(), 6);
    let ns = spawn_name_server(&sim, NodeId(0));
    spawn_service(
        &sim,
        NodeId(1),
        ns,
        "kv",
        ProxySpec::Caching(CachingParams {
            coherence: Coherence::Invalidate,
            capacity: 64,
        }),
        || Box::new(KvStore::new()),
    );
    sim.spawn("subscriber", NodeId(2), move |ctx| {
        let mut rt = ClientRuntime::new(ns);
        let kv = KvClient::bind(&mut rt, ctx, "kv").unwrap();
        kv.put(&mut rt, ctx, "a", "1").unwrap();
        kv.get(&mut rt, ctx, "a").unwrap(); // now subscribed & cached
        rt.unbind(ctx, kv.handle());
        // Stay alive while the writer writes; if we were still
        // subscribed, an invalidation would arrive in our mailbox.
        ctx.sleep(Duration::from_millis(40)).unwrap();
        let stray = ctx.try_recv().unwrap();
        assert!(stray.is_none(), "received traffic after unbind: {stray:?}");
    });
    sim.spawn("writer", NodeId(3), move |ctx| {
        ctx.sleep(Duration::from_millis(15)).unwrap();
        let mut rt = ClientRuntime::new(ns);
        let kv = KvClient::bind(&mut rt, ctx, "kv").unwrap();
        kv.put(&mut rt, ctx, "a", "2").unwrap();
    });
    sim.run();
}
