//! End-to-end tests of the out-of-band bulk data plane: pass-by-reference
//! proxies over the blob store, the two-level edge-cache hierarchy, and
//! chunked reassembly under network chaos.

#![recursion_limit = "256"]

use std::sync::Arc;
use std::time::Duration;

use bytes::Bytes;
use naming::spawn_name_server;
use parking_lot::Mutex;
use proptest::prelude::*;
use proxy_core::bulk::BlobClient;
use proxy_core::{
    BulkParams, CachingParams, ClientRuntime, Coherence, ProxySpec, ServiceBuilder, Session,
};
use services::blob::{spawn_edge_cache, BlobStore};
use services::kv::KvStore;
use simnet::{NetworkConfig, NodeId, Simulation};
use wire::Value;

fn payload(len: usize, seed: u8) -> Vec<u8> {
    (0..len)
        .map(|i| (i as u8).wrapping_mul(31).wrapping_add(seed))
        .collect()
}

/// A bulk-enabled stub proxy spills a large put argument out-of-band and
/// resolves the reference on get — the client sees plain blobs on both
/// ends while the KV service only ever holds a fixed-size handle.
#[test]
fn stub_proxy_spills_and_resolves_through_blob_store() {
    let mut sim = Simulation::new(NetworkConfig::lan(), 7);
    let ns = spawn_name_server(&sim, NodeId(0));
    ServiceBuilder::new("blob")
        .object(|| Box::new(BlobStore::new()))
        .spawn(&sim, NodeId(1), ns);
    ServiceBuilder::new("kv")
        .spec(ProxySpec::Bulk {
            inner: Box::new(ProxySpec::Stub),
            params: BulkParams::default(),
        })
        .object(|| Box::new(KvStore::new()))
        .spawn(&sim, NodeId(2), ns);
    sim.spawn("client", NodeId(3), move |ctx| {
        let mut rt = ClientRuntime::new(ns);
        let mut s = Session::new(&mut rt, ctx);
        let kv = s.bind("kv").unwrap();
        let data = payload(256 * 1024, 3);
        s.invoke(
            kv,
            "put",
            Value::record([
                ("key", Value::str("asset")),
                ("value", Value::blob(data.clone())),
            ]),
        )
        .unwrap();
        let got = s
            .invoke(kv, "get", Value::record([("key", Value::str("asset"))]))
            .unwrap();
        assert_eq!(got.as_blob().map(|b| b.as_ref()), Some(&data[..]));
        let stats = s.stats(kv);
        assert_eq!(stats.bulk_spills, 1, "large put must spill");
        assert_eq!(stats.bulk_resolves, 1, "get must resolve the ref");
        // Small values stay inline: no extra spill.
        s.invoke(
            kv,
            "put",
            Value::record([("key", Value::str("tiny")), ("value", Value::blob(vec![1]))]),
        )
        .unwrap();
        assert_eq!(s.stats(kv).bulk_spills, 1);
    });
    sim.run();
}

/// A bulk-enabled caching proxy resolves a reference once; the repeat
/// read is a pure local hit serving the already-resolved bytes.
#[test]
fn caching_proxy_caches_resolved_bulk_values() {
    let mut sim = Simulation::new(NetworkConfig::lan(), 8);
    let ns = spawn_name_server(&sim, NodeId(0));
    ServiceBuilder::new("blob")
        .object(|| Box::new(BlobStore::new()))
        .spawn(&sim, NodeId(1), ns);
    ServiceBuilder::new("kv")
        .spec(ProxySpec::Bulk {
            inner: Box::new(ProxySpec::Caching(CachingParams {
                coherence: Coherence::Invalidate,
                capacity: 64,
            })),
            params: BulkParams::default(),
        })
        .object(|| Box::new(KvStore::new()))
        .spawn(&sim, NodeId(2), ns);
    sim.spawn("client", NodeId(3), move |ctx| {
        let mut rt = ClientRuntime::new(ns);
        let mut s = Session::new(&mut rt, ctx);
        let kv = s.bind("kv").unwrap();
        let data = payload(64 * 1024, 9);
        s.invoke(
            kv,
            "put",
            Value::record([
                ("key", Value::str("a")),
                ("value", Value::blob(data.clone())),
            ]),
        )
        .unwrap();
        for _ in 0..3 {
            let got = s
                .invoke(kv, "get", Value::record([("key", Value::str("a"))]))
                .unwrap();
            assert_eq!(got.as_blob().map(|b| b.as_ref()), Some(&data[..]));
        }
        let stats = s.stats(kv);
        assert_eq!(stats.bulk_resolves, 1, "only the miss fetches out-of-band");
        assert_eq!(stats.local_hits, 2, "repeat reads are local");
    });
    sim.run();
}

/// Satellite 4: two-level hierarchy invalidation. A write at the origin
/// must never let the edge serve the stale blob once the invalidation is
/// delivered — the reader observes the writer's bytes through the edge.
/// The chaos leg (duplicates + reordering, which delay but never drop
/// delivery) asserts the same read-your-writes property.
fn hierarchy_invalidation(net: NetworkConfig, seed: u64) {
    let mut sim = Simulation::new(net, seed);
    let ns = spawn_name_server(&sim, NodeId(0));
    ServiceBuilder::new("blob")
        .object(|| Box::new(BlobStore::new()))
        .spawn(&sim, NodeId(1), ns);
    spawn_edge_cache(&sim, NodeId(2), ns, "edge1", "blob", 64);
    let refs: Arc<Mutex<Vec<wire::BlobRef>>> = Arc::new(Mutex::new(Vec::new()));
    // Set once the reader has warmed the edge with version 1; the writer
    // holds version 2 until then, so the phases never race.
    let warmed = Arc::new(Mutex::new(false));
    let writer_refs = Arc::clone(&refs);
    let writer_warmed = Arc::clone(&warmed);
    sim.spawn("writer", NodeId(3), move |ctx| {
        let mut client = BlobClient::new("blob", ns, 4096, 4);
        let mut strays: Vec<rpc::Oneway> = Vec::new();
        ctx.sleep(Duration::from_millis(50)).unwrap();
        let r1 = client
            .put(ctx, "asset", &Bytes::from(payload(40_000, 1)), &mut strays)
            .unwrap();
        writer_refs.lock().push(r1);
        let mut patience = 3000;
        while !*writer_warmed.lock() {
            patience -= 1;
            assert!(patience > 0, "reader never warmed the edge");
            ctx.sleep(Duration::from_millis(10)).unwrap();
        }
        let r2 = client
            .put(ctx, "asset", &Bytes::from(payload(52_000, 2)), &mut strays)
            .unwrap();
        writer_refs.lock().push(r2);
    });
    let reader_refs = Arc::clone(&refs);
    sim.spawn("reader", NodeId(4), move |ctx| {
        let wait_for_ref = |ctx: &mut simnet::Ctx, n: usize| {
            let mut patience = 3000;
            loop {
                if let Some(r) = reader_refs.lock().get(n) {
                    break r.clone();
                }
                patience -= 1;
                assert!(patience > 0, "writer never published ref {n}");
                ctx.sleep(Duration::from_millis(10)).unwrap();
            }
        };
        let mut edge = BlobClient::new("edge1", ns, 4096, 4);
        let mut strays: Vec<rpc::Oneway> = Vec::new();
        // Warm the edge with the first version.
        let r1 = wait_for_ref(ctx, 0);
        let v1 = edge.get(ctx, &r1, &mut strays).unwrap();
        assert_eq!(v1.as_ref(), &payload(40_000, 1)[..]);
        // Cached repeat read, still version 1 (no write happened yet).
        let again = edge.get(ctx, &r1, &mut strays).unwrap();
        assert_eq!(again, v1);
        *warmed.lock() = true;
        // After the origin write + invalidation delivery, the edge must
        // serve version 2 — CRC verification in `get` would reject any
        // stale chunk it tried to serve.
        let r2 = wait_for_ref(ctx, 1);
        ctx.sleep(Duration::from_millis(100)).unwrap();
        let v2 = edge.get(ctx, &r2, &mut strays).unwrap();
        assert_eq!(v2.as_ref(), &payload(52_000, 2)[..]);
    });
    sim.run();
}

#[test]
fn edge_cache_honours_origin_invalidation() {
    hierarchy_invalidation(NetworkConfig::wan(), 21);
}

#[test]
fn edge_cache_honours_origin_invalidation_under_chaos() {
    hierarchy_invalidation(
        NetworkConfig::wan()
            .with_duplicate(0.10)
            .with_reorder_window(Duration::from_millis(2)),
        22,
    );
}

/// Satellite 3 (reassembly half; `Value::Ref` codec round-trips live in
/// the wire crate's proptests): chunked put/get reassembles the exact
/// payload under loss, reordering, and duplicate delivery. Duplicated
/// chunk retransmits must be absorbed by the server's dedup window, and
/// CRC verification must accept the reassembled bytes.
fn reassembly_case(len: usize, seed: u64, loss: f64, dup: f64) -> bool {
    let net = NetworkConfig::lan()
        .with_loss(loss)
        .with_duplicate(dup)
        .with_reorder_window(Duration::from_micros(800));
    let mut sim = Simulation::new(net, seed);
    let ns = spawn_name_server(&sim, NodeId(0));
    ServiceBuilder::new("blob")
        .object(|| Box::new(BlobStore::new()))
        .spawn(&sim, NodeId(1), ns);
    let ok = Arc::new(Mutex::new(false));
    let done = Arc::clone(&ok);
    sim.spawn("client", NodeId(2), move |ctx| {
        let mut client = BlobClient::new("blob", ns, 16 * 1024, 6);
        let mut strays: Vec<rpc::Oneway> = Vec::new();
        ctx.sleep(Duration::from_millis(20)).unwrap();
        let data = Bytes::from(payload(len, seed as u8));
        let r = client.put(ctx, "k", &data, &mut strays).unwrap();
        assert_eq!(r.len, len as u64);
        let back = client.get(ctx, &r, &mut strays).unwrap();
        assert_eq!(back, data);
        *done.lock() = true;
    });
    sim.run();
    let completed = *ok.lock();
    completed
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]
    #[test]
    fn chunked_reassembly_survives_chaos(
        len in 0usize..150_000,
        seed in 0u64..1000,
        loss in 0.0f64..0.08,
        dup in 0.0f64..0.08,
    ) {
        prop_assert!(
            reassembly_case(len, seed, loss, dup),
            "client did not complete"
        );
    }
}
