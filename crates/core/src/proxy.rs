//! The client-side proxy abstraction.
//!
//! A [`Proxy`] is the local representative of a remote service — the
//! paper's central artifact. Clients invoke operations *only* through a
//! proxy; what the proxy does (forward, cache, migrate, pick a replica)
//! is the service's business, selected by the [`crate::ProxySpec`] it
//! published.

use rpc::{Oneway, RpcError};
use simnet::{Ctx, Message};
use wire::Value;

/// Well-known operation and notification names of the proxy protocol.
///
/// Operations beginning with `_` are *system* operations handled by the
/// hosting [`crate::ServiceServer`] itself; all other operations are
/// dispatched to the hosted [`crate::ServiceObject`].
pub mod protocol {
    /// Fetch the service interface description.
    pub const OP_IFACE: &str = "_iface";
    /// Subscribe the caller for invalidation notifications.
    pub const OP_SUBSCRIBE: &str = "_subscribe";
    /// Remove an invalidation subscription.
    pub const OP_UNSUBSCRIBE: &str = "_unsubscribe";
    /// Check the object out into the caller's context (migratory).
    pub const OP_CHECKOUT: &str = "_checkout";
    /// Return a checked-out object's state.
    pub const OP_CHECKIN: &str = "_checkin";
    /// Capture the object state without transferring ownership.
    pub const OP_SNAPSHOT: &str = "_snapshot";
    /// Liveness / latency probe.
    pub const OP_PING: &str = "_ping";

    /// One-way: a cached tag became stale (`args: {svc, tag}`).
    pub const MSG_INVALIDATE: &str = "inv";
    /// One-way: the service wants a checked-out object back
    /// (`args: {svc}`).
    pub const MSG_RECALL: &str = "recall";
}

/// Counters every proxy maintains; the currency of the experiment
/// harness.
///
/// Canonical definition lives in the `obs` crate; each proxy keeps its
/// own copy here, and the simulation-wide [`obs::MetricsRegistry`]
/// snapshots the same counters per `(owner, service)` pair.
pub use obs::ProxyStats;

/// Collects one-way notifications that arrive while a proxy is blocked
/// in a call but belong to *other* proxies in the same context. The
/// [`crate::ClientRuntime`] routes them after the call returns.
pub trait OnewaySink {
    /// Queues a notification for later routing.
    fn push(&mut self, oneway: Oneway);

    /// Offers a *request* datagram that strayed into the mailbox while
    /// the proxy was blocked (e.g. a client call landing at a process
    /// that is itself a server — an edge cache mid-miss). Sinks that can
    /// requeue the message for later service return `true`; the default
    /// declines, and the caller counts the datagram as dropped — the
    /// sender's retransmission recovers it.
    fn push_request(&mut self, _msg: &Message) -> bool {
        false
    }
}

impl OnewaySink for Vec<Oneway> {
    fn push(&mut self, oneway: Oneway) {
        Vec::push(self, oneway);
    }
}

/// A sink that discards notifications (for standalone proxies in
/// single-service processes that know no other traffic can arrive).
#[derive(Debug, Default, Clone, Copy)]
pub struct DiscardStrays;

impl OnewaySink for DiscardStrays {
    fn push(&mut self, _oneway: Oneway) {}
}

/// A local representative of a remote service.
pub trait Proxy: Send {
    /// The service name this proxy represents.
    fn service(&self) -> &str;

    /// Invokes an operation through the proxy. One-way notifications
    /// that arrive while waiting and are addressed to other services are
    /// pushed into `strays`.
    ///
    /// # Errors
    ///
    /// Any [`RpcError`]: transport failure, remote failure, or shutdown.
    fn invoke(
        &mut self,
        ctx: &mut Ctx,
        op: &str,
        args: Value,
        strays: &mut dyn OnewaySink,
    ) -> Result<Value, RpcError>;

    /// Delivers a one-way notification addressed to this proxy's service
    /// (invalidation, recall, …). Must not block.
    fn on_oneway(&mut self, _ctx: &mut Ctx, _oneway: &Oneway) {}

    /// Gives the proxy a chance to do deferred work (e.g. honour a
    /// pending recall). Called by the runtime between invocations.
    fn poll(&mut self, _ctx: &mut Ctx) {}

    /// Cleanly unbinds: unsubscribe, check state back in. Called by
    /// [`crate::ClientRuntime::unbind`] and before client exit.
    fn detach(&mut self, _ctx: &mut Ctx) {}

    /// Current counters.
    fn stats(&self) -> ProxyStats;
}

impl std::fmt::Debug for dyn Proxy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Proxy({})", self.service())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simnet::{Endpoint, NodeId, PortId};

    #[test]
    fn vec_sink_collects() {
        let mut sink: Vec<Oneway> = Vec::new();
        sink.push(Oneway {
            from: Endpoint::new(NodeId(0), PortId(1)),
            op: "inv".into(),
            args: Value::Null,
            span: 0,
        });
        OnewaySink::push(
            &mut sink,
            Oneway {
                from: Endpoint::new(NodeId(0), PortId(1)),
                op: "recall".into(),
                args: Value::Null,
                span: 0,
            },
        );
        assert_eq!(sink.len(), 2);
    }

    #[test]
    fn discard_sink_discards() {
        let mut sink = DiscardStrays;
        sink.push(Oneway {
            from: Endpoint::new(NodeId(0), PortId(1)),
            op: "inv".into(),
            args: Value::Null,
            span: 0,
        });
        // Nothing to observe: it simply must not panic or accumulate.
    }
}
