//! The session engine: one core, two surfaces.
//!
//! [`SessionCore`] owns everything a client context needs — the
//! [`Binder`], the proxy table, the one-way router — and exposes it
//! through two surfaces:
//!
//! * **Blocking** ([`SessionCore::bind`], [`SessionCore::invoke`], …):
//!   the classic call-and-wait style used by thread-backed processes.
//!   [`ClientRuntime`](crate::ClientRuntime) and
//!   [`Session`](crate::Session) are thin shims over these methods —
//!   the paper's proxy interface, unchanged.
//! * **Non-blocking** ([`SessionCore::bind_async`],
//!   [`SessionCore::invoke_async`] and their `poll_*` drivers): returns
//!   [`BindFuture`] / [`CallFuture`] tickets a poll-driven process
//!   ([`simnet::Process`]) redeems from its `poll` method via
//!   [`ProcCx`]. Nothing ever parks a thread: a pending bind or call
//!   registers its wakes (reply delivery, retransmission deadline,
//!   retry backoff) and the process returns `Poll::Pending`.
//!
//! The split is deliberate and narrow (see `DESIGN.md`): the async
//! surface speaks the same wire protocol through the same
//! [`rpc::Channel`] transport, so a server cannot tell a poll-driven
//! client from a blocking one. It currently supports **stub-grade**
//! bindings only — [`ProxySpec::Stub`] services, which is what
//! million-client workloads (experiment E16) bind. Services that chose
//! a smart proxy (caching, migratory, adaptive, replicated, custom)
//! still require the blocking surface, where the full proxy zoo lives;
//! asking for one through `bind_async` reports a descriptive error
//! rather than silently downgrading the service's chosen strategy.

use std::collections::HashMap;
use std::fmt;
use std::time::Duration;

use naming::NameRecord;
use rpc::{Channel, ChannelConfig, Oneway, RpcError};
use simnet::{Ctx, Endpoint, Poll, ProcCx, SimTime};
use wire::{Value, WireError};

use crate::object::FactoryRegistry;
use crate::proxy::{Proxy, ProxyStats};
use crate::runtime::Binder;
use crate::spec::ProxySpec;

/// Handle to a proxy owned by a session core (blocking surface).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ProxyHandle(pub(crate) usize);

/// Ticket for an in-progress non-blocking bind; redeem with
/// [`SessionCore::poll_bind`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BindFuture(usize);

/// Handle to a service bound through the non-blocking surface.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct AsyncHandle(usize);

/// Ticket for one in-flight non-blocking call; redeem with
/// [`SessionCore::poll_call`]. The `CallHandle`-style future of the
/// redesigned client API.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CallFuture {
    svc: usize,
    call: rpc::CallHandle,
}

impl CallFuture {
    /// The underlying RPC call id (diagnostics only).
    pub fn call_id(&self) -> u64 {
        self.call.call_id()
    }
}

/// How far a non-blocking bind has progressed.
enum BindState {
    /// Lookup RPC in flight on a dedicated channel to the name server.
    Resolving {
        service: String,
        chan: Box<Channel>,
        call: rpc::CallHandle,
        deadline: SimTime,
    },
    /// Name not registered yet; retry the lookup at `retry_at`.
    Backoff {
        service: String,
        retry_at: SimTime,
        deadline: SimTime,
    },
    /// Settled, result not yet claimed by `poll_bind`.
    Done(Result<usize, RpcError>),
    /// Result claimed.
    Claimed,
}

/// One service bound through the async surface: a pipelined channel to
/// its endpoint.
struct AsyncService {
    chan: Channel,
}

/// The client-context engine behind [`Session`](crate::Session): the
/// binder, the proxy table and the non-blocking call machinery.
///
/// See the [module docs](self) for the blocking/non-blocking split.
pub struct SessionCore {
    binder: Binder,
    proxies: Vec<Box<dyn Proxy>>,
    by_service: HashMap<String, usize>,
    /// Name-server replica endpoints for async lookups; empty means
    /// every lookup goes to the binder's single name server.
    ns_replicas: Vec<Endpoint>,
    // -- non-blocking surface state --
    cfg: ChannelConfig,
    binds: Vec<BindState>,
    services: Vec<AsyncService>,
    async_by_service: HashMap<String, usize>,
}

impl fmt::Debug for SessionCore {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SessionCore")
            .field("proxies", &self.proxies.len())
            .field("async_services", &self.services.len())
            .finish_non_exhaustive()
    }
}

impl SessionCore {
    /// Creates a core talking to the name server at `ns`.
    pub fn new(ns: Endpoint) -> SessionCore {
        SessionCore {
            binder: Binder::new(ns),
            proxies: Vec::new(),
            by_service: HashMap::new(),
            ns_replicas: Vec::new(),
            cfg: ChannelConfig::default(),
            binds: Vec::new(),
            services: Vec::new(),
            async_by_service: HashMap::new(),
        }
    }

    /// Spreads async name lookups across name-server replicas (see
    /// `naming::spawn_name_cluster`): each service name hashes to one
    /// replica, so a large fleet's NotFound-backoff polls fan out over
    /// the cluster instead of serializing on a single server process.
    /// The hash is by service name — repeated retries for one bind stick
    /// to one replica, keeping per-bind behavior identical to the
    /// single-server path. An empty list restores that path.
    pub fn with_ns_replicas(mut self, replicas: Vec<Endpoint>) -> SessionCore {
        self.ns_replicas = replicas;
        self
    }

    /// Sets the channel configuration (pipeline depth, batching,
    /// retries) used by async-bound services.
    pub fn with_channel_config(mut self, cfg: ChannelConfig) -> SessionCore {
        self.cfg = cfg;
        self
    }

    /// Supplies object factories (for migratory services).
    pub fn with_factories(mut self, factories: FactoryRegistry) -> SessionCore {
        self.binder = self.binder.with_factories(factories);
        self
    }

    /// Access to the underlying binder (to register custom proxy kinds).
    pub fn binder_mut(&mut self) -> &mut Binder {
        &mut self.binder
    }

    // -----------------------------------------------------------------
    // Blocking surface (the Session shim forwards here)
    // -----------------------------------------------------------------

    /// Binds to `service`, waiting up to 100ms of virtual time for it to
    /// register.
    ///
    /// # Errors
    ///
    /// See [`Binder::bind_wait`].
    pub fn bind(&mut self, ctx: &mut Ctx, service: &str) -> Result<ProxyHandle, RpcError> {
        let proxy = self
            .binder
            .bind_wait(ctx, service, Duration::from_millis(100))?;
        let idx = self.proxies.len();
        self.by_service.insert(proxy.service().to_owned(), idx);
        self.proxies.push(proxy);
        Ok(ProxyHandle(idx))
    }

    /// Invokes an operation through a bound proxy.
    ///
    /// Opens a causal invoke span for the duration of the call (child
    /// RPCs, retransmissions and server dispatches attach to it), records
    /// the invocation latency into the per-`(service, op)` histogram, and
    /// publishes the proxy's counters to the [`obs::MetricsRegistry`].
    ///
    /// # Errors
    ///
    /// Any [`RpcError`] from the proxy.
    ///
    /// # Panics
    ///
    /// Panics if the handle did not come from this core.
    pub fn invoke(
        &mut self,
        ctx: &mut Ctx,
        handle: ProxyHandle,
        op: &str,
        args: Value,
    ) -> Result<Value, RpcError> {
        self.pump(ctx);
        let service = self.proxies[handle.0].service().to_owned();
        let span = ctx.obs().open_span(
            obs::SpanKind::Invoke,
            ctx.current_span(),
            &service,
            op,
            ctx.now().as_nanos(),
        );
        let previous = ctx.set_current_span(span);
        let mut strays: Vec<Oneway> = Vec::new();
        let result = self.proxies[handle.0].invoke(ctx, op, args, &mut strays);
        ctx.set_current_span(previous);
        ctx.obs()
            .close_span(span, ctx.now().as_nanos(), result.is_ok());
        ctx.obs()
            .set_proxy_stats(ctx.name(), &service, self.proxies[handle.0].stats());
        self.route(ctx, strays);
        result
    }

    /// Hosts an object directly in this context under `service` — the
    /// same-context fast path (experiment E5): invocations through the
    /// returned handle are ordinary procedure calls, no messages at all.
    pub fn host_local(
        &mut self,
        service: impl Into<String>,
        object: Box<dyn crate::ServiceObject>,
    ) -> ProxyHandle {
        let service = service.into();
        let idx = self.proxies.len();
        self.by_service.insert(service.clone(), idx);
        self.proxies
            .push(Box::new(crate::proxies::LocalProxy::new(service, object)));
        ProxyHandle(idx)
    }

    /// Drains the process mailbox and routes notifications; gives every
    /// proxy a chance to do deferred work (honour recalls, etc.). Call
    /// this periodically from client loops that go quiet.
    pub fn pump(&mut self, ctx: &mut Ctx) {
        let mut pending: Vec<Oneway> = Vec::new();
        while let Ok(Some(msg)) = ctx.try_recv() {
            if let Ok(rpc::Packet::Oneway(o)) = rpc::Packet::from_frame(&msg.payload) {
                pending.push(o);
            }
            // Replies outside any call are late duplicates: dropped.
        }
        self.route(ctx, pending);
        for p in &mut self.proxies {
            p.poll(ctx);
        }
    }

    pub(crate) fn route(&mut self, ctx: &mut Ctx, oneways: Vec<Oneway>) {
        for o in oneways {
            let target = o
                .args
                .get("svc")
                .and_then(Value::as_str)
                .and_then(|svc| self.by_service.get(svc).copied());
            if let Some(idx) = target {
                self.proxies[idx].on_oneway(ctx, &o);
            }
        }
    }

    /// Stats for one proxy.
    ///
    /// # Panics
    ///
    /// Panics if the handle did not come from this core.
    pub fn stats(&self, handle: ProxyHandle) -> ProxyStats {
        self.proxies[handle.0].stats()
    }

    /// Cleanly detaches one proxy (unsubscribe, check state back in).
    ///
    /// # Panics
    ///
    /// Panics if the handle did not come from this core.
    pub fn unbind(&mut self, ctx: &mut Ctx, handle: ProxyHandle) {
        self.proxies[handle.0].detach(ctx);
    }

    /// Detaches every proxy (call before client exit).
    pub fn shutdown(&mut self, ctx: &mut Ctx) {
        for p in &mut self.proxies {
            p.detach(ctx);
        }
    }

    // -----------------------------------------------------------------
    // Non-blocking surface (poll-driven processes)
    // -----------------------------------------------------------------

    /// Starts a non-blocking bind to `service`: issues the name lookup
    /// and returns a ticket to poll with [`SessionCore::poll_bind`].
    /// Waits (by retrying, never by blocking) up to 100ms of virtual
    /// time for the name to register, mirroring the blocking bind.
    pub fn bind_async(&mut self, cx: &mut ProcCx, service: &str) -> BindFuture {
        let deadline = cx.now() + Duration::from_millis(100);
        let state = self.start_lookup(cx, service, deadline);
        let idx = self.binds.len();
        self.binds.push(state);
        BindFuture(idx)
    }

    /// The name server answering lookups for `service`: the replica its
    /// name hashes to, or the binder's single server without replicas.
    fn ns_for(&self, service: &str) -> Endpoint {
        if self.ns_replicas.is_empty() {
            return self.binder.ns_endpoint();
        }
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for &b in service.as_bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        self.ns_replicas[(h % self.ns_replicas.len() as u64) as usize]
    }

    fn start_lookup(&mut self, cx: &mut ProcCx, service: &str, deadline: SimTime) -> BindState {
        let mut chan = Box::new(Channel::new("ns", self.ns_for(service), self.cfg.clone()));
        let call = chan.begin_call(
            cx.ctx(),
            "lookup",
            Value::record([("name", Value::str(service))]),
        );
        chan.flush(cx.ctx());
        BindState::Resolving {
            service: service.to_owned(),
            chan,
            call,
            deadline,
        }
    }

    /// Drives a non-blocking bind. Returns `Poll::Pending` with wakes
    /// registered (reply delivery / retransmission deadline / retry
    /// backoff) until the bind settles; the first `Ready` claims the
    /// result, later polls of the same ticket report a timeout.
    ///
    /// # Errors (inside `Poll::Ready`)
    ///
    /// * name-service errors (unknown name after the wait, transport),
    /// * [`RpcError::Wire`] if the binding metadata is malformed,
    /// * [`rpc::ErrorCode::Unavailable`] if the service chose a proxy
    ///   strategy the async surface does not implement (anything but
    ///   [`ProxySpec::Stub`]) — bind through the blocking
    ///   [`Session`](crate::Session) instead.
    ///
    /// # Panics
    ///
    /// Panics if the ticket did not come from this core.
    pub fn poll_bind(
        &mut self,
        cx: &mut ProcCx,
        f: BindFuture,
    ) -> Poll<Result<AsyncHandle, RpcError>> {
        let r = self.poll_bind_inner(cx, f);
        // Same as poll_call: no channel may be left with an unarmed
        // retransmit deadline when the caller parks after this pass.
        self.arm_all_deadlines(cx);
        r
    }

    fn poll_bind_inner(
        &mut self,
        cx: &mut ProcCx,
        f: BindFuture,
    ) -> Poll<Result<AsyncHandle, RpcError>> {
        loop {
            let state = &mut self.binds[f.0];
            match state {
                BindState::Resolving {
                    service,
                    chan,
                    call,
                    deadline,
                } => {
                    let (service, deadline, call) = (service.clone(), *deadline, *call);
                    match chan.poll_wait(cx, call) {
                        Poll::Pending => return Poll::Pending,
                        Poll::Ready(Ok(rep)) => {
                            let settled = self.settle_bind(&service, &rep);
                            if let Ok(idx) = settled {
                                self.async_by_service.insert(service, idx);
                                self.binds[f.0] = BindState::Claimed;
                                return Poll::Ready(Ok(AsyncHandle(idx)));
                            }
                            self.binds[f.0] = BindState::Done(settled);
                        }
                        Poll::Ready(Err(e)) if naming::is_not_found(&e) && cx.now() < deadline => {
                            // Services register asynchronously at start:
                            // back off 1ms and look up again, exactly like
                            // the blocking bind_wait.
                            let retry_at = cx.now() + Duration::from_millis(1);
                            cx.wake_at(retry_at);
                            self.binds[f.0] = BindState::Backoff {
                                service,
                                retry_at,
                                deadline,
                            };
                            return Poll::Pending;
                        }
                        Poll::Ready(Err(e)) => {
                            self.binds[f.0] = BindState::Done(Err(e));
                        }
                    }
                }
                BindState::Backoff {
                    service,
                    retry_at,
                    deadline,
                } => {
                    if cx.now() < *retry_at {
                        let at = *retry_at;
                        cx.wake_at(at);
                        return Poll::Pending;
                    }
                    let (service, deadline) = (service.clone(), *deadline);
                    self.binds[f.0] = self.start_lookup(cx, &service, deadline);
                }
                BindState::Done(_) => {
                    let BindState::Done(result) =
                        std::mem::replace(&mut self.binds[f.0], BindState::Claimed)
                    else {
                        unreachable!()
                    };
                    return Poll::Ready(result.map(AsyncHandle));
                }
                BindState::Claimed => {
                    return Poll::Ready(Err(RpcError::Timeout { attempts: 0 }));
                }
            }
        }
    }

    /// Validates the resolved record and installs the async service.
    fn settle_bind(&mut self, service: &str, rep: &Value) -> Result<usize, RpcError> {
        if let Some(&idx) = self.async_by_service.get(service) {
            return Ok(idx);
        }
        let record = NameRecord::from_value(rep)?;
        let spec_v = record
            .meta
            .get("spec")
            .ok_or(RpcError::Wire(WireError::MissingField("spec")))?;
        let spec = ProxySpec::from_value(spec_v)?;
        if !matches!(spec, ProxySpec::Stub) {
            return Err(RpcError::Remote(rpc::RemoteError::new(
                rpc::ErrorCode::Unavailable,
                format!(
                    "service `{service}` chose proxy spec {spec:?}; the non-blocking \
                     surface implements stub-grade bindings only — use the blocking \
                     Session shim for smart proxies"
                ),
            )));
        }
        let idx = self.services.len();
        self.services.push(AsyncService {
            chan: Channel::new(service, record.endpoint, self.cfg.clone()),
        });
        Ok(idx)
    }

    /// Stages a non-blocking call on an async-bound service and returns
    /// its future. The call is flushed into the channel's pipeline
    /// window immediately; redeem with [`SessionCore::poll_call`].
    ///
    /// # Panics
    ///
    /// Panics if the handle did not come from this core.
    pub fn invoke_async(
        &mut self,
        cx: &mut ProcCx,
        handle: AsyncHandle,
        op: &str,
        args: Value,
    ) -> CallFuture {
        let svc = &mut self.services[handle.0];
        let call = svc.chan.begin_call(cx.ctx(), op, args);
        svc.chan.flush(cx.ctx());
        CallFuture {
            svc: handle.0,
            call,
        }
    }

    /// Drives one non-blocking call to completion: absorbs deliveries,
    /// fires retransmission timers, and either yields the settled result
    /// or registers the wakes that will complete it.
    ///
    /// # Errors (inside `Poll::Ready`)
    ///
    /// Same contract as [`rpc::Channel::wait`]: `Timeout` after the
    /// retry budget, `Remote` for server-reported failures, `Stopped` on
    /// simulation shutdown.
    ///
    /// # Panics
    ///
    /// Panics if the future did not come from this core.
    pub fn poll_call(&mut self, cx: &mut ProcCx, f: CallFuture) -> Poll<Result<Value, RpcError>> {
        let r = self.services[f.svc].chan.poll_wait(cx, f.call);
        // The caller may park after this without polling its other
        // futures this pass; make sure no channel in the core is left
        // with an unarmed (possibly earlier) retransmit deadline.
        self.arm_all_deadlines(cx);
        r
    }

    /// Arms a timer wake at the earliest retransmit deadline across
    /// *every* channel this core owns — bound services and in-flight
    /// binds alike. A poll pass typically drives one future; any other
    /// channel with outstanding calls still needs its timer armed, or a
    /// deadline computed before the caller parked would go stale and
    /// its retransmissions would wait on an unrelated delivery.
    fn arm_all_deadlines(&self, cx: &mut ProcCx) {
        for s in &self.services {
            if let Some(dl) = s.chan.next_deadline() {
                cx.wake_at(dl);
            }
        }
        for b in &self.binds {
            if let BindState::Resolving { chan, .. } = b {
                if let Some(dl) = chan.next_deadline() {
                    cx.wake_at(dl);
                }
            }
        }
    }

    /// Per-service channel statistics for an async binding (calls,
    /// retries, timeouts, batches).
    ///
    /// # Panics
    ///
    /// Panics if the handle did not come from this core.
    pub fn async_stats(&self, handle: AsyncHandle) -> rpc::ChannelStats {
        self.services[handle.0].chan.stats
    }
}
