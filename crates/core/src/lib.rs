//! # proxy-core — the proxy principle
//!
//! This crate is the reproduction's primary contribution: the structure
//! and encapsulation discipline of Shapiro's 1986 ICDCS paper,
//! *"Structure and Encapsulation in Distributed Systems: The Proxy
//! Principle"*.
//!
//! The principle, restated:
//!
//! 1. A client of a distributed service never addresses the service
//!    directly. It first **binds**, receiving a **proxy** — a local
//!    representative installed in its own context.
//! 2. The client↔proxy interface is local, fixed and typed
//!    ([`InterfaceDesc`]); the proxy↔service **protocol** is private to
//!    the service.
//! 3. The *service* chooses the proxy implementation by publishing a
//!    [`ProxySpec`] in its name binding; an RPC stub is merely the
//!    degenerate case. Smart proxies cache ([`proxies::CachingProxy`]),
//!    migrate the object into the client context
//!    ([`proxies::MigratoryProxy`]), or adapt on the fly
//!    ([`proxies::AdaptiveProxy`]) — all invisible to client code.
//!
//! ## The pieces
//!
//! * [`ServiceObject`] + [`ServiceServer`] — the server context hosting
//!   an object behind the proxy protocol.
//! * [`Binder`] / [`ClientRuntime`] — the client context: the binding
//!   protocol plus notification routing.
//! * [`Proxy`] and the [`proxies`] zoo — the client-side
//!   representatives.
//!
//! ## Example: a whole distributed application
//!
//! ```
//! use simnet::{Simulation, NetworkConfig, NodeId};
//! use naming::spawn_name_server;
//! use proxy_core::{ServiceBuilder, ClientRuntime, Session, ProxySpec, CachingParams};
//! use proxy_core::{InterfaceDesc, OpDesc, ServiceObject};
//! use rpc::{RemoteError, ErrorCode};
//! use wire::Value;
//!
//! // A one-register service object.
//! struct Register(u64);
//! impl ServiceObject for Register {
//!     fn interface(&self) -> InterfaceDesc {
//!         InterfaceDesc::new("register", [
//!             OpDesc::read_whole("read"),
//!             OpDesc::write_whole("write"),
//!         ])
//!     }
//!     fn dispatch(&mut self, _ctx: &mut simnet::Ctx, op: &str, args: &Value)
//!         -> Result<Value, RemoteError>
//!     {
//!         match op {
//!             "read" => Ok(Value::U64(self.0)),
//!             "write" => {
//!                 self.0 = args.get_u64("v")
//!                     .map_err(|e| RemoteError::new(ErrorCode::BadArgs, e.to_string()))?;
//!                 Ok(Value::Null)
//!             }
//!             other => Err(RemoteError::new(ErrorCode::NoSuchOp, other.to_owned())),
//!         }
//!     }
//! }
//!
//! let mut sim = Simulation::new(NetworkConfig::lan(), 1);
//! let ns = spawn_name_server(&sim, NodeId(0));
//! // The service decides its clients run caching proxies.
//! ServiceBuilder::new("reg")
//!     .spec(ProxySpec::Caching(CachingParams::default()))
//!     .object(|| Box::new(Register(7)))
//!     .spawn(&sim, NodeId(1), ns);
//! sim.spawn("client", NodeId(2), move |ctx| {
//!     let mut rt = ClientRuntime::new(ns);
//!     let mut session = Session::new(&mut rt, ctx);
//!     let reg = session.bind("reg").unwrap();
//!     assert_eq!(session.invoke(reg, "read", Value::Null).unwrap(), Value::U64(7));
//!     // Second read is served from the proxy's cache: no network.
//!     assert_eq!(session.invoke(reg, "read", Value::Null).unwrap(), Value::U64(7));
//!     assert_eq!(session.stats(reg).local_hits, 1);
//! });
//! sim.run();
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod bulk;
mod interface;
mod object;
pub mod proxies;
mod proxy;
mod runtime;
mod server;
mod session;
mod session_core;
mod spec;
mod stable;

pub use bulk::{BlobClient, BulkEngine, BulkParams};
pub use interface::{InterfaceDesc, OpDesc, OpKind};
pub use object::{FactoryRegistry, ObjectCtor, ServiceObject};
pub use proxy::{protocol, DiscardStrays, OnewaySink, Proxy, ProxyStats};
pub use runtime::{BindContext, Binder, ClientRuntime, ProxyCtor};
pub use server::{ServerStats, ServiceBuilder, ServiceServer};
pub use session::Session;
pub use session_core::{AsyncHandle, BindFuture, CallFuture, ProxyHandle, SessionCore};
pub use spec::{AdaptiveParams, CachingParams, Coherence, ProxySpec, ReadTarget};
pub use stable::{CheckpointPolicy, StableStore};
