//! Proxy specifications: how a service tells clients what proxy to run.
//!
//! The heart of the binding protocol: when a service registers itself,
//! the metadata it publishes includes a [`ProxySpec`] — *the service
//! chooses its own client-side representative*. A client that binds gets
//! whatever the service specified: a dumb stub, a caching proxy with the
//! service's chosen coherence mode, a replica-reading proxy with the
//! service's replica list, and so on. Clients never hard-code a strategy,
//! which is exactly the encapsulation the paper argues for: the service
//! can change its distribution protocol without touching client code.

use std::time::Duration;

use rpc::{endpoint_from_value, endpoint_to_value};
use simnet::Endpoint;
use wire::{Value, WireError};

use crate::bulk::BulkParams;

/// How a caching proxy keeps its cache coherent.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Coherence {
    /// Entries expire after a fixed lease; no server cooperation needed.
    Lease(Duration),
    /// The proxy subscribes and the service pushes invalidations on
    /// writes; entries live until invalidated.
    Invalidate,
    /// Both: invalidations for promptness, leases as a safety net
    /// against lost invalidation messages.
    LeaseAndInvalidate(Duration),
}

impl Coherence {
    /// The lease duration, if any.
    pub fn lease(&self) -> Option<Duration> {
        match self {
            Coherence::Lease(d) | Coherence::LeaseAndInvalidate(d) => Some(*d),
            Coherence::Invalidate => None,
        }
    }

    /// Whether this mode subscribes for invalidations.
    pub fn subscribes(&self) -> bool {
        matches!(
            self,
            Coherence::Invalidate | Coherence::LeaseAndInvalidate(_)
        )
    }
}

/// Parameters of a caching proxy.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CachingParams {
    /// Coherence mode.
    pub coherence: Coherence,
    /// Maximum number of cached entries (LRU beyond this).
    pub capacity: usize,
}

impl Default for CachingParams {
    /// Invalidation-based coherence with a 10ms lease safety net and a
    /// 1024-entry cache.
    fn default() -> CachingParams {
        CachingParams {
            coherence: Coherence::LeaseAndInvalidate(Duration::from_millis(10)),
            capacity: 1024,
        }
    }
}

/// Parameters of an adaptive proxy.
#[derive(Debug, Clone, PartialEq)]
pub struct AdaptiveParams {
    /// Sliding window length (number of invocations) used to estimate
    /// the read fraction.
    pub window: usize,
    /// Enable caching when the windowed read fraction rises above this.
    pub enable_at: f64,
    /// Disable caching when it falls below this (hysteresis).
    pub disable_at: f64,
    /// Caching parameters used while caching is enabled.
    pub caching: CachingParams,
}

impl Default for AdaptiveParams {
    fn default() -> AdaptiveParams {
        AdaptiveParams {
            window: 64,
            enable_at: 0.80,
            disable_at: 0.50,
            caching: CachingParams::default(),
        }
    }
}

/// Which replica a replicated service's proxy should read from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReadTarget {
    /// Probe all replicas at bind time and read from the nearest.
    Nearest,
    /// Always read from the primary (strongest consistency).
    Primary,
}

/// The proxy implementation a service asks its clients to run.
#[derive(Debug, Clone, PartialEq)]
pub enum ProxySpec {
    /// Marshal-and-forward; the degenerate proxy (an RPC stub).
    Stub,
    /// Cache read results at the client.
    Caching(CachingParams),
    /// Count accesses and check the object out into the client's
    /// context once `threshold` invocations have been made.
    Migratory {
        /// Invocations before the proxy attempts checkout.
        threshold: u64,
    },
    /// Read from a replica, write to the primary.
    Replicated {
        /// The write master.
        primary: Endpoint,
        /// All read replicas (usually including the primary).
        replicas: Vec<Endpoint>,
        /// Read placement policy.
        read_target: ReadTarget,
    },
    /// Monitor the access pattern and switch strategy on the fly.
    Adaptive(AdaptiveParams),
    /// Wrap an inner proxy in the out-of-band bulk data plane: payloads
    /// above the spill threshold travel by reference
    /// ([`wire::Value::Ref`]) with the bytes fetched from a blob store,
    /// chunked per the published [`BulkParams`] contract.
    Bulk {
        /// The proxy doing the actual invocations (`Stub` or `Caching`).
        inner: Box<ProxySpec>,
        /// The spill/transfer contract shared by writer and readers.
        params: BulkParams,
    },
    /// An extension spec handled by a client-registered proxy factory.
    Custom {
        /// Factory key.
        kind: String,
        /// Factory-specific parameters.
        params: Value,
    },
}

impl ProxySpec {
    /// Encodes the spec for the name-service metadata record.
    pub fn to_value(&self) -> Value {
        match self {
            ProxySpec::Stub => Value::record([("kind", Value::str("stub"))]),
            ProxySpec::Caching(p) => Value::record([
                ("kind", Value::str("caching")),
                ("params", caching_to_value(p)),
            ]),
            ProxySpec::Migratory { threshold } => Value::record([
                ("kind", Value::str("migratory")),
                ("threshold", Value::U64(*threshold)),
            ]),
            ProxySpec::Replicated {
                primary,
                replicas,
                read_target,
            } => Value::record([
                ("kind", Value::str("replicated")),
                ("primary", endpoint_to_value(*primary)),
                (
                    "replicas",
                    Value::list(replicas.iter().map(|r| endpoint_to_value(*r))),
                ),
                (
                    "read",
                    Value::str(match read_target {
                        ReadTarget::Nearest => "nearest",
                        ReadTarget::Primary => "primary",
                    }),
                ),
            ]),
            ProxySpec::Adaptive(p) => Value::record([
                ("kind", Value::str("adaptive")),
                ("window", Value::U64(p.window as u64)),
                ("enable_at", Value::F64(p.enable_at)),
                ("disable_at", Value::F64(p.disable_at)),
                ("caching", caching_to_value(&p.caching)),
            ]),
            ProxySpec::Bulk { inner, params } => Value::record([
                ("kind", Value::str("bulk")),
                ("inner", inner.to_value()),
                ("bulk", params.to_value()),
            ]),
            ProxySpec::Custom { kind, params } => Value::record([
                ("kind", Value::str("custom")),
                ("custom_kind", Value::str(kind.clone())),
                ("params", params.clone()),
            ]),
        }
    }

    /// Decodes a spec from name-service metadata.
    ///
    /// # Errors
    ///
    /// Returns a [`WireError`] for missing or malformed fields.
    pub fn from_value(v: &Value) -> Result<ProxySpec, WireError> {
        match v.get_str("kind")? {
            "stub" => Ok(ProxySpec::Stub),
            "caching" => Ok(ProxySpec::Caching(caching_from_value(
                v.get("params").unwrap_or(&Value::Null),
            )?)),
            "migratory" => Ok(ProxySpec::Migratory {
                threshold: v.get_u64("threshold")?,
            }),
            "replicated" => {
                let primary = endpoint_from_value(
                    v.get("primary").ok_or(WireError::MissingField("primary"))?,
                )?;
                let replicas = v
                    .get_list("replicas")?
                    .iter()
                    .map(endpoint_from_value)
                    .collect::<Result<Vec<_>, _>>()?;
                let read_target = match v.get_str("read")? {
                    "primary" => ReadTarget::Primary,
                    _ => ReadTarget::Nearest,
                };
                Ok(ProxySpec::Replicated {
                    primary,
                    replicas,
                    read_target,
                })
            }
            "adaptive" => Ok(ProxySpec::Adaptive(AdaptiveParams {
                window: v.get_u64("window")? as usize,
                enable_at: v
                    .get("enable_at")
                    .and_then(Value::as_f64)
                    .ok_or(WireError::MissingField("enable_at"))?,
                disable_at: v
                    .get("disable_at")
                    .and_then(Value::as_f64)
                    .ok_or(WireError::MissingField("disable_at"))?,
                caching: caching_from_value(v.get("caching").unwrap_or(&Value::Null))?,
            })),
            "bulk" => Ok(ProxySpec::Bulk {
                inner: Box::new(ProxySpec::from_value(
                    v.get("inner").ok_or(WireError::MissingField("inner"))?,
                )?),
                params: match v.get("bulk") {
                    Some(p) => BulkParams::from_value(p)?,
                    None => BulkParams::default(),
                },
            }),
            "custom" => Ok(ProxySpec::Custom {
                kind: v.get_str("custom_kind")?.to_owned(),
                params: v.get("params").cloned().unwrap_or(Value::Null),
            }),
            other => Err(WireError::WrongKind {
                expected: "known proxy spec kind",
                actual: if other.is_empty() { "empty" } else { "unknown" },
            }),
        }
    }
}

fn caching_to_value(p: &CachingParams) -> Value {
    let (mode, lease_ns) = match p.coherence {
        Coherence::Lease(d) => ("lease", d.as_nanos() as u64),
        Coherence::Invalidate => ("inv", 0),
        Coherence::LeaseAndInvalidate(d) => ("lease+inv", d.as_nanos() as u64),
    };
    Value::record([
        ("mode", Value::str(mode)),
        ("lease_ns", Value::U64(lease_ns)),
        ("capacity", Value::U64(p.capacity as u64)),
    ])
}

fn caching_from_value(v: &Value) -> Result<CachingParams, WireError> {
    if *v == Value::Null {
        return Ok(CachingParams::default());
    }
    let lease = Duration::from_nanos(v.get_u64("lease_ns")?);
    let coherence = match v.get_str("mode")? {
        "lease" => Coherence::Lease(lease),
        "inv" => Coherence::Invalidate,
        _ => Coherence::LeaseAndInvalidate(lease),
    };
    Ok(CachingParams {
        coherence,
        capacity: v.get_u64("capacity")? as usize,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use simnet::{NodeId, PortId};

    fn ep(n: u32, p: u32) -> Endpoint {
        Endpoint::new(NodeId(n), PortId(p))
    }

    #[test]
    fn roundtrip_all_variants() {
        let specs = [
            ProxySpec::Stub,
            ProxySpec::Caching(CachingParams {
                coherence: Coherence::Lease(Duration::from_millis(5)),
                capacity: 16,
            }),
            ProxySpec::Caching(CachingParams {
                coherence: Coherence::Invalidate,
                capacity: 100,
            }),
            ProxySpec::Caching(CachingParams::default()),
            ProxySpec::Migratory { threshold: 12 },
            ProxySpec::Replicated {
                primary: ep(0, 3),
                replicas: vec![ep(0, 3), ep(1, 3), ep(2, 3)],
                read_target: ReadTarget::Nearest,
            },
            ProxySpec::Replicated {
                primary: ep(0, 3),
                replicas: vec![ep(0, 3)],
                read_target: ReadTarget::Primary,
            },
            ProxySpec::Adaptive(AdaptiveParams::default()),
            ProxySpec::Bulk {
                inner: Box::new(ProxySpec::Stub),
                params: BulkParams::default(),
            },
            ProxySpec::Bulk {
                inner: Box::new(ProxySpec::Caching(CachingParams {
                    coherence: Coherence::Invalidate,
                    capacity: 64,
                })),
                params: BulkParams {
                    store: "blob-origin".into(),
                    threshold: 2048,
                    chunk: 32 * 1024,
                    depth: 4,
                },
            },
            ProxySpec::Custom {
                kind: "tracing".into(),
                params: Value::record([("level", Value::U64(2))]),
            },
        ];
        for spec in specs {
            let v = spec.to_value();
            assert_eq!(ProxySpec::from_value(&v).unwrap(), spec, "spec {spec:?}");
        }
    }

    #[test]
    fn unknown_kind_rejected() {
        let v = Value::record([("kind", Value::str("quantum"))]);
        assert!(ProxySpec::from_value(&v).is_err());
    }

    #[test]
    fn coherence_helpers() {
        assert_eq!(
            Coherence::Lease(Duration::from_millis(1)).lease(),
            Some(Duration::from_millis(1))
        );
        assert_eq!(Coherence::Invalidate.lease(), None);
        assert!(Coherence::Invalidate.subscribes());
        assert!(!Coherence::Lease(Duration::ZERO).subscribes());
        assert!(Coherence::LeaseAndInvalidate(Duration::ZERO).subscribes());
    }

    #[test]
    fn default_caching_has_safety_net() {
        let p = CachingParams::default();
        assert!(p.coherence.subscribes());
        assert!(p.coherence.lease().is_some());
    }
}
