//! The proxy zoo: concrete proxy implementations.
//!
//! | Proxy | Strategy | Paper analogue |
//! |---|---|---|
//! | [`StubProxy`] | marshal and forward every call | the RPC stub — the degenerate proxy |
//! | [`CachingProxy`] | cache read results, stay coherent via leases and/or invalidations | the "intelligent" proxy motivating the paper |
//! | [`MigratoryProxy`] | check the object out into the client context after a usage threshold | migration as an invocation optimization |
//! | [`AdaptiveProxy`] | watch the access mix, switch strategy on the fly | the service's freedom to change protocol without client changes |
//!
//! The replica-reading proxy lives in the `replication` crate, next to
//! the replicated server machinery it pairs with.

mod adaptive;
mod caching;
mod local;
mod migratory;
mod stub;

pub use adaptive::AdaptiveProxy;
pub use caching::CachingProxy;
pub use local::LocalProxy;
pub use migratory::MigratoryProxy;
pub use stub::StubProxy;

use naming::NameClient;
use rpc::{endpoint_from_value, ErrorCode, RpcClient, RpcError, Stray, StrayVerdict};
use simnet::Ctx;
use wire::Value;

use crate::proxy::{OnewaySink, ProxyStats};

/// Cap on `Moved` redirects followed within one logical call; bounds the
/// cost of pathological forwarding chains.
pub(crate) const MAX_REDIRECTS: u32 = 16;

/// Issues a call, collecting stray one-way notifications into `strays`,
/// following `Moved` redirects (forwarding pointers left by migration)
/// and falling back to a fresh name-service lookup after a timeout.
///
/// Local rebinds performed here are the *lazy* path-compression of
/// experiment E10: after following a chain once, the proxy points at the
/// object's true home and later calls pay a single hop.
#[allow(clippy::too_many_arguments)] // internal plumbing shared by every proxy
pub(crate) fn robust_call(
    rpc: &mut RpcClient,
    ns: &mut NameClient,
    service: &str,
    ctx: &mut Ctx,
    op: &str,
    args: Value,
    strays: &mut dyn OnewaySink,
    stats: &mut ProxyStats,
) -> Result<Value, RpcError> {
    let mut redirects = 0;
    let mut relookups = 0;
    loop {
        let result = rpc.call_with_strays(ctx, "", op, args.clone(), |_ctx, stray| {
            match stray {
                Stray::Oneway(o, _) => {
                    strays.push((*o).clone());
                    StrayVerdict::Consumed
                }
                // A request landing here mid-call (this process is also
                // a server, e.g. an edge cache blocked on its origin):
                // offer it to the sink for requeueing.
                Stray::Request(_, m) => {
                    if strays.push_request(m) {
                        StrayVerdict::Consumed
                    } else {
                        StrayVerdict::Drop
                    }
                }
            }
        });
        match result {
            Err(RpcError::Remote(ref e)) if e.code == ErrorCode::Moved => {
                if redirects >= MAX_REDIRECTS {
                    return result;
                }
                match endpoint_from_value(&e.data) {
                    Ok(new_ep) => {
                        rpc.rebind(new_ep);
                        stats.rebinds += 1;
                        redirects += 1;
                    }
                    Err(_) => return result,
                }
            }
            Err(RpcError::Timeout { .. }) if relookups == 0 => {
                // The recorded endpoint may be dead (crashed or moved
                // without a forwarder); ask the name service once.
                relookups += 1;
                ns.forget(service);
                match ns.lookup(ctx, service) {
                    Ok(rec) if rec.endpoint != rpc.server() => {
                        rpc.rebind(rec.endpoint);
                        stats.rebinds += 1;
                    }
                    _ => return result,
                }
            }
            other => return other,
        }
    }
}
