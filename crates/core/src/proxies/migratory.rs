//! The migratory proxy: checks the object out into the client's context.
//!
//! After `threshold` invocations the proxy asks the service for the
//! object itself (`_checkout`). From then on invocations are plain local
//! dispatches — no marshalling, no network. If another client needs the
//! object, the service sends a `recall` notification and the proxy
//! checks the object back in at its next opportunity.
//!
//! This is migration-as-invocation-optimization: the paper's point that
//! a service may transparently relocate state toward its dominant user
//! while clients keep calling through the same interface.

use naming::NameClient;
use rpc::{ErrorCode, RpcClient, RpcError};
use simnet::{Ctx, Endpoint};
use wire::Value;

use super::robust_call;
use crate::interface::InterfaceDesc;
use crate::object::{FactoryRegistry, ServiceObject};
use crate::proxy::{protocol, OnewaySink, Proxy, ProxyStats};

/// A proxy that migrates the object into the client context once the
/// client proves to be a heavy user.
pub struct MigratoryProxy {
    service: String,
    rpc: RpcClient,
    ns: NameClient,
    iface: InterfaceDesc,
    factories: FactoryRegistry,
    threshold: u64,
    calls_seen: u64,
    local: Option<Box<dyn ServiceObject>>,
    recall_requested: bool,
    stats: ProxyStats,
}

impl std::fmt::Debug for MigratoryProxy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MigratoryProxy")
            .field("service", &self.service)
            .field("holding", &self.local.is_some())
            .field("calls_seen", &self.calls_seen)
            .field("threshold", &self.threshold)
            .finish()
    }
}

impl MigratoryProxy {
    /// Creates the proxy. Checkout requires the client to know the
    /// object's type: if `factories` cannot build `iface.type_name`, the
    /// proxy degrades gracefully to stub behaviour.
    pub fn new(
        service: impl Into<String>,
        server: Endpoint,
        ns: Endpoint,
        iface: InterfaceDesc,
        factories: FactoryRegistry,
        threshold: u64,
    ) -> MigratoryProxy {
        MigratoryProxy {
            service: service.into(),
            rpc: RpcClient::new(server),
            ns: NameClient::new(ns),
            iface,
            factories,
            threshold: threshold.max(1),
            calls_seen: 0,
            local: None,
            recall_requested: false,
            stats: ProxyStats::default(),
        }
    }

    /// Whether the object currently lives in this context.
    pub fn is_local(&self) -> bool {
        self.local.is_some()
    }

    fn try_checkout(&mut self, ctx: &mut Ctx, strays: &mut dyn OnewaySink) {
        if !self.factories.knows(&self.iface.type_name) {
            return;
        }
        let result = robust_call(
            &mut self.rpc,
            &mut self.ns,
            &self.service,
            ctx,
            protocol::OP_CHECKOUT,
            Value::Null,
            strays,
            &mut self.stats,
        );
        match result {
            Ok(reply) => {
                let state = reply.get("state").cloned().unwrap_or(Value::Null);
                match self.factories.create(&self.iface.type_name, &state) {
                    Ok(obj) => {
                        self.local = Some(obj);
                        self.stats.migrations += 1;
                    }
                    Err(_) => {
                        // We took the object but cannot host it; push the
                        // state straight back.
                        let _ = self.rpc.call(
                            ctx,
                            protocol::OP_CHECKIN,
                            Value::record([("state", state)]),
                        );
                    }
                }
            }
            Err(RpcError::Remote(ref e)) if e.code == ErrorCode::Unavailable => {
                // Held elsewhere; the service has recalled it. Stay
                // remote and try again later.
            }
            Err(_) => {} // transport trouble: stay remote
        }
    }

    fn checkin(&mut self, ctx: &mut Ctx, strays: &mut dyn OnewaySink) -> Result<(), RpcError> {
        let Some(obj) = self.local.take() else {
            self.recall_requested = false;
            return Ok(());
        };
        let state = obj.snapshot().map_err(RpcError::Remote)?;
        match robust_call(
            &mut self.rpc,
            &mut self.ns,
            &self.service,
            ctx,
            protocol::OP_CHECKIN,
            Value::record([("state", state)]),
            strays,
            &mut self.stats,
        ) {
            Ok(_) => {
                self.stats.checkins += 1;
                self.recall_requested = false;
                self.calls_seen = 0; // restart the usage count
                Ok(())
            }
            Err(e) => {
                // Keep holding rather than lose state; retry on next poll.
                self.local = Some(obj);
                Err(e)
            }
        }
    }
}

impl Proxy for MigratoryProxy {
    fn service(&self) -> &str {
        &self.service
    }

    fn invoke(
        &mut self,
        ctx: &mut Ctx,
        op: &str,
        args: Value,
        strays: &mut dyn OnewaySink,
    ) -> Result<Value, RpcError> {
        self.stats.invocations += 1;

        // Honour a pending recall before doing anything else.
        if self.recall_requested && self.local.is_some() {
            let _ = self.checkin(ctx, strays);
        }

        if self.local.is_none() {
            self.calls_seen += 1;
            if self.calls_seen >= self.threshold && !self.recall_requested {
                self.try_checkout(ctx, strays);
            }
        }

        match &mut self.local {
            Some(obj) => {
                self.stats.local_hits += 1;
                obj.dispatch(ctx, op, &args).map_err(RpcError::Remote)
            }
            None => {
                self.stats.remote_calls += 1;
                robust_call(
                    &mut self.rpc,
                    &mut self.ns,
                    &self.service,
                    ctx,
                    op,
                    args,
                    strays,
                    &mut self.stats,
                )
            }
        }
    }

    fn on_oneway(&mut self, _ctx: &mut Ctx, oneway: &rpc::Oneway) {
        if oneway.op == protocol::MSG_RECALL {
            self.recall_requested = true;
        }
    }

    fn poll(&mut self, ctx: &mut Ctx) {
        if self.recall_requested && self.local.is_some() {
            let mut sink: Vec<rpc::Oneway> = Vec::new();
            let _ = self.checkin(ctx, &mut sink);
        }
    }

    fn detach(&mut self, ctx: &mut Ctx) {
        if self.local.is_some() {
            let mut sink: Vec<rpc::Oneway> = Vec::new();
            let _ = self.checkin(ctx, &mut sink);
        }
    }

    fn stats(&self) -> ProxyStats {
        self.stats
    }
}
