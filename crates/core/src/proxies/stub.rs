//! The stub proxy: marshal and forward.

use naming::NameClient;
use rpc::{Channel, ChannelConfig, RpcClient, RpcError};
use simnet::{Ctx, Endpoint};
use wire::Value;

use super::robust_call;
use crate::bulk::{BulkEngine, BulkParams};
use crate::proxy::{OnewaySink, Proxy, ProxyStats};

/// The degenerate proxy: every invocation becomes one remote call.
///
/// This is exactly the stub of classic RPC (Birrell & Nelson 1984) —
/// the baseline the paper generalizes. It still benefits from the
/// binding protocol: `Moved` redirects and dead-endpoint re-lookups are
/// handled transparently.
#[derive(Debug)]
pub struct StubProxy {
    service: String,
    rpc: RpcClient,
    ns: NameClient,
    stats: ProxyStats,
    bulk: Option<BulkEngine>,
}

impl StubProxy {
    /// Creates a stub proxy for `service` at `server`, using the name
    /// server at `ns` for rebinds.
    pub fn new(service: impl Into<String>, server: Endpoint, ns: Endpoint) -> StubProxy {
        StubProxy {
            service: service.into(),
            rpc: RpcClient::new(server),
            ns: NameClient::new(ns),
            stats: ProxyStats::default(),
            bulk: None,
        }
    }

    /// The endpoint currently called (may change after redirects).
    pub fn server(&self) -> Endpoint {
        self.rpc.server()
    }

    /// Enables the out-of-band bulk data plane: over-threshold blobs in
    /// arguments are spilled to the store before the call, and
    /// references in replies are resolved after it. `ns` is the name
    /// server used to locate blob stores.
    pub fn enable_bulk(&mut self, params: BulkParams, ns: Endpoint) {
        self.bulk = Some(BulkEngine::new(params, ns));
    }

    /// The bulk engine, if [`Self::enable_bulk`] was called — for
    /// region routing overrides and transfer counters.
    pub fn bulk_mut(&mut self) -> Option<&mut BulkEngine> {
        self.bulk.as_mut()
    }

    /// Issues many calls through a pipelined [`Channel`] and returns
    /// their results in call order. With `cfg.pipeline_depth > 1` the
    /// calls overlap on the wire (and with `cfg.max_batch > 1` they
    /// share datagrams), so `n` calls cost far fewer than `n` round
    /// trips — the stub's answer to the caching proxy's latency tricks
    /// when every result is really needed.
    ///
    /// One-way notifications that arrive while the channel pumps are
    /// routed to `strays`. Unlike [`Proxy::invoke`], this path does not
    /// chase `Moved` redirects: a migration mid-pipeline surfaces as
    /// that call's error entry.
    ///
    /// # Errors
    ///
    /// [`RpcError::Stopped`] on simulation shutdown; every other
    /// failure is per-call in the returned vector.
    pub fn invoke_many(
        &mut self,
        ctx: &mut Ctx,
        calls: &[(&str, Value)],
        cfg: ChannelConfig,
        strays: &mut dyn OnewaySink,
    ) -> Result<Vec<Result<Value, RpcError>>, RpcError> {
        let mut ch = Channel::new(self.service.clone(), self.rpc.server(), cfg);
        let handles: Vec<_> = calls
            .iter()
            .map(|(op, args)| {
                self.stats.invocations += 1;
                self.stats.remote_calls += 1;
                ch.begin_call(ctx, op, args.clone())
            })
            .collect();
        ch.wait_all(ctx)?;
        let results = handles.into_iter().map(|h| ch.wait(ctx, h)).collect();
        for o in ch.take_strays() {
            strays.push(o);
        }
        Ok(results)
    }
}

impl Proxy for StubProxy {
    fn service(&self) -> &str {
        &self.service
    }

    fn invoke(
        &mut self,
        ctx: &mut Ctx,
        op: &str,
        args: Value,
        strays: &mut dyn OnewaySink,
    ) -> Result<Value, RpcError> {
        self.stats.invocations += 1;
        self.stats.remote_calls += 1;
        let args = match &mut self.bulk {
            Some(eng) if eng.wants_spill(&args) => eng.spill(ctx, args, strays)?,
            _ => args,
        };
        let reply = robust_call(
            &mut self.rpc,
            &mut self.ns,
            &self.service,
            ctx,
            op,
            args,
            strays,
            &mut self.stats,
        )?;
        match &mut self.bulk {
            Some(eng) if BulkEngine::wants_resolve(&reply) => eng.resolve(ctx, reply, strays),
            _ => Ok(reply),
        }
    }

    fn stats(&self) -> ProxyStats {
        let mut s = self.stats;
        if let Some(eng) = &self.bulk {
            s.bulk_spills = eng.spills;
            s.bulk_resolves = eng.resolves;
        }
        s
    }
}
