//! The stub proxy: marshal and forward.

use naming::NameClient;
use rpc::{RpcClient, RpcError};
use simnet::{Ctx, Endpoint};
use wire::Value;

use super::robust_call;
use crate::proxy::{OnewaySink, Proxy, ProxyStats};

/// The degenerate proxy: every invocation becomes one remote call.
///
/// This is exactly the stub of classic RPC (Birrell & Nelson 1984) —
/// the baseline the paper generalizes. It still benefits from the
/// binding protocol: `Moved` redirects and dead-endpoint re-lookups are
/// handled transparently.
#[derive(Debug)]
pub struct StubProxy {
    service: String,
    rpc: RpcClient,
    ns: NameClient,
    stats: ProxyStats,
}

impl StubProxy {
    /// Creates a stub proxy for `service` at `server`, using the name
    /// server at `ns` for rebinds.
    pub fn new(service: impl Into<String>, server: Endpoint, ns: Endpoint) -> StubProxy {
        StubProxy {
            service: service.into(),
            rpc: RpcClient::new(server),
            ns: NameClient::new(ns),
            stats: ProxyStats::default(),
        }
    }

    /// The endpoint currently called (may change after redirects).
    pub fn server(&self) -> Endpoint {
        self.rpc.server()
    }
}

impl Proxy for StubProxy {
    fn service(&self) -> &str {
        &self.service
    }

    fn invoke(
        &mut self,
        ctx: &mut Ctx,
        op: &str,
        args: Value,
        strays: &mut dyn OnewaySink,
    ) -> Result<Value, RpcError> {
        self.stats.invocations += 1;
        self.stats.remote_calls += 1;
        robust_call(
            &mut self.rpc,
            &mut self.ns,
            &self.service,
            ctx,
            op,
            args,
            strays,
            &mut self.stats,
        )
    }

    fn stats(&self) -> ProxyStats {
        self.stats
    }
}
