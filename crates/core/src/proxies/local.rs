//! The local proxy: the same-context fast path.
//!
//! When client and service share a context (the same address space),
//! the proxy principle says invocation must degenerate to an ordinary
//! procedure call — no marshalling, no messages. [`LocalProxy`] hosts
//! the object directly in the client's context and dispatches in-line;
//! experiment E5 measures the gap against a remote stub.

use rpc::RpcError;
use simnet::Ctx;
use wire::Value;

use crate::object::ServiceObject;
use crate::proxy::{OnewaySink, Proxy, ProxyStats};

/// A proxy for an object living in this very context.
pub struct LocalProxy {
    service: String,
    object: Box<dyn ServiceObject>,
    stats: ProxyStats,
}

impl std::fmt::Debug for LocalProxy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LocalProxy")
            .field("service", &self.service)
            .finish()
    }
}

impl LocalProxy {
    /// Hosts `object` locally under `service`.
    pub fn new(service: impl Into<String>, object: Box<dyn ServiceObject>) -> LocalProxy {
        LocalProxy {
            service: service.into(),
            object,
            stats: ProxyStats::default(),
        }
    }

    /// Gives the hosted object back (e.g. to export it remotely later).
    pub fn into_object(self) -> Box<dyn ServiceObject> {
        self.object
    }
}

impl Proxy for LocalProxy {
    fn service(&self) -> &str {
        &self.service
    }

    fn invoke(
        &mut self,
        ctx: &mut Ctx,
        op: &str,
        args: Value,
        _strays: &mut dyn OnewaySink,
    ) -> Result<Value, RpcError> {
        self.stats.invocations += 1;
        self.stats.local_hits += 1;
        self.object
            .dispatch(ctx, op, &args)
            .map_err(RpcError::Remote)
    }

    fn stats(&self) -> ProxyStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::object::testutil::TestKv;
    use crate::proxy::DiscardStrays;
    use simnet::{NetworkConfig, NodeId, Simulation};

    #[test]
    fn dispatches_without_any_network() {
        let mut sim = Simulation::new(NetworkConfig::lan(), 0);
        sim.spawn("host", NodeId(0), |ctx| {
            let mut p = LocalProxy::new("kv", Box::new(TestKv::default()));
            let mut sink = DiscardStrays;
            p.invoke(
                ctx,
                "put",
                Value::record([("key", Value::str("a")), ("value", Value::str("1"))]),
                &mut sink,
            )
            .unwrap();
            let v = p
                .invoke(
                    ctx,
                    "get",
                    Value::record([("key", Value::str("a"))]),
                    &mut sink,
                )
                .unwrap();
            assert_eq!(v, Value::str("1"));
            assert_eq!(p.stats().local_hits, 2);
            assert_eq!(p.stats().remote_calls, 0);
        });
        let report = sim.run();
        assert_eq!(report.metrics.msgs_sent, 0, "no messages for local calls");
        assert_eq!(report.end_time, simnet::SimTime::ZERO, "no time elapsed");
    }
}
