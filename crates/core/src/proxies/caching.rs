//! The caching proxy: read results cached in the client context.
//!
//! Reads declared in the service interface are cached under their *tag*
//! (see [`crate::OpDesc::tag`]). Coherence follows the service-chosen
//! [`Coherence`] mode:
//!
//! * **Leases** — every entry expires after a fixed duration; stale
//!   windows are bounded by the lease with zero server state.
//! * **Invalidations** — the proxy subscribes at bind time; the service
//!   pushes an `inv {svc, tag}` notification on every write, and the
//!   proxy drops the tag when it arrives (at its next mailbox poll).
//!
//! The proxy always invalidates its own tag on its own writes, so a
//! client reads its own writes regardless of mode.

use std::collections::{HashMap, VecDeque};

use naming::NameClient;
use rpc::{endpoint_to_value, RpcClient, RpcError};
use simnet::{Ctx, Endpoint, SimTime};
use wire::Value;

use super::robust_call;
use crate::interface::InterfaceDesc;
use crate::proxy::{protocol, OnewaySink, Proxy, ProxyStats};
use crate::spec::CachingParams;

#[derive(Debug, Clone)]
struct CacheEntry {
    value: Value,
    expires: Option<SimTime>,
}

/// A proxy that caches read results.
#[derive(Debug)]
pub struct CachingProxy {
    service: String,
    rpc: RpcClient,
    ns: NameClient,
    iface: InterfaceDesc,
    params: CachingParams,
    subscribed: bool,
    /// tag → (request key → entry).
    cache: HashMap<String, HashMap<Vec<u8>, CacheEntry>>,
    /// Insertion order for capacity eviction (FIFO).
    order: VecDeque<(String, Vec<u8>)>,
    len: usize,
    stats: ProxyStats,
}

impl CachingProxy {
    /// Creates the proxy and, if the coherence mode calls for it,
    /// subscribes for invalidations.
    ///
    /// # Errors
    ///
    /// Any [`RpcError`] from the subscribe call.
    pub fn bind(
        ctx: &mut Ctx,
        service: impl Into<String>,
        server: Endpoint,
        ns: Endpoint,
        iface: InterfaceDesc,
        params: CachingParams,
    ) -> Result<CachingProxy, RpcError> {
        let mut proxy = CachingProxy {
            service: service.into(),
            rpc: RpcClient::new(server),
            ns: NameClient::new(ns),
            iface,
            params,
            subscribed: false,
            cache: HashMap::new(),
            order: VecDeque::new(),
            len: 0,
            stats: ProxyStats::default(),
        };
        if proxy.params.coherence.subscribes() {
            proxy.subscribe(ctx)?;
        }
        Ok(proxy)
    }

    /// Subscribes for invalidation pushes.
    ///
    /// # Errors
    ///
    /// Any [`RpcError`] from the call.
    pub(crate) fn subscribe(&mut self, ctx: &mut Ctx) -> Result<(), RpcError> {
        self.rpc.call(
            ctx,
            protocol::OP_SUBSCRIBE,
            Value::record([("cb", endpoint_to_value(ctx.endpoint()))]),
        )?;
        self.subscribed = true;
        Ok(())
    }

    /// Cancels the invalidation subscription.
    ///
    /// # Errors
    ///
    /// Any [`RpcError`] from the call.
    pub(crate) fn unsubscribe(&mut self, ctx: &mut Ctx) -> Result<(), RpcError> {
        if self.subscribed {
            self.rpc.call(
                ctx,
                protocol::OP_UNSUBSCRIBE,
                Value::record([("cb", endpoint_to_value(ctx.endpoint()))]),
            )?;
            self.subscribed = false;
        }
        Ok(())
    }

    /// Number of live cache entries.
    pub fn cache_len(&self) -> usize {
        self.len
    }

    /// Replaces the caching parameters (used by the adaptive proxy when
    /// it flips strategies). Existing entries keep their old expiry.
    pub(crate) fn set_params(&mut self, params: CachingParams) {
        self.params = params;
    }

    /// Drops every cached entry.
    pub(crate) fn clear(&mut self) {
        self.cache.clear();
        self.order.clear();
        self.len = 0;
    }

    /// Drops all entries under one tag (`"*"` clears everything: a
    /// whole-object write invalidates every read).
    fn invalidate_tag(&mut self, tag: &str) {
        if tag == "*" {
            self.clear();
            return;
        }
        if let Some(entries) = self.cache.remove(tag) {
            self.len -= entries.len();
        }
        // Whole-object reads observe every key, so any write staleness
        // also invalidates the "*" tag.
        if let Some(entries) = self.cache.remove("*") {
            self.len -= entries.len();
        }
    }

    fn cache_key(op: &str, args: &Value) -> Vec<u8> {
        wire::encode(&Value::record([
            ("op", Value::str(op)),
            ("a", args.clone()),
        ]))
        .to_vec()
    }

    fn lookup(&mut self, tag: &str, key: &[u8], now: SimTime) -> Option<Value> {
        let entries = self.cache.get_mut(tag)?;
        let entry = entries.get(key)?;
        if let Some(expires) = entry.expires {
            if expires <= now {
                entries.remove(key);
                self.len -= 1;
                return None;
            }
        }
        Some(entry.value.clone())
    }

    fn insert(&mut self, tag: String, key: Vec<u8>, value: Value, now: SimTime) {
        while self.len >= self.params.capacity {
            // FIFO eviction: pop until we actually remove a live entry
            // (entries may already be gone via invalidation).
            match self.order.pop_front() {
                Some((t, k)) => {
                    if let Some(entries) = self.cache.get_mut(&t) {
                        if entries.remove(&k).is_some() {
                            self.len -= 1;
                            if entries.is_empty() {
                                self.cache.remove(&t);
                            }
                        }
                    }
                }
                None => break,
            }
        }
        let expires = self.params.coherence.lease().map(|d| now + d);
        let fresh = self
            .cache
            .entry(tag.clone())
            .or_default()
            .insert(key.clone(), CacheEntry { value, expires })
            .is_none();
        if fresh {
            self.len += 1;
            self.order.push_back((tag, key));
        }
    }

    /// Forwards a call without consulting or filling the cache (used by
    /// the adaptive proxy while caching is disabled).
    pub(crate) fn invoke_nocache(
        &mut self,
        ctx: &mut Ctx,
        op: &str,
        args: Value,
        strays: &mut dyn OnewaySink,
    ) -> Result<Value, RpcError> {
        self.stats.invocations += 1;
        self.stats.remote_calls += 1;
        robust_call(
            &mut self.rpc,
            &mut self.ns,
            &self.service,
            ctx,
            op,
            args,
            strays,
            &mut self.stats,
        )
    }

    /// Drains invalidations already sitting in the process mailbox so a
    /// read that follows a remote write observes it promptly.
    fn drain_mailbox(&mut self, ctx: &mut Ctx, strays: &mut dyn OnewaySink) {
        while let Ok(Some(msg)) = ctx.try_recv() {
            // Anything that is not a one-way notification is stale here
            // (late duplicate replies); drop it.
            if let Ok(rpc::Packet::Oneway(o)) = rpc::Packet::from_bytes(&msg.payload) {
                if o.args.get("svc").and_then(Value::as_str) == Some(self.service.as_str()) {
                    self.handle_oneway(&o);
                } else {
                    strays.push(o);
                }
            }
        }
    }

    fn handle_oneway(&mut self, o: &rpc::Oneway) {
        if o.op == protocol::MSG_INVALIDATE {
            if let Some(tag) = o.args.get("tag").and_then(Value::as_str) {
                let tag = tag.to_owned();
                self.invalidate_tag(&tag);
                self.stats.invalidations_rx += 1;
            }
        }
    }
}

impl Proxy for CachingProxy {
    fn service(&self) -> &str {
        &self.service
    }

    fn invoke(
        &mut self,
        ctx: &mut Ctx,
        op: &str,
        args: Value,
        strays: &mut dyn OnewaySink,
    ) -> Result<Value, RpcError> {
        if self.subscribed {
            self.drain_mailbox(ctx, strays);
        }
        self.stats.invocations += 1;
        let desc = self.iface.op(op).cloned();
        match desc {
            Some(d) if d.kind == crate::interface::OpKind::Read => {
                let tag = d.tag(&args);
                let key = Self::cache_key(op, &args);
                if let Some(v) = self.lookup(&tag, &key, ctx.now()) {
                    self.stats.local_hits += 1;
                    ctx.trace(simnet::TraceEvent::ProxyCacheHit {
                        service: self.service.clone(),
                        op: op.to_owned(),
                        span: ctx.current_span(),
                    });
                    return Ok(v);
                }
                self.stats.remote_calls += 1;
                ctx.trace(simnet::TraceEvent::ProxyCacheMiss {
                    service: self.service.clone(),
                    op: op.to_owned(),
                    span: ctx.current_span(),
                });
                let v = robust_call(
                    &mut self.rpc,
                    &mut self.ns,
                    &self.service,
                    ctx,
                    op,
                    args,
                    strays,
                    &mut self.stats,
                )?;
                self.insert(tag, key, v.clone(), ctx.now());
                Ok(v)
            }
            Some(d) => {
                // A write: forward, then drop our own stale reads of the
                // tag so we read our own writes.
                let tag = d.tag(&args);
                self.stats.remote_calls += 1;
                let v = robust_call(
                    &mut self.rpc,
                    &mut self.ns,
                    &self.service,
                    ctx,
                    op,
                    args,
                    strays,
                    &mut self.stats,
                )?;
                self.invalidate_tag(&tag);
                Ok(v)
            }
            None => {
                // Undeclared (system or unknown) op: pass through.
                self.stats.remote_calls += 1;
                robust_call(
                    &mut self.rpc,
                    &mut self.ns,
                    &self.service,
                    ctx,
                    op,
                    args,
                    strays,
                    &mut self.stats,
                )
            }
        }
    }

    fn on_oneway(&mut self, _ctx: &mut Ctx, oneway: &rpc::Oneway) {
        self.handle_oneway(oneway);
    }

    fn poll(&mut self, ctx: &mut Ctx) {
        if self.subscribed {
            let mut sink: Vec<rpc::Oneway> = Vec::new();
            self.drain_mailbox(ctx, &mut sink);
            // Strays for other services found during a poll cannot be
            // routed from here; the runtime's pump drains the mailbox
            // itself, so this path only runs for standalone proxies.
        }
    }

    fn detach(&mut self, ctx: &mut Ctx) {
        let _ = self.unsubscribe(ctx);
        self.clear();
    }

    fn stats(&self) -> ProxyStats {
        self.stats
    }
}
