//! The caching proxy: read results cached in the client context.
//!
//! Reads declared in the service interface are cached under their *tag*
//! (see [`crate::OpDesc::tag`]). Coherence follows the service-chosen
//! [`Coherence`] mode:
//!
//! * **Leases** — every entry expires after a fixed duration; stale
//!   windows are bounded by the lease with zero server state.
//! * **Invalidations** — the proxy subscribes at bind time; the service
//!   pushes an `inv {svc, tag}` notification on every write, and the
//!   proxy drops the tag when it arrives (at its next mailbox poll).
//!
//! The proxy always invalidates its own tag on its own writes, so a
//! client reads its own writes regardless of mode.

use std::collections::{HashMap, HashSet, VecDeque};

use naming::NameClient;
use rpc::{endpoint_to_value, Channel, ChannelConfig, RpcClient, RpcError};
use simnet::{Ctx, Endpoint, SimTime};
use wire::Value;

use super::robust_call;
use crate::bulk::{BulkEngine, BulkParams};
use crate::interface::InterfaceDesc;
use crate::proxy::{protocol, OnewaySink, Proxy, ProxyStats};
use crate::spec::CachingParams;

#[derive(Debug, Clone)]
struct CacheEntry {
    value: Value,
    expires: Option<SimTime>,
}

/// A proxy that caches read results.
#[derive(Debug)]
pub struct CachingProxy {
    service: String,
    rpc: RpcClient,
    ns: NameClient,
    iface: InterfaceDesc,
    params: CachingParams,
    subscribed: bool,
    /// tag → (request key → entry).
    cache: HashMap<String, HashMap<Vec<u8>, CacheEntry>>,
    /// Insertion order for capacity eviction (FIFO). May hold stale
    /// pairs for entries removed by invalidation or lease expiry;
    /// [`CachingProxy::compact_order`] bounds the slack.
    order: VecDeque<(String, Vec<u8>)>,
    len: usize,
    /// When `Some`, writes go through this pipelined channel instead of
    /// blocking on a round trip (write-behind mode).
    write_behind: Option<Channel>,
    /// When `Some`, over-threshold blobs spill out-of-band and reply
    /// references resolve out-of-band. Replies are resolved *before*
    /// they enter the cache, so repeat reads of a bulk value are pure
    /// local hits — the hierarchical edge cache's client-level tier.
    bulk: Option<BulkEngine>,
    stats: ProxyStats,
}

impl CachingProxy {
    /// Creates the proxy and, if the coherence mode calls for it,
    /// subscribes for invalidations.
    ///
    /// # Errors
    ///
    /// Any [`RpcError`] from the subscribe call.
    pub fn bind(
        ctx: &mut Ctx,
        service: impl Into<String>,
        server: Endpoint,
        ns: Endpoint,
        iface: InterfaceDesc,
        params: CachingParams,
    ) -> Result<CachingProxy, RpcError> {
        let mut proxy = CachingProxy {
            service: service.into(),
            rpc: RpcClient::new(server),
            ns: NameClient::new(ns),
            iface,
            params,
            subscribed: false,
            cache: HashMap::new(),
            order: VecDeque::new(),
            len: 0,
            write_behind: None,
            bulk: None,
            stats: ProxyStats::default(),
        };
        if proxy.params.coherence.subscribes() {
            proxy.subscribe(ctx)?;
        }
        Ok(proxy)
    }

    /// Subscribes for invalidation pushes.
    ///
    /// # Errors
    ///
    /// Any [`RpcError`] from the call.
    pub(crate) fn subscribe(&mut self, ctx: &mut Ctx) -> Result<(), RpcError> {
        self.rpc.call(
            ctx,
            protocol::OP_SUBSCRIBE,
            Value::record([("cb", endpoint_to_value(ctx.endpoint()))]),
        )?;
        self.subscribed = true;
        Ok(())
    }

    /// Cancels the invalidation subscription.
    ///
    /// # Errors
    ///
    /// Any [`RpcError`] from the call.
    pub(crate) fn unsubscribe(&mut self, ctx: &mut Ctx) -> Result<(), RpcError> {
        if self.subscribed {
            self.rpc.call(
                ctx,
                protocol::OP_UNSUBSCRIBE,
                Value::record([("cb", endpoint_to_value(ctx.endpoint()))]),
            )?;
            self.subscribed = false;
        }
        Ok(())
    }

    /// Number of live cache entries.
    pub fn cache_len(&self) -> usize {
        self.len
    }

    /// Length of the internal eviction queue (test hook: must stay
    /// O(capacity + live entries), see [`CachingProxy::compact_order`]).
    #[doc(hidden)]
    pub fn order_len(&self) -> usize {
        self.order.len()
    }

    /// Switches writes to write-behind: instead of blocking on a round
    /// trip, write ops are staged on a pipelined [`Channel`] and the
    /// call returns `Value::Null` immediately. The proxy still
    /// invalidates its own tags on write, and a read *miss* drains the
    /// channel before going remote, so the client continues to read its
    /// own writes. Durability is deferred: a write is only known to have
    /// executed once the channel drains ([`Proxy::poll`] makes progress;
    /// [`Proxy::detach`] drains fully).
    pub fn enable_write_behind(&mut self, cfg: ChannelConfig) {
        self.write_behind = Some(Channel::new(self.service.clone(), self.rpc.server(), cfg));
    }

    /// Enables the out-of-band bulk data plane (see
    /// [`crate::bulk::BulkEngine`]). `ns` is the name server used to
    /// locate blob stores.
    pub fn enable_bulk(&mut self, params: BulkParams, ns: Endpoint) {
        self.bulk = Some(BulkEngine::new(params, ns));
    }

    /// The bulk engine, if [`Self::enable_bulk`] was called — for
    /// region routing overrides and transfer counters.
    pub fn bulk_mut(&mut self) -> Option<&mut BulkEngine> {
        self.bulk.as_mut()
    }

    fn bulk_spill(
        &mut self,
        ctx: &mut Ctx,
        args: Value,
        strays: &mut dyn OnewaySink,
    ) -> Result<Value, RpcError> {
        match &mut self.bulk {
            Some(eng) if eng.wants_spill(&args) => eng.spill(ctx, args, strays),
            _ => Ok(args),
        }
    }

    fn bulk_resolve(
        &mut self,
        ctx: &mut Ctx,
        v: Value,
        strays: &mut dyn OnewaySink,
    ) -> Result<Value, RpcError> {
        match &mut self.bulk {
            Some(eng) if BulkEngine::wants_resolve(&v) => eng.resolve(ctx, v, strays),
            _ => Ok(v),
        }
    }

    /// Replaces the caching parameters (used by the adaptive proxy when
    /// it flips strategies). Existing entries keep their old expiry.
    pub(crate) fn set_params(&mut self, params: CachingParams) {
        self.params = params;
    }

    /// Drops every cached entry.
    pub(crate) fn clear(&mut self) {
        self.cache.clear();
        self.order.clear();
        self.len = 0;
    }

    /// Drops all entries under one tag (`"*"` clears everything: a
    /// whole-object write invalidates every read).
    fn invalidate_tag(&mut self, tag: &str) {
        if tag == "*" {
            self.clear();
            return;
        }
        if let Some(entries) = self.cache.remove(tag) {
            self.len -= entries.len();
        }
        // Whole-object reads observe every key, so any write staleness
        // also invalidates the "*" tag.
        if let Some(entries) = self.cache.remove("*") {
            self.len -= entries.len();
        }
        self.compact_order();
    }

    /// Rebuilds the eviction queue once its stale slack (pairs whose
    /// entry was removed by invalidation or lease expiry, plus
    /// duplicates from expire-then-reinsert) exceeds the live entry
    /// count plus capacity. Keeps the *last* occurrence of each live
    /// pair so re-inserted entries age from their newest insert, and
    /// guarantees `order.len() <= 2 * (capacity + len)` at all times.
    fn compact_order(&mut self) {
        if self.order.len() <= self.params.capacity + self.len {
            return;
        }
        let mut seen: HashSet<(String, Vec<u8>)> = HashSet::with_capacity(self.len);
        let mut kept: Vec<(String, Vec<u8>)> = Vec::with_capacity(self.len);
        while let Some((t, k)) = self.order.pop_back() {
            let live = self
                .cache
                .get(&t)
                .is_some_and(|entries| entries.contains_key(&k));
            if live && seen.insert((t.clone(), k.clone())) {
                kept.push((t, k));
            }
        }
        kept.reverse();
        self.order = kept.into();
        debug_assert_eq!(self.order.len(), self.len);
    }

    fn cache_key(op: &str, args: &Value) -> Vec<u8> {
        wire::encode(&Value::record([
            ("op", Value::str(op)),
            ("a", args.clone()),
        ]))
        .to_vec()
    }

    fn lookup(&mut self, tag: &str, key: &[u8], now: SimTime) -> Option<Value> {
        let entries = self.cache.get_mut(tag)?;
        let entry = entries.get(key)?;
        if let Some(expires) = entry.expires {
            if expires <= now {
                entries.remove(key);
                if entries.is_empty() {
                    self.cache.remove(tag);
                }
                self.len -= 1;
                self.compact_order();
                return None;
            }
        }
        Some(entry.value.clone())
    }

    fn insert(&mut self, tag: String, key: Vec<u8>, value: Value, now: SimTime) {
        while self.len >= self.params.capacity {
            // FIFO eviction: pop until we actually remove a live entry
            // (entries may already be gone via invalidation).
            match self.order.pop_front() {
                Some((t, k)) => {
                    if let Some(entries) = self.cache.get_mut(&t) {
                        if entries.remove(&k).is_some() {
                            self.len -= 1;
                            if entries.is_empty() {
                                self.cache.remove(&t);
                            }
                        }
                    }
                }
                None => break,
            }
        }
        let expires = self.params.coherence.lease().map(|d| now + d);
        let fresh = self
            .cache
            .entry(tag.clone())
            .or_default()
            .insert(key.clone(), CacheEntry { value, expires })
            .is_none();
        if fresh {
            self.len += 1;
            self.order.push_back((tag, key));
            self.compact_order();
        }
    }

    /// Forwards a call without consulting or filling the cache (used by
    /// the adaptive proxy while caching is disabled).
    pub(crate) fn invoke_nocache(
        &mut self,
        ctx: &mut Ctx,
        op: &str,
        args: Value,
        strays: &mut dyn OnewaySink,
    ) -> Result<Value, RpcError> {
        self.stats.invocations += 1;
        self.stats.remote_calls += 1;
        robust_call(
            &mut self.rpc,
            &mut self.ns,
            &self.service,
            ctx,
            op,
            args,
            strays,
            &mut self.stats,
        )
    }

    /// Drains invalidations already sitting in the process mailbox so a
    /// read that follows a remote write observes it promptly.
    fn drain_mailbox(&mut self, ctx: &mut Ctx, strays: &mut dyn OnewaySink) {
        while let Ok(Some(msg)) = ctx.try_recv() {
            match rpc::Packet::from_frame(&msg.payload) {
                Ok(rpc::Packet::Oneway(o)) => {
                    if o.args.get("svc").and_then(Value::as_str) == Some(self.service.as_str()) {
                        self.handle_oneway(&o);
                    } else {
                        strays.push(o);
                    }
                }
                // A request addressed to this process (it is itself a
                // server, e.g. an edge cache): offer it to the sink,
                // which may requeue it for service after this call.
                Ok(rpc::Packet::Request(_)) if strays.push_request(&msg) => {}
                // Anything else — late duplicate replies, unrequeued
                // requests, undecodable frames — cannot be serviced
                // from here. They used to vanish silently; now the drop
                // is at least visible.
                Ok(_) | Err(_) => {
                    self.stats.datagrams_discarded += 1;
                    ctx.obs().on_stray_dropped();
                }
            }
        }
    }

    /// Routes one-way notifications the write-behind channel absorbed
    /// while pumping, then puts the channel back.
    fn route_channel_strays(&mut self, ch: &mut Channel, strays: &mut dyn OnewaySink) {
        for o in ch.take_strays() {
            if o.args.get("svc").and_then(Value::as_str) == Some(self.service.as_str()) {
                self.handle_oneway(&o);
            } else {
                strays.push(o);
            }
        }
    }

    /// Non-blocking write-behind progress: send staged writes, absorb
    /// replies already in the mailbox, drop settled records.
    fn pump_write_behind(
        &mut self,
        ctx: &mut Ctx,
        strays: &mut dyn OnewaySink,
    ) -> Result<(), RpcError> {
        let Some(mut ch) = self.write_behind.take() else {
            return Ok(());
        };
        let r = ch.poll(ctx);
        ch.reap_settled();
        self.route_channel_strays(&mut ch, strays);
        self.write_behind = Some(ch);
        r
    }

    /// Drains the write-behind pipeline completely. Read misses call
    /// this before going remote so the server observes our writes first
    /// (read-your-writes survives the asynchrony).
    fn flush_write_behind(
        &mut self,
        ctx: &mut Ctx,
        strays: &mut dyn OnewaySink,
    ) -> Result<(), RpcError> {
        let Some(mut ch) = self.write_behind.take() else {
            return Ok(());
        };
        let r = ch.wait_all(ctx);
        ch.reap_settled();
        self.route_channel_strays(&mut ch, strays);
        self.write_behind = Some(ch);
        r
    }

    fn handle_oneway(&mut self, o: &rpc::Oneway) {
        if o.op == protocol::MSG_INVALIDATE {
            if let Some(tag) = o.args.get("tag").and_then(Value::as_str) {
                let tag = tag.to_owned();
                self.invalidate_tag(&tag);
                self.stats.invalidations_rx += 1;
            }
        }
    }
}

impl Proxy for CachingProxy {
    fn service(&self) -> &str {
        &self.service
    }

    fn invoke(
        &mut self,
        ctx: &mut Ctx,
        op: &str,
        args: Value,
        strays: &mut dyn OnewaySink,
    ) -> Result<Value, RpcError> {
        if self.write_behind.is_some() {
            // The channel drains the mailbox itself: replies feed its
            // outstanding calls, one-ways come back via take_strays.
            // A raw drain here would eat the channel's replies.
            self.pump_write_behind(ctx, strays)?;
        } else if self.subscribed {
            self.drain_mailbox(ctx, strays);
        }
        self.stats.invocations += 1;
        let desc = self.iface.op(op).cloned();
        match desc {
            Some(d) if d.kind == crate::interface::OpKind::Read => {
                let tag = d.tag(&args);
                let key = Self::cache_key(op, &args);
                if let Some(v) = self.lookup(&tag, &key, ctx.now()) {
                    self.stats.local_hits += 1;
                    if ctx.obs().timeseries_enabled() {
                        ctx.obs().ts_add(
                            ctx.now().as_nanos(),
                            &format!("cache_hit@{}", self.service),
                            1,
                        );
                    }
                    ctx.trace(simnet::TraceEvent::ProxyCacheHit {
                        service: self.service.clone(),
                        op: op.to_owned(),
                        span: ctx.current_span(),
                    });
                    return Ok(v);
                }
                self.stats.remote_calls += 1;
                if ctx.obs().timeseries_enabled() {
                    ctx.obs().ts_add(
                        ctx.now().as_nanos(),
                        &format!("cache_miss@{}", self.service),
                        1,
                    );
                }
                ctx.trace(simnet::TraceEvent::ProxyCacheMiss {
                    service: self.service.clone(),
                    op: op.to_owned(),
                    span: ctx.current_span(),
                });
                // A miss goes remote: drain pending asynchronous writes
                // first so the server answers after our writes applied.
                self.flush_write_behind(ctx, strays)?;
                let args = self.bulk_spill(ctx, args, strays)?;
                let v = robust_call(
                    &mut self.rpc,
                    &mut self.ns,
                    &self.service,
                    ctx,
                    op,
                    args,
                    strays,
                    &mut self.stats,
                )?;
                let v = self.bulk_resolve(ctx, v, strays)?;
                self.insert(tag, key, v.clone(), ctx.now());
                Ok(v)
            }
            Some(d) => {
                // A write: forward, then drop our own stale reads of the
                // tag so we read our own writes.
                let tag = d.tag(&args);
                self.stats.remote_calls += 1;
                // Spill before staging: the write-behind channel then
                // carries only the fixed-size reference, so asynchronous
                // writes stay cheap on the RPC path too.
                let args = self.bulk_spill(ctx, args, strays)?;
                if self.write_behind.is_some() {
                    // Write-behind: stage the call on the pipelined
                    // channel and return immediately. The channel's
                    // retransmission timers and the server's duplicate
                    // window keep execution at-most-once; the local
                    // invalidation below plus the flush-on-miss above
                    // keep read-your-writes.
                    let mut ch = self.write_behind.take().expect("checked is_some");
                    ch.begin_call(ctx, op, args);
                    let r = ch.poll(ctx);
                    ch.reap_settled();
                    self.route_channel_strays(&mut ch, strays);
                    self.write_behind = Some(ch);
                    r?;
                    self.invalidate_tag(&tag);
                    return Ok(Value::Null);
                }
                let v = robust_call(
                    &mut self.rpc,
                    &mut self.ns,
                    &self.service,
                    ctx,
                    op,
                    args,
                    strays,
                    &mut self.stats,
                )?;
                let v = self.bulk_resolve(ctx, v, strays)?;
                self.invalidate_tag(&tag);
                Ok(v)
            }
            None => {
                // Undeclared (system or unknown) op: pass through. It
                // might write, so drain asynchronous writes first to
                // preserve ordering.
                self.stats.remote_calls += 1;
                self.flush_write_behind(ctx, strays)?;
                let args = self.bulk_spill(ctx, args, strays)?;
                let v = robust_call(
                    &mut self.rpc,
                    &mut self.ns,
                    &self.service,
                    ctx,
                    op,
                    args,
                    strays,
                    &mut self.stats,
                )?;
                self.bulk_resolve(ctx, v, strays)
            }
        }
    }

    fn on_oneway(&mut self, _ctx: &mut Ctx, oneway: &rpc::Oneway) {
        self.handle_oneway(oneway);
    }

    fn poll(&mut self, ctx: &mut Ctx) {
        let mut sink: Vec<rpc::Oneway> = Vec::new();
        let _ = self.pump_write_behind(ctx, &mut sink);
        if self.write_behind.is_none() && self.subscribed {
            self.drain_mailbox(ctx, &mut sink);
            // Strays for other services found during a poll cannot be
            // routed from here; the runtime's pump drains the mailbox
            // itself, so this path only runs for standalone proxies.
        }
    }

    fn detach(&mut self, ctx: &mut Ctx) {
        // Flush asynchronous writes before tearing down: detach is the
        // durability point of write-behind mode.
        let mut sink: Vec<rpc::Oneway> = Vec::new();
        let _ = self.flush_write_behind(ctx, &mut sink);
        let _ = self.unsubscribe(ctx);
        self.clear();
    }

    fn stats(&self) -> ProxyStats {
        let mut s = self.stats;
        if let Some(eng) = &self.bulk {
            s.bulk_spills = eng.spills;
            s.bulk_resolves = eng.resolves;
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use std::time::Duration;

    use proptest::prelude::*;
    use simnet::{NodeId, PortId};

    use super::*;
    use crate::spec::Coherence;

    /// Builds a proxy without a simulation: the cache bookkeeping
    /// (insert / lookup / invalidate_tag) never touches the network.
    fn bare_proxy(capacity: usize, coherence: Coherence) -> CachingProxy {
        CachingProxy {
            service: "svc".into(),
            rpc: RpcClient::new(Endpoint::new(NodeId(0), PortId(1))),
            ns: NameClient::new(Endpoint::new(NodeId(0), PortId(2))),
            iface: InterfaceDesc::new("svc", []),
            params: CachingParams {
                coherence,
                capacity,
            },
            subscribed: false,
            cache: HashMap::new(),
            order: VecDeque::new(),
            len: 0,
            write_behind: None,
            bulk: None,
            stats: ProxyStats::default(),
        }
    }

    fn live_entries(p: &CachingProxy) -> usize {
        p.cache.values().map(HashMap::len).sum()
    }

    /// Regression: before the fix, every expire-then-reinsert cycle and
    /// every tag invalidation left stale pairs in the eviction queue, so
    /// `order` grew without bound while the cache stayed tiny.
    #[test]
    fn order_queue_stays_bounded_under_expiry_and_invalidation() {
        let lease = Duration::from_millis(1);
        let mut p = bare_proxy(8, Coherence::Lease(lease));
        let mut now = SimTime::ZERO;
        for round in 0..1000u64 {
            let key = CachingProxy::cache_key("get", &Value::U64(round % 4));
            p.insert("t".into(), key.clone(), Value::U64(round), now);
            // Jump past the lease so the next lookup expires the entry.
            now = now + lease + Duration::from_millis(1);
            assert_eq!(p.lookup("t", &key, now), None, "entry must have expired");
            if round % 7 == 0 {
                p.invalidate_tag("t");
            }
            assert!(
                p.order_len() <= p.params.capacity + p.cache_len(),
                "round {round}: order queue leaked to {} (capacity {} + live {})",
                p.order_len(),
                p.params.capacity,
                p.cache_len()
            );
        }
    }

    /// Regression: removing the last expired entry of a tag used to
    /// leave an empty per-tag HashMap behind forever.
    #[test]
    fn expiry_removes_empty_tag_maps() {
        let lease = Duration::from_millis(1);
        let mut p = bare_proxy(8, Coherence::Lease(lease));
        for i in 0..50u64 {
            let key = CachingProxy::cache_key("get", &Value::U64(i));
            p.insert(format!("tag{i}"), key.clone(), Value::U64(i), SimTime::ZERO);
            let later = SimTime::ZERO + lease + Duration::from_millis(1);
            assert_eq!(p.lookup(&format!("tag{i}"), &key, later), None);
        }
        assert_eq!(p.cache_len(), 0);
        assert!(
            p.cache.is_empty(),
            "{} empty tag maps leaked",
            p.cache.len()
        );
    }

    #[derive(Debug, Clone)]
    enum CacheOp {
        Insert(u8, u8),
        Lookup(u8),
        InvalidateTag(u8),
        InvalidateAll,
        Advance(u8),
        Clear,
    }

    fn arb_ops() -> impl Strategy<Value = Vec<CacheOp>> {
        proptest::collection::vec(
            prop_oneof![
                (any::<u8>(), any::<u8>()).prop_map(|(t, k)| CacheOp::Insert(t % 5, k % 16)),
                any::<u8>().prop_map(|k| CacheOp::Lookup(k % 16)),
                any::<u8>().prop_map(|t| CacheOp::InvalidateTag(t % 5)),
                Just(CacheOp::InvalidateAll),
                any::<u8>().prop_map(CacheOp::Advance),
                Just(CacheOp::Clear),
            ],
            1..200,
        )
    }

    proptest! {
        /// Under any interleaving of inserts, invalidations, expiries
        /// and clears: `cache_len()` equals the number of live entries,
        /// the capacity is respected, and the eviction queue stays
        /// O(capacity + live entries).
        #[test]
        fn bookkeeping_invariants_hold(ops in arb_ops(), capacity in 1usize..12) {
            let lease = Duration::from_millis(2);
            let mut p = bare_proxy(capacity, Coherence::Lease(lease));
            let mut now = SimTime::ZERO;
            for op in ops {
                match op {
                    CacheOp::Insert(t, k) => {
                        let key = CachingProxy::cache_key("get", &Value::U64(k as u64));
                        p.insert(format!("t{t}"), key, Value::U64(k as u64), now);
                    }
                    CacheOp::Lookup(k) => {
                        // Sweep every tag so expiry can fire anywhere.
                        let key = CachingProxy::cache_key("get", &Value::U64(k as u64));
                        for t in 0..5 {
                            let _ = p.lookup(&format!("t{t}"), &key, now);
                        }
                    }
                    CacheOp::InvalidateTag(t) => p.invalidate_tag(&format!("t{t}")),
                    CacheOp::InvalidateAll => p.invalidate_tag("*"),
                    CacheOp::Advance(ms) => now += Duration::from_millis(ms as u64 % 5),
                    CacheOp::Clear => p.clear(),
                }
                prop_assert_eq!(
                    p.cache_len(),
                    live_entries(&p),
                    "len counter diverged from live entries"
                );
                prop_assert!(p.cache_len() <= p.params.capacity);
                prop_assert!(
                    p.order_len() <= p.params.capacity + p.cache_len(),
                    "order queue unbounded: {} > {} + {}",
                    p.order_len(), p.params.capacity, p.cache_len()
                );
            }
        }
    }
}
