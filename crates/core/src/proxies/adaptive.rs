//! The adaptive proxy: switch strategy to match the access pattern.
//!
//! Experiment E9's subject. The proxy watches a sliding window of
//! invocations; when the read fraction rises above `enable_at` it turns
//! caching on (subscribing for invalidations), and when it falls below
//! `disable_at` it turns caching off again (unsubscribing and dropping
//! the cache). The hysteresis gap prevents flapping on noisy workloads.
//!
//! From the client's point of view nothing ever changes — which is the
//! paper's encapsulation claim in its sharpest form: even the *dynamic*
//! choice of distribution strategy is private to the service side of the
//! interface.

use std::collections::VecDeque;

use rpc::RpcError;
use simnet::{Ctx, Endpoint};
use wire::Value;

use super::caching::CachingProxy;
use crate::interface::{InterfaceDesc, OpKind};
use crate::proxy::{OnewaySink, Proxy, ProxyStats};
use crate::spec::AdaptiveParams;

/// A proxy that toggles between stub and caching behaviour based on the
/// observed read/write mix.
#[derive(Debug)]
pub struct AdaptiveProxy {
    inner: CachingProxy,
    iface: InterfaceDesc,
    params: AdaptiveParams,
    window: VecDeque<bool>, // true = read
    reads_in_window: usize,
    caching_on: bool,
    switches: u64,
}

impl AdaptiveProxy {
    /// Creates the proxy; starts in stub mode (no cache, no
    /// subscription) until the workload proves read-heavy.
    ///
    /// # Errors
    ///
    /// Any [`RpcError`] from constructing the inner proxy.
    pub fn bind(
        ctx: &mut Ctx,
        service: impl Into<String>,
        server: Endpoint,
        ns: Endpoint,
        iface: InterfaceDesc,
        params: AdaptiveParams,
    ) -> Result<AdaptiveProxy, RpcError> {
        // Start unsubscribed regardless of the caching params' coherence:
        // we subscribe only when caching turns on.
        let mut caching = params.caching.clone();
        caching.coherence = crate::spec::Coherence::Lease(std::time::Duration::ZERO);
        let mut inner = CachingProxy::bind(ctx, service, server, ns, iface.clone(), caching)?;
        // Restore the real parameters for when caching turns on.
        inner_set_params(&mut inner, &params);
        Ok(AdaptiveProxy {
            inner,
            iface,
            params,
            window: VecDeque::new(),
            reads_in_window: 0,
            caching_on: false,
            switches: 0,
        })
    }

    /// Whether caching is currently enabled.
    pub fn is_caching(&self) -> bool {
        self.caching_on
    }

    /// Number of strategy switches so far.
    pub fn switches(&self) -> u64 {
        self.switches
    }

    /// Current read fraction over the sliding window (0 when empty).
    pub fn read_fraction(&self) -> f64 {
        if self.window.is_empty() {
            0.0
        } else {
            self.reads_in_window as f64 / self.window.len() as f64
        }
    }

    fn record(&mut self, is_read: bool) {
        self.window.push_back(is_read);
        if is_read {
            self.reads_in_window += 1;
        }
        while self.window.len() > self.params.window {
            if self.window.pop_front() == Some(true) {
                self.reads_in_window -= 1;
            }
        }
    }

    fn maybe_switch(&mut self, ctx: &mut Ctx) {
        // Wait for a meaningful sample before the first switch.
        if self.window.len() < self.params.window / 2 {
            return;
        }
        let frac = self.read_fraction();
        if !self.caching_on && frac >= self.params.enable_at {
            let ready = if self.params.caching.coherence.subscribes() {
                self.inner.subscribe(ctx).is_ok()
            } else {
                true // lease-only coherence needs no server cooperation
            };
            if ready {
                self.caching_on = true;
                self.switches += 1;
            }
        } else if self.caching_on && frac <= self.params.disable_at {
            let _ = self.inner.unsubscribe(ctx);
            self.inner.clear();
            self.caching_on = false;
            self.switches += 1;
        }
    }
}

/// Applies the adaptive proxy's *target* caching parameters to the inner
/// proxy (coherence mode used while caching is enabled).
fn inner_set_params(inner: &mut CachingProxy, params: &AdaptiveParams) {
    inner.set_params(params.caching.clone());
}

impl Proxy for AdaptiveProxy {
    fn service(&self) -> &str {
        self.inner.service()
    }

    fn invoke(
        &mut self,
        ctx: &mut Ctx,
        op: &str,
        args: Value,
        strays: &mut dyn OnewaySink,
    ) -> Result<Value, RpcError> {
        let is_read = matches!(self.iface.op(op), Some(d) if d.kind == OpKind::Read);
        self.record(is_read);
        self.maybe_switch(ctx);
        if self.caching_on {
            self.inner.invoke(ctx, op, args, strays)
        } else {
            self.inner.invoke_nocache(ctx, op, args, strays)
        }
    }

    fn on_oneway(&mut self, ctx: &mut Ctx, oneway: &rpc::Oneway) {
        self.inner.on_oneway(ctx, oneway);
    }

    fn poll(&mut self, ctx: &mut Ctx) {
        self.inner.poll(ctx);
    }

    fn detach(&mut self, ctx: &mut Ctx) {
        self.inner.detach(ctx);
    }

    fn stats(&self) -> ProxyStats {
        let mut s = self.inner.stats();
        s.strategy_switches = self.switches;
        s
    }
}
