//! A client session: the runtime and its simulation context, bundled.
//!
//! Every client-side operation needs the same two-object pair — the
//! [`ClientRuntime`] holding the proxies and the [`Ctx`] the process
//! runs in. Threading `(rt, ctx)` through every typed-client method
//! doubled each signature and invited argument-order slips.
//! [`Session`] borrows both once; typed clients (and application code)
//! take a single `&mut Session<'_>`.
//!
//! `Session` is the *blocking* face of the session engine: every method
//! forwards through [`ClientRuntime`] to
//! [`SessionCore`](crate::SessionCore)'s blocking surface. Poll-driven
//! processes use the same core's non-blocking surface
//! (`bind_async`/`invoke_async`) instead — see the
//! [`session_core`](crate::SessionCore) docs and `DESIGN.md` §8.
//!
//! ```
//! use simnet::{Simulation, NetworkConfig, NodeId};
//! use naming::spawn_name_server;
//! use proxy_core::{ServiceBuilder, ClientRuntime, Session, ProxySpec};
//! # use proxy_core::{InterfaceDesc, OpDesc, ServiceObject};
//! # use rpc::RemoteError;
//! # use wire::Value;
//! # #[derive(Clone)]
//! # struct Echo;
//! # impl ServiceObject for Echo {
//! #     fn interface(&self) -> InterfaceDesc {
//! #         InterfaceDesc::new("echo", [OpDesc::read("echo", "v")])
//! #     }
//! #     fn dispatch(&mut self, _: &mut simnet::Ctx, _: &str, args: &Value)
//! #         -> Result<Value, RemoteError> { Ok(args.clone()) }
//! # }
//!
//! let mut sim = Simulation::new(NetworkConfig::lan(), 7);
//! let ns = spawn_name_server(&sim, NodeId(0));
//! ServiceBuilder::new("echo")
//!     .spec(ProxySpec::Stub)
//!     .object(|| Box::new(Echo))
//!     .spawn(&sim, NodeId(1), ns);
//! sim.spawn("client", NodeId(2), move |ctx| {
//!     let mut rt = ClientRuntime::new(ns);
//!     let mut session = Session::new(&mut rt, ctx);
//!     let h = session.bind("echo").unwrap();
//!     let v = session.invoke(h, "echo", Value::str("hi")).unwrap();
//!     assert_eq!(v, Value::str("hi"));
//!     session.shutdown();
//! });
//! sim.run();
//! ```

use simnet::Ctx;
use wire::Value;

use rpc::RpcError;

use crate::proxy::ProxyStats;
use crate::runtime::ClientRuntime;
use crate::session_core::ProxyHandle;

/// A borrowed `(runtime, context)` pair — the unit every client-side
/// call actually operates on.
///
/// `Session` owns nothing: it reborrows a [`ClientRuntime`] and the
/// process [`Ctx`] for as long as the client needs them together, and
/// forwards to the runtime's methods. Construct it once at the top of a
/// client body and pass `&mut session` everywhere a typed client or
/// helper used to take the `(rt, ctx)` pair.
#[derive(Debug)]
pub struct Session<'a> {
    rt: &'a mut ClientRuntime,
    ctx: &'a mut Ctx,
}

impl<'a> Session<'a> {
    /// Bundles a runtime and a context into a session.
    pub fn new(rt: &'a mut ClientRuntime, ctx: &'a mut Ctx) -> Session<'a> {
        Session { rt, ctx }
    }

    /// Binds to `service`, waiting up to 100ms of virtual time for it to
    /// register.
    ///
    /// # Errors
    ///
    /// See [`crate::Binder::bind_wait`].
    pub fn bind(&mut self, service: &str) -> Result<ProxyHandle, RpcError> {
        self.rt.bind(self.ctx, service)
    }

    /// Invokes an operation through a bound proxy.
    ///
    /// See [`ClientRuntime::invoke`] for span and metrics behaviour.
    ///
    /// # Errors
    ///
    /// Any [`RpcError`] from the proxy.
    ///
    /// # Panics
    ///
    /// Panics if the handle did not come from this session's runtime.
    pub fn invoke(
        &mut self,
        handle: ProxyHandle,
        op: &str,
        args: Value,
    ) -> Result<Value, RpcError> {
        self.rt.invoke(self.ctx, handle, op, args)
    }

    /// Hosts an object directly in this context under `service` (the
    /// same-context fast path). See [`ClientRuntime::host_local`].
    pub fn host_local(
        &mut self,
        service: impl Into<String>,
        object: Box<dyn crate::ServiceObject>,
    ) -> ProxyHandle {
        self.rt.host_local(service, object)
    }

    /// Drains the mailbox, routes notifications and polls proxies. See
    /// [`ClientRuntime::pump`].
    pub fn pump(&mut self) {
        self.rt.pump(self.ctx);
    }

    /// Stats for one proxy.
    ///
    /// # Panics
    ///
    /// Panics if the handle did not come from this session's runtime.
    pub fn stats(&self, handle: ProxyHandle) -> ProxyStats {
        self.rt.stats(handle)
    }

    /// Cleanly detaches one proxy.
    ///
    /// # Panics
    ///
    /// Panics if the handle did not come from this session's runtime.
    pub fn unbind(&mut self, handle: ProxyHandle) {
        self.rt.unbind(self.ctx, handle);
    }

    /// Detaches every proxy (call before client exit).
    pub fn shutdown(&mut self) {
        self.rt.shutdown(self.ctx);
    }

    /// The simulation context (for time, randomness, raw messaging).
    pub fn ctx(&mut self) -> &mut Ctx {
        self.ctx
    }

    /// The underlying runtime (to register custom proxies, etc.).
    pub fn runtime(&mut self) -> &mut ClientRuntime {
        self.rt
    }

    /// Splits the session back into its parts, for code paths that need
    /// both with independent lifetimes.
    pub fn parts(&mut self) -> (&mut ClientRuntime, &mut Ctx) {
        (self.rt, self.ctx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{InterfaceDesc, OpDesc, ServiceObject};
    use rpc::RemoteError;
    use simnet::{NetworkConfig, NodeId, Simulation};

    #[derive(Clone)]
    struct Echo;
    impl ServiceObject for Echo {
        fn interface(&self) -> InterfaceDesc {
            InterfaceDesc::new("echo", [OpDesc::read("echo", "v")])
        }
        fn dispatch(
            &mut self,
            _ctx: &mut Ctx,
            _op: &str,
            args: &Value,
        ) -> Result<Value, RemoteError> {
            Ok(args.clone())
        }
    }

    #[test]
    fn session_drives_a_local_object() {
        let mut sim = Simulation::new(NetworkConfig::lan(), 3);
        let ns = naming::spawn_name_server(&sim, NodeId(0));
        sim.spawn("client", NodeId(1), move |ctx| {
            let mut rt = ClientRuntime::new(ns);
            let mut session = Session::new(&mut rt, ctx);
            let h = session.host_local("echo", Box::new(Echo));
            let v = session.invoke(h, "echo", Value::str("x")).unwrap();
            assert_eq!(v, Value::str("x"));
            assert_eq!(session.stats(h).invocations, 1);
            session.pump();
            session.unbind(h);
            session.shutdown();
        });
        sim.run();
    }
}
