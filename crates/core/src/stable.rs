//! Stable storage and checkpointing: crash-survivable service state.
//!
//! The system the paper came from (SOS) treated objects as persistent;
//! this module supplies the minimal machinery for that: a per-node
//! *stable store* (the simulated disk) into which a [`crate::ServiceServer`]
//! periodically checkpoints its object's snapshot, and a recovery path
//! that re-instantiates the object from the last checkpoint after a
//! crash.
//!
//! Semantics are deliberately classic checkpoint/restart: writes since
//! the last checkpoint are lost on a crash; the name service is
//! re-registered on recovery (bumping the binding generation), and
//! proxies recover by re-resolving after their calls time out — no
//! client code changes, which is the proxy principle applied to
//! *failure* transparency.

use std::collections::HashMap;
use std::sync::Arc;

use parking_lot::Mutex;
use simnet::NodeId;
use wire::Value;

/// A handle to the simulation's stable storage: one logical disk per
/// node, addressed by `(node, key)`. Cloning shares the storage.
///
/// Stable storage survives process crashes by construction (it lives
/// outside every simulated process); it does *not* survive dropping the
/// `Simulation`, mirroring a disk that outlives processes but not the
/// machine room.
#[derive(Debug, Clone, Default)]
pub struct StableStore {
    inner: Arc<Mutex<HashMap<(NodeId, String), Value>>>,
}

impl StableStore {
    /// Creates empty stable storage.
    pub fn new() -> StableStore {
        StableStore::default()
    }

    /// Durably saves `value` under `(node, key)`, replacing any previous
    /// checkpoint.
    pub fn save(&self, node: NodeId, key: &str, value: Value) {
        self.inner.lock().insert((node, key.to_owned()), value);
    }

    /// Loads the last checkpoint for `(node, key)`, if any.
    pub fn load(&self, node: NodeId, key: &str) -> Option<Value> {
        self.inner.lock().get(&(node, key.to_owned())).cloned()
    }

    /// Removes a checkpoint; true if one existed.
    pub fn remove(&self, node: NodeId, key: &str) -> bool {
        self.inner.lock().remove(&(node, key.to_owned())).is_some()
    }

    /// Number of checkpoints currently stored (all nodes).
    pub fn len(&self) -> usize {
        self.inner.lock().len()
    }

    /// Whether the store holds no checkpoints.
    pub fn is_empty(&self) -> bool {
        self.inner.lock().is_empty()
    }
}

/// Checkpointing policy for a service.
#[derive(Debug, Clone)]
pub struct CheckpointPolicy {
    /// Shared stable storage (the node's disk).
    pub store: StableStore,
    /// Take a checkpoint after this many successful writes.
    pub every_writes: u64,
}

impl CheckpointPolicy {
    /// Checkpoints after every `every_writes` writes.
    ///
    /// # Panics
    ///
    /// Panics if `every_writes` is zero.
    pub fn every(store: StableStore, every_writes: u64) -> CheckpointPolicy {
        assert!(every_writes > 0, "checkpoint interval must be positive");
        CheckpointPolicy {
            store,
            every_writes,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn save_load_roundtrip() {
        let s = StableStore::new();
        assert!(s.is_empty());
        s.save(NodeId(1), "svc", Value::U64(7));
        assert_eq!(s.load(NodeId(1), "svc"), Some(Value::U64(7)));
        assert_eq!(s.load(NodeId(2), "svc"), None, "disks are per node");
        assert_eq!(s.load(NodeId(1), "other"), None);
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn save_replaces() {
        let s = StableStore::new();
        s.save(NodeId(1), "svc", Value::U64(1));
        s.save(NodeId(1), "svc", Value::U64(2));
        assert_eq!(s.load(NodeId(1), "svc"), Some(Value::U64(2)));
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn remove_reports_presence() {
        let s = StableStore::new();
        s.save(NodeId(1), "svc", Value::Null);
        assert!(s.remove(NodeId(1), "svc"));
        assert!(!s.remove(NodeId(1), "svc"));
        assert!(s.is_empty());
    }

    #[test]
    fn clones_share_storage() {
        let a = StableStore::new();
        let b = a.clone();
        a.save(NodeId(3), "x", Value::Bool(true));
        assert_eq!(b.load(NodeId(3), "x"), Some(Value::Bool(true)));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_interval_rejected() {
        let _ = CheckpointPolicy::every(StableStore::new(), 0);
    }
}
