//! The service context: a process hosting objects behind the proxy
//! protocol.
//!
//! A [`ServiceServer`] is the paper's *server context*: it owns a
//! [`ServiceObject`], registers it with the name service together with
//! the [`ProxySpec`] its clients must run, and then serves the proxy
//! protocol — ordinary operations, plus the system operations that smart
//! proxies rely on (interface fetch, invalidation subscriptions,
//! checkout/checkin for migration).

use naming::NameClient;
use rpc::{
    endpoint_from_value, send_oneway, ErrorCode, RemoteError, Request, RpcError, RpcServer,
    ServeStats, Served,
};
use simnet::{Ctx, Endpoint, NodeId, Simulation};
use wire::Value;

use crate::interface::InterfaceDesc;
use crate::object::{FactoryRegistry, ServiceObject};
use crate::proxy::protocol;
use crate::spec::ProxySpec;
use crate::stable::CheckpointPolicy;

/// Counters accumulated by a service context.
///
/// Canonical definition lives in the `obs` crate; each service keeps
/// its own copy here, and the simulation-wide [`obs::MetricsRegistry`]
/// snapshots the same counters per service.
pub use obs::ServerStats;

/// Everything but the RPC machinery, so the dispatch closure can borrow
/// it while [`RpcServer`] is borrowed separately.
struct Core {
    name: String,
    spec: ProxySpec,
    iface: InterfaceDesc,
    /// `None` while the object is checked out to a client context.
    object: Option<Box<dyn ServiceObject>>,
    holder: Option<Endpoint>,
    subscribers: Vec<Endpoint>,
    factories: Option<FactoryRegistry>,
    checkpoint: Option<CheckpointPolicy>,
    writes_since_checkpoint: u64,
    stats: ServerStats,
}

impl Core {
    fn send_recall(&mut self, ctx: &Ctx) {
        if let Some(holder) = self.holder {
            send_oneway(
                ctx,
                holder,
                protocol::MSG_RECALL,
                Value::record([("svc", Value::str(self.name.clone()))]),
            );
            self.stats.recalls_sent += 1;
        }
    }

    fn broadcast_invalidation(&mut self, ctx: &Ctx, op: &str, args: &Value, writer: Endpoint) {
        let tag = match self.iface.op(op) {
            Some(desc) => desc.tag(args),
            None => "*".to_owned(),
        };
        for sub in &self.subscribers {
            if *sub == writer {
                continue; // the writer invalidated (or updated) locally
            }
            send_oneway(
                ctx,
                *sub,
                protocol::MSG_INVALIDATE,
                Value::record([
                    ("svc", Value::str(self.name.clone())),
                    ("tag", Value::str(tag.clone())),
                ]),
            );
            self.stats.invalidations_sent += 1;
        }
    }

    /// Writes a checkpoint to this node's stable storage if the policy
    /// says it is due.
    fn maybe_checkpoint(&mut self, ctx: &Ctx) {
        let Some(policy) = &self.checkpoint else {
            return;
        };
        self.writes_since_checkpoint += 1;
        if self.writes_since_checkpoint < policy.every_writes {
            return;
        }
        if let Some(obj) = &self.object {
            if let Ok(snapshot) = obj.snapshot() {
                policy.store.save(ctx.node(), &self.name, snapshot);
                self.stats.checkpoints += 1;
                self.writes_since_checkpoint = 0;
            }
        }
    }

    fn execute(&mut self, ctx: &mut Ctx, req: &Request) -> Result<Value, RemoteError> {
        match req.op.as_str() {
            protocol::OP_IFACE => Ok(self.iface.to_value()),
            protocol::OP_PING => Ok(Value::Null),
            protocol::OP_SUBSCRIBE => {
                let cb = endpoint_from_value(
                    req.args
                        .get("cb")
                        .ok_or_else(|| RemoteError::new(ErrorCode::BadArgs, "missing cb"))?,
                )
                .map_err(|e| RemoteError::new(ErrorCode::BadArgs, e.to_string()))?;
                if !self.subscribers.contains(&cb) {
                    self.subscribers.push(cb);
                }
                Ok(Value::Null)
            }
            protocol::OP_UNSUBSCRIBE => {
                let cb = endpoint_from_value(
                    req.args
                        .get("cb")
                        .ok_or_else(|| RemoteError::new(ErrorCode::BadArgs, "missing cb"))?,
                )
                .map_err(|e| RemoteError::new(ErrorCode::BadArgs, e.to_string()))?;
                self.subscribers.retain(|s| *s != cb);
                Ok(Value::Null)
            }
            protocol::OP_SNAPSHOT => match &self.object {
                Some(obj) => obj.snapshot(),
                None => Err(RemoteError::new(
                    ErrorCode::Unavailable,
                    "object is checked out",
                )),
            },
            protocol::OP_CHECKOUT => match self.object.take() {
                Some(obj) => match obj.snapshot() {
                    Ok(state) => {
                        self.holder = Some(req.reply_to);
                        self.stats.checkouts += 1;
                        ctx.trace(simnet::TraceEvent::Migrated {
                            service: self.name.clone(),
                            from: ctx.endpoint(),
                            to: req.reply_to,
                            span: ctx.current_span(),
                        });
                        Ok(Value::record([("state", state)]))
                    }
                    Err(e) => {
                        self.object = Some(obj);
                        Err(e)
                    }
                },
                None => {
                    // Someone else holds it: ask for it back, tell the
                    // caller to retry later.
                    self.send_recall(ctx);
                    self.stats.unavailable += 1;
                    Err(RemoteError::new(
                        ErrorCode::Unavailable,
                        "object is checked out elsewhere",
                    ))
                }
            },
            protocol::OP_CHECKIN => {
                let state = req
                    .args
                    .get("state")
                    .ok_or_else(|| RemoteError::new(ErrorCode::BadArgs, "missing state"))?;
                let factories = self.factories.as_ref().ok_or_else(|| {
                    RemoteError::new(
                        ErrorCode::Unavailable,
                        "service cannot restore objects (no factories)",
                    )
                })?;
                let obj = factories.create(&self.iface.type_name, state)?;
                self.object = Some(obj);
                self.holder = None;
                self.stats.checkins += 1;
                ctx.trace(simnet::TraceEvent::Migrated {
                    service: self.name.clone(),
                    from: req.reply_to,
                    to: ctx.endpoint(),
                    span: ctx.current_span(),
                });
                Ok(Value::Null)
            }
            op if op.starts_with('_') => Err(RemoteError::new(ErrorCode::NoSuchOp, op.to_owned())),
            op => match &mut self.object {
                None => {
                    self.send_recall(ctx);
                    self.stats.unavailable += 1;
                    Err(RemoteError::new(
                        ErrorCode::Unavailable,
                        "object is checked out; retry shortly",
                    ))
                }
                Some(obj) => {
                    let result = obj.dispatch(ctx, op, &req.args);
                    self.stats.dispatched += 1;
                    if result.is_ok() && self.iface.is_write(op) {
                        self.stats.writes += 1;
                        self.broadcast_invalidation(ctx, op, &req.args, req.reply_to);
                        self.maybe_checkpoint(ctx);
                    }
                    result
                }
            },
        }
    }
}

/// A process hosting one service object behind the proxy protocol.
pub struct ServiceServer {
    core: Core,
    rpc: RpcServer,
}

impl std::fmt::Debug for ServiceServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServiceServer")
            .field("name", &self.core.name)
            .field("spec", &self.core.spec)
            .field("checked_out", &self.core.object.is_none())
            .field("subscribers", &self.core.subscribers.len())
            .finish()
    }
}

impl ServiceServer {
    /// Creates a server hosting `object` under `name`, exporting `spec`
    /// as the proxy its clients must run.
    pub fn new(
        name: impl Into<String>,
        object: Box<dyn ServiceObject>,
        spec: ProxySpec,
    ) -> ServiceServer {
        let iface = object.interface();
        ServiceServer {
            core: Core {
                name: name.into(),
                spec,
                iface,
                object: Some(object),
                holder: None,
                subscribers: Vec::new(),
                factories: None,
                checkpoint: None,
                writes_since_checkpoint: 0,
                stats: ServerStats::default(),
            },
            rpc: RpcServer::new(),
        }
    }

    /// Supplies the factory registry needed to restore checked-in
    /// objects (required for [`ProxySpec::Migratory`] services).
    pub fn with_factories(mut self, factories: FactoryRegistry) -> ServiceServer {
        self.core.factories = Some(factories);
        self
    }

    /// Enables periodic checkpointing of the object's snapshot to the
    /// node's stable storage. Combine with [`ServiceBuilder::recovered`]
    /// to survive crashes.
    pub fn with_checkpointing(mut self, policy: CheckpointPolicy) -> ServiceServer {
        self.core.checkpoint = Some(policy);
        self
    }

    /// The service name.
    pub fn name(&self) -> &str {
        &self.core.name
    }

    /// The hosted object's interface.
    pub fn interface(&self) -> &InterfaceDesc {
        &self.core.iface
    }

    /// The binding metadata published to the name service:
    /// `{spec, iface}`.
    pub fn meta(&self) -> Value {
        Value::record([
            ("spec", self.core.spec.to_value()),
            ("iface", self.core.iface.to_value()),
        ])
    }

    /// Current server counters.
    pub fn stats(&self) -> ServerStats {
        self.core.stats
    }

    /// Transport-level counters (duplicate suppression etc.).
    pub fn rpc_stats(&self) -> ServeStats {
        self.rpc.stats
    }

    /// Registers this service with the name server at `ns`.
    ///
    /// # Errors
    ///
    /// Any [`RpcError`] from the registration call.
    pub fn register(&self, ctx: &mut Ctx, ns: Endpoint) -> Result<(), RpcError> {
        let mut nc = NameClient::new(ns);
        nc.register(ctx, &self.core.name, ctx.endpoint(), self.meta())?;
        Ok(())
    }

    /// Processes one incoming datagram (for custom server loops).
    pub fn handle_msg(&mut self, ctx: &mut Ctx, msg: &simnet::Message) -> Served {
        let core = &mut self.core;
        let served = self.rpc.handle(ctx, msg, |ctx, req| core.execute(ctx, req));
        // Publish the latest counters so the unified run report always
        // reflects this service, even if the process never exits.
        ctx.obs().set_server_stats(&self.core.name, self.core.stats);
        served
    }

    /// Registers with the name service and serves until shutdown.
    ///
    /// # Panics
    ///
    /// Panics if registration fails for a reason other than simulation
    /// shutdown.
    pub fn run(mut self, ctx: &mut Ctx, ns: Endpoint) {
        match self.register(ctx, ns) {
            Ok(()) => {}
            Err(RpcError::Stopped) => return,
            Err(e) => panic!("service `{}` failed to register: {e}", self.core.name),
        }
        while let Ok(msg) = ctx.recv() {
            self.handle_msg(ctx, &msg);
        }
    }
}

/// Declarative spawning of a service process: one builder covering the
/// plain, factory-equipped, checkpointing and crash-recovering variants
/// that used to be separate `spawn_service*` free functions.
///
/// ```no_run
/// # use proxy_core::{ServiceBuilder, ProxySpec, FactoryRegistry};
/// # use simnet::{Simulation, NetworkConfig, NodeId, Endpoint, PortId};
/// # fn demo(sim: &Simulation, ns: Endpoint, factories: FactoryRegistry,
/// #         make: impl FnOnce() -> Box<dyn proxy_core::ServiceObject> + Send + 'static) {
/// let endpoint = ServiceBuilder::new("kv")
///     .spec(ProxySpec::Migratory { threshold: 4 })
///     .factories(factories)
///     .object(make)
///     .spawn(sim, NodeId(1), ns);
/// # }
/// ```
pub struct ServiceBuilder {
    name: String,
    spec: ProxySpec,
    make_object: Option<Box<dyn FnOnce() -> Box<dyn ServiceObject> + Send>>,
    factories: Option<FactoryRegistry>,
    checkpoint: Option<CheckpointPolicy>,
    recover: bool,
}

impl std::fmt::Debug for ServiceBuilder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServiceBuilder")
            .field("name", &self.name)
            .field("spec", &self.spec)
            .finish_non_exhaustive()
    }
}

impl ServiceBuilder {
    /// Starts a builder for a service registered as `name`. The proxy
    /// spec defaults to [`ProxySpec::Stub`].
    pub fn new(name: impl Into<String>) -> ServiceBuilder {
        ServiceBuilder {
            name: name.into(),
            spec: ProxySpec::Stub,
            make_object: None,
            factories: None,
            checkpoint: None,
            recover: false,
        }
    }

    /// The proxy implementation clients of this service must run.
    pub fn spec(mut self, spec: ProxySpec) -> ServiceBuilder {
        self.spec = spec;
        self
    }

    /// The hosted object, produced inside the service process (the
    /// closure runs on the service's simulated node). Required.
    pub fn object(
        mut self,
        make: impl FnOnce() -> Box<dyn ServiceObject> + Send + 'static,
    ) -> ServiceBuilder {
        self.make_object = Some(Box::new(make));
        self
    }

    /// Factory registry for restoring checked-in object state (required
    /// for [`ProxySpec::Migratory`] services and for recovery).
    pub fn factories(mut self, factories: FactoryRegistry) -> ServiceBuilder {
        self.factories = Some(factories);
        self
    }

    /// Checkpoints the object's snapshot to the node's stable storage
    /// under `policy`.
    pub fn checkpointing(mut self, policy: CheckpointPolicy) -> ServiceBuilder {
        self.checkpoint = Some(policy);
        self
    }

    /// Checkpoints under `policy` *and* recovers from the node's last
    /// checkpoint at spawn, if one exists (the [`object`] closure then
    /// only supplies the cold-start default). Re-registering bumps the
    /// naming generation, so stub proxies whose calls time out against
    /// the dead incarnation transparently re-resolve to the new one.
    /// Requires [`factories`].
    ///
    /// [`object`]: ServiceBuilder::object
    /// [`factories`]: ServiceBuilder::factories
    pub fn recovered(mut self, policy: CheckpointPolicy) -> ServiceBuilder {
        self.checkpoint = Some(policy);
        self.recover = true;
        self
    }

    /// Spawns the service process on `node`, registered with the name
    /// server at `ns`. Returns the service's endpoint.
    ///
    /// # Panics
    ///
    /// Panics if no [`object`](ServiceBuilder::object) was supplied, or
    /// if [`recovered`](ServiceBuilder::recovered) was requested without
    /// [`factories`](ServiceBuilder::factories).
    pub fn spawn(self, sim: &Simulation, node: NodeId, ns: Endpoint) -> Endpoint {
        let ServiceBuilder {
            name,
            spec,
            make_object,
            factories,
            checkpoint,
            recover,
        } = self;
        let make_object = make_object
            .unwrap_or_else(|| panic!("service `{name}` spawned without an object closure"));
        assert!(
            !recover || factories.is_some(),
            "service `{name}`: recovery needs a factory registry to rebuild snapshots"
        );
        let label = format!("svc-{name}");
        sim.spawn(label, node, move |ctx| {
            let default = make_object();
            let object = match (&checkpoint, recover) {
                (Some(policy), true) => match policy.store.load(ctx.node(), &name) {
                    Some(snapshot) => factories
                        .as_ref()
                        .expect("checked above")
                        .create(&default.interface().type_name, &snapshot)
                        .unwrap_or(default),
                    None => default,
                },
                _ => default,
            };
            let mut server = ServiceServer::new(name, object, spec);
            if let Some(factories) = factories {
                server = server.with_factories(factories);
            }
            if let Some(policy) = checkpoint {
                server = server.with_checkpointing(policy);
            }
            server.run(ctx, ns);
        })
    }
}
