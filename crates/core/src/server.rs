//! The service context: a process hosting objects behind the proxy
//! protocol.
//!
//! A [`ServiceServer`] is the paper's *server context*: it owns a
//! [`ServiceObject`], registers it with the name service together with
//! the [`ProxySpec`] its clients must run, and then serves the proxy
//! protocol — ordinary operations, plus the system operations that smart
//! proxies rely on (interface fetch, invalidation subscriptions,
//! checkout/checkin for migration).

use naming::NameClient;
use rpc::{
    endpoint_from_value, send_oneway, ErrorCode, RemoteError, Request, RpcError, RpcServer,
    ServeStats, Served,
};
use simnet::{Ctx, Endpoint, NodeId, Simulation};
use wire::Value;

use crate::interface::InterfaceDesc;
use crate::object::{FactoryRegistry, ServiceObject};
use crate::proxy::protocol;
use crate::spec::ProxySpec;
use crate::stable::CheckpointPolicy;

/// Counters accumulated by a service context.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServerStats {
    /// Ordinary operations dispatched to the object.
    pub dispatched: u64,
    /// Of those, writes.
    pub writes: u64,
    /// Invalidation notifications pushed to subscribers.
    pub invalidations_sent: u64,
    /// Successful checkouts (object left this context).
    pub checkouts: u64,
    /// Successful checkins (object returned).
    pub checkins: u64,
    /// Recall notifications sent to the current holder.
    pub recalls_sent: u64,
    /// Requests refused because the object was checked out.
    pub unavailable: u64,
    /// Checkpoints written to stable storage.
    pub checkpoints: u64,
}

/// Everything but the RPC machinery, so the dispatch closure can borrow
/// it while [`RpcServer`] is borrowed separately.
struct Core {
    name: String,
    spec: ProxySpec,
    iface: InterfaceDesc,
    /// `None` while the object is checked out to a client context.
    object: Option<Box<dyn ServiceObject>>,
    holder: Option<Endpoint>,
    subscribers: Vec<Endpoint>,
    factories: Option<FactoryRegistry>,
    checkpoint: Option<CheckpointPolicy>,
    writes_since_checkpoint: u64,
    stats: ServerStats,
}

impl Core {
    fn send_recall(&mut self, ctx: &Ctx) {
        if let Some(holder) = self.holder {
            send_oneway(
                ctx,
                holder,
                protocol::MSG_RECALL,
                Value::record([("svc", Value::str(self.name.clone()))]),
            );
            self.stats.recalls_sent += 1;
        }
    }

    fn broadcast_invalidation(&mut self, ctx: &Ctx, op: &str, args: &Value, writer: Endpoint) {
        let tag = match self.iface.op(op) {
            Some(desc) => desc.tag(args),
            None => "*".to_owned(),
        };
        for sub in &self.subscribers {
            if *sub == writer {
                continue; // the writer invalidated (or updated) locally
            }
            send_oneway(
                ctx,
                *sub,
                protocol::MSG_INVALIDATE,
                Value::record([
                    ("svc", Value::str(self.name.clone())),
                    ("tag", Value::str(tag.clone())),
                ]),
            );
            self.stats.invalidations_sent += 1;
        }
    }

    /// Writes a checkpoint to this node's stable storage if the policy
    /// says it is due.
    fn maybe_checkpoint(&mut self, ctx: &Ctx) {
        let Some(policy) = &self.checkpoint else {
            return;
        };
        self.writes_since_checkpoint += 1;
        if self.writes_since_checkpoint < policy.every_writes {
            return;
        }
        if let Some(obj) = &self.object {
            if let Ok(snapshot) = obj.snapshot() {
                policy.store.save(ctx.node(), &self.name, snapshot);
                self.stats.checkpoints += 1;
                self.writes_since_checkpoint = 0;
            }
        }
    }

    fn execute(&mut self, ctx: &mut Ctx, req: &Request) -> Result<Value, RemoteError> {
        match req.op.as_str() {
            protocol::OP_IFACE => Ok(self.iface.to_value()),
            protocol::OP_PING => Ok(Value::Null),
            protocol::OP_SUBSCRIBE => {
                let cb = endpoint_from_value(
                    req.args
                        .get("cb")
                        .ok_or_else(|| RemoteError::new(ErrorCode::BadArgs, "missing cb"))?,
                )
                .map_err(|e| RemoteError::new(ErrorCode::BadArgs, e.to_string()))?;
                if !self.subscribers.contains(&cb) {
                    self.subscribers.push(cb);
                }
                Ok(Value::Null)
            }
            protocol::OP_UNSUBSCRIBE => {
                let cb = endpoint_from_value(
                    req.args
                        .get("cb")
                        .ok_or_else(|| RemoteError::new(ErrorCode::BadArgs, "missing cb"))?,
                )
                .map_err(|e| RemoteError::new(ErrorCode::BadArgs, e.to_string()))?;
                self.subscribers.retain(|s| *s != cb);
                Ok(Value::Null)
            }
            protocol::OP_SNAPSHOT => match &self.object {
                Some(obj) => obj.snapshot(),
                None => Err(RemoteError::new(
                    ErrorCode::Unavailable,
                    "object is checked out",
                )),
            },
            protocol::OP_CHECKOUT => match self.object.take() {
                Some(obj) => match obj.snapshot() {
                    Ok(state) => {
                        self.holder = Some(req.reply_to);
                        self.stats.checkouts += 1;
                        Ok(Value::record([("state", state)]))
                    }
                    Err(e) => {
                        self.object = Some(obj);
                        Err(e)
                    }
                },
                None => {
                    // Someone else holds it: ask for it back, tell the
                    // caller to retry later.
                    self.send_recall(ctx);
                    self.stats.unavailable += 1;
                    Err(RemoteError::new(
                        ErrorCode::Unavailable,
                        "object is checked out elsewhere",
                    ))
                }
            },
            protocol::OP_CHECKIN => {
                let state = req
                    .args
                    .get("state")
                    .ok_or_else(|| RemoteError::new(ErrorCode::BadArgs, "missing state"))?;
                let factories = self.factories.as_ref().ok_or_else(|| {
                    RemoteError::new(
                        ErrorCode::Unavailable,
                        "service cannot restore objects (no factories)",
                    )
                })?;
                let obj = factories.create(&self.iface.type_name, state)?;
                self.object = Some(obj);
                self.holder = None;
                self.stats.checkins += 1;
                Ok(Value::Null)
            }
            op if op.starts_with('_') => Err(RemoteError::new(ErrorCode::NoSuchOp, op.to_owned())),
            op => match &mut self.object {
                None => {
                    self.send_recall(ctx);
                    self.stats.unavailable += 1;
                    Err(RemoteError::new(
                        ErrorCode::Unavailable,
                        "object is checked out; retry shortly",
                    ))
                }
                Some(obj) => {
                    let result = obj.dispatch(ctx, op, &req.args);
                    self.stats.dispatched += 1;
                    if result.is_ok() && self.iface.is_write(op) {
                        self.stats.writes += 1;
                        self.broadcast_invalidation(ctx, op, &req.args, req.reply_to);
                        self.maybe_checkpoint(ctx);
                    }
                    result
                }
            },
        }
    }
}

/// A process hosting one service object behind the proxy protocol.
pub struct ServiceServer {
    core: Core,
    rpc: RpcServer,
}

impl std::fmt::Debug for ServiceServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServiceServer")
            .field("name", &self.core.name)
            .field("spec", &self.core.spec)
            .field("checked_out", &self.core.object.is_none())
            .field("subscribers", &self.core.subscribers.len())
            .finish()
    }
}

impl ServiceServer {
    /// Creates a server hosting `object` under `name`, exporting `spec`
    /// as the proxy its clients must run.
    pub fn new(
        name: impl Into<String>,
        object: Box<dyn ServiceObject>,
        spec: ProxySpec,
    ) -> ServiceServer {
        let iface = object.interface();
        ServiceServer {
            core: Core {
                name: name.into(),
                spec,
                iface,
                object: Some(object),
                holder: None,
                subscribers: Vec::new(),
                factories: None,
                checkpoint: None,
                writes_since_checkpoint: 0,
                stats: ServerStats::default(),
            },
            rpc: RpcServer::new(),
        }
    }

    /// Supplies the factory registry needed to restore checked-in
    /// objects (required for [`ProxySpec::Migratory`] services).
    pub fn with_factories(mut self, factories: FactoryRegistry) -> ServiceServer {
        self.core.factories = Some(factories);
        self
    }

    /// Enables periodic checkpointing of the object's snapshot to the
    /// node's stable storage. Combine with [`spawn_service_recovered`]
    /// to survive crashes.
    pub fn with_checkpointing(mut self, policy: CheckpointPolicy) -> ServiceServer {
        self.core.checkpoint = Some(policy);
        self
    }

    /// The service name.
    pub fn name(&self) -> &str {
        &self.core.name
    }

    /// The hosted object's interface.
    pub fn interface(&self) -> &InterfaceDesc {
        &self.core.iface
    }

    /// The binding metadata published to the name service:
    /// `{spec, iface}`.
    pub fn meta(&self) -> Value {
        Value::record([
            ("spec", self.core.spec.to_value()),
            ("iface", self.core.iface.to_value()),
        ])
    }

    /// Current server counters.
    pub fn stats(&self) -> ServerStats {
        self.core.stats
    }

    /// Transport-level counters (duplicate suppression etc.).
    pub fn rpc_stats(&self) -> ServeStats {
        self.rpc.stats
    }

    /// Registers this service with the name server at `ns`.
    ///
    /// # Errors
    ///
    /// Any [`RpcError`] from the registration call.
    pub fn register(&self, ctx: &mut Ctx, ns: Endpoint) -> Result<(), RpcError> {
        let mut nc = NameClient::new(ns);
        nc.register(ctx, &self.core.name, ctx.endpoint(), self.meta())?;
        Ok(())
    }

    /// Processes one incoming datagram (for custom server loops).
    pub fn handle_msg(&mut self, ctx: &mut Ctx, msg: &simnet::Message) -> Served {
        let core = &mut self.core;
        self.rpc.handle(ctx, msg, |ctx, req| core.execute(ctx, req))
    }

    /// Registers with the name service and serves until shutdown.
    ///
    /// # Panics
    ///
    /// Panics if registration fails for a reason other than simulation
    /// shutdown.
    pub fn run(mut self, ctx: &mut Ctx, ns: Endpoint) {
        match self.register(ctx, ns) {
            Ok(()) => {}
            Err(RpcError::Stopped) => return,
            Err(e) => panic!("service `{}` failed to register: {e}", self.core.name),
        }
        while let Ok(msg) = ctx.recv() {
            self.handle_msg(ctx, &msg);
        }
    }
}

/// Spawns a service process on `node`, hosting the object produced by
/// `make_object`, registered with the name server at `ns`. Returns the
/// service's endpoint.
pub fn spawn_service<F>(
    sim: &Simulation,
    node: NodeId,
    ns: Endpoint,
    name: &str,
    spec: ProxySpec,
    make_object: F,
) -> Endpoint
where
    F: FnOnce() -> Box<dyn ServiceObject> + Send + 'static,
{
    let name = name.to_owned();
    let label = format!("svc-{name}");
    sim.spawn(label, node, move |ctx| {
        ServiceServer::new(name, make_object(), spec).run(ctx, ns);
    })
}

/// Spawns a service that recovers from the node's last checkpoint if
/// one exists (otherwise hosts the object from `make_default`), and
/// keeps checkpointing under `policy`. Re-registering bumps the naming
/// generation, so stub proxies whose calls time out against the dead
/// incarnation transparently re-resolve to the new one.
#[allow(clippy::too_many_arguments)] // spawn helpers mirror ServiceServer's builder knobs
pub fn spawn_service_recovered<F>(
    sim: &Simulation,
    node: NodeId,
    ns: Endpoint,
    name: &str,
    spec: ProxySpec,
    factories: FactoryRegistry,
    policy: CheckpointPolicy,
    make_default: F,
) -> Endpoint
where
    F: FnOnce() -> Box<dyn ServiceObject> + Send + 'static,
{
    let name = name.to_owned();
    let label = format!("svc-{name}");
    sim.spawn(label, node, move |ctx| {
        let default = make_default();
        let object = match policy.store.load(ctx.node(), &name) {
            Some(snapshot) => factories
                .create(&default.interface().type_name, &snapshot)
                .unwrap_or(default),
            None => default,
        };
        ServiceServer::new(name, object, spec)
            .with_factories(factories)
            .with_checkpointing(policy)
            .run(ctx, ns);
    })
}

/// Like [`spawn_service`], with a factory registry for checkin support.
pub fn spawn_service_with_factories<F>(
    sim: &Simulation,
    node: NodeId,
    ns: Endpoint,
    name: &str,
    spec: ProxySpec,
    factories: FactoryRegistry,
    make_object: F,
) -> Endpoint
where
    F: FnOnce() -> Box<dyn ServiceObject> + Send + 'static,
{
    let name = name.to_owned();
    let label = format!("svc-{name}");
    sim.spawn(label, node, move |ctx| {
        ServiceServer::new(name, make_object(), spec)
            .with_factories(factories)
            .run(ctx, ns);
    })
}
