//! The binding protocol and the client-context runtime.
//!
//! [`Binder::bind`] is the proxy principle's installation step: resolve
//! the service name, read the **service-chosen** [`ProxySpec`] from the
//! binding metadata, and instantiate the corresponding proxy in the
//! client's context. The client never picks the strategy.
//!
//! [`ClientRuntime`] is the per-process context manager: it owns every
//! proxy bound in this context, routes incoming one-way notifications
//! (invalidations, recalls) to the right proxy, and pumps deferred work.

use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

use naming::{NameClient, NameRecord};
use rpc::RpcError;
use simnet::{Ctx, Endpoint};
use wire::{Value, WireError};

use crate::interface::InterfaceDesc;
use crate::object::FactoryRegistry;
use crate::proxies::{AdaptiveProxy, CachingProxy, MigratoryProxy, StubProxy};
use crate::proxy::{Proxy, ProxyStats};
use crate::session_core::{ProxyHandle, SessionCore};
use crate::spec::ProxySpec;

/// Everything a custom proxy factory gets to work with.
#[derive(Debug)]
pub struct BindContext<'a> {
    /// The service name being bound.
    pub service: &'a str,
    /// The resolved name record.
    pub record: &'a NameRecord,
    /// The service interface from the binding metadata.
    pub iface: &'a InterfaceDesc,
    /// Spec parameters (for [`ProxySpec::Custom`]).
    pub params: &'a Value,
    /// The name server, for proxies that need rebinds.
    pub ns: Endpoint,
    /// Object factories available in this context.
    pub factories: &'a FactoryRegistry,
}

/// Constructor for a [`ProxySpec::Custom`] proxy.
pub type ProxyCtor =
    dyn for<'a> Fn(&mut Ctx, &BindContext<'a>) -> Result<Box<dyn Proxy>, RpcError> + Send + Sync;

/// Client-side half of the binding protocol.
pub struct Binder {
    ns_ep: Endpoint,
    ns: NameClient,
    factories: FactoryRegistry,
    proxy_ctors: HashMap<String, Arc<ProxyCtor>>,
    /// When set, bulk-enabled proxies bound by this binder resolve blob
    /// references through this service (a region-local edge cache)
    /// instead of each ref's origin store.
    bulk_route: Option<String>,
}

impl fmt::Debug for Binder {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Binder")
            .field("ns", &self.ns_ep)
            .field("factories", &self.factories)
            .finish_non_exhaustive()
    }
}

impl Binder {
    /// Creates a binder talking to the name server at `ns`.
    pub fn new(ns: Endpoint) -> Binder {
        Binder {
            ns_ep: ns,
            ns: NameClient::new(ns),
            factories: FactoryRegistry::new(),
            proxy_ctors: HashMap::new(),
            bulk_route: None,
        }
    }

    /// Routes bulk resolution through a region-local blob service (an
    /// edge cache) for every bulk-enabled proxy this binder creates
    /// from now on. `None` restores direct-to-origin fetches.
    ///
    /// This is *placement*, not policy: the service still chooses the
    /// spill contract via its published spec; the client context merely
    /// names the nearest replica of the store hierarchy.
    pub fn set_bulk_route(&mut self, route: Option<String>) {
        self.bulk_route = route;
    }

    /// Supplies object factories (needed to host migrated objects).
    pub fn with_factories(mut self, factories: FactoryRegistry) -> Binder {
        self.factories = factories;
        self
    }

    /// The name-server endpoint this binder resolves against.
    pub fn ns_endpoint(&self) -> Endpoint {
        self.ns_ep
    }

    /// Registers a constructor for [`ProxySpec::Custom`] specs of the
    /// given kind. This is the Rust substitute for shipping proxy code:
    /// the client pre-registers implementations, the service selects one
    /// by name (see `DESIGN.md` §6).
    pub fn register_proxy(
        &mut self,
        kind: impl Into<String>,
        ctor: impl for<'a> Fn(&mut Ctx, &BindContext<'a>) -> Result<Box<dyn Proxy>, RpcError>
            + Send
            + Sync
            + 'static,
    ) {
        self.proxy_ctors.insert(kind.into(), Arc::new(ctor));
    }

    /// Binds to `service`: resolves the name and instantiates the proxy
    /// the service asked for.
    ///
    /// # Errors
    ///
    /// * name-service errors (unknown name, transport),
    /// * [`RpcError::Wire`] if the binding metadata is malformed,
    /// * any error from the proxy's own bind step (e.g. subscribe).
    pub fn bind(&mut self, ctx: &mut Ctx, service: &str) -> Result<Box<dyn Proxy>, RpcError> {
        let record = self.ns.resolve(ctx, service)?;
        let spec_v = record
            .meta
            .get("spec")
            .ok_or(RpcError::Wire(WireError::MissingField("spec")))?;
        let iface_v = record
            .meta
            .get("iface")
            .ok_or(RpcError::Wire(WireError::MissingField("iface")))?;
        let spec = ProxySpec::from_value(spec_v)?;
        let iface = InterfaceDesc::from_value(iface_v)?;
        self.instantiate(ctx, service, &record, spec, iface)
    }

    /// Binds, retrying while the name is not yet registered (services
    /// register asynchronously at simulation start).
    ///
    /// # Errors
    ///
    /// The final error if the deadline passes without a successful bind.
    pub fn bind_wait(
        &mut self,
        ctx: &mut Ctx,
        service: &str,
        within: std::time::Duration,
    ) -> Result<Box<dyn Proxy>, RpcError> {
        let deadline = ctx.now() + within;
        loop {
            match self.bind(ctx, service) {
                Ok(p) => return Ok(p),
                Err(e) if naming::is_not_found(&e) && ctx.now() < deadline => {
                    self.ns.forget(service);
                    ctx.sleep(std::time::Duration::from_millis(1))
                        .map_err(|_| RpcError::Stopped)?;
                }
                Err(e) => return Err(e),
            }
        }
    }

    fn instantiate(
        &mut self,
        ctx: &mut Ctx,
        service: &str,
        record: &NameRecord,
        spec: ProxySpec,
        iface: InterfaceDesc,
    ) -> Result<Box<dyn Proxy>, RpcError> {
        let server = record.endpoint;
        match spec {
            ProxySpec::Stub => Ok(Box::new(StubProxy::new(service, server, self.ns_ep))),
            ProxySpec::Caching(params) => Ok(Box::new(CachingProxy::bind(
                ctx, service, server, self.ns_ep, iface, params,
            )?)),
            ProxySpec::Migratory { threshold } => Ok(Box::new(MigratoryProxy::new(
                service,
                server,
                self.ns_ep,
                iface,
                self.factories.clone(),
                threshold,
            ))),
            ProxySpec::Adaptive(params) => Ok(Box::new(AdaptiveProxy::bind(
                ctx, service, server, self.ns_ep, iface, params,
            )?)),
            ProxySpec::Replicated { .. } => {
                // The replica proxy lives in the `replication` crate; it
                // registers itself here under this custom kind.
                let params = spec.to_value();
                self.bind_custom(ctx, "replicated", service, record, &iface, &params)
            }
            ProxySpec::Bulk { inner, params } => {
                let proxy: Box<dyn Proxy> = match *inner {
                    ProxySpec::Stub => {
                        let mut p = StubProxy::new(service, server, self.ns_ep);
                        p.enable_bulk(params, self.ns_ep);
                        if let Some(route) = &self.bulk_route {
                            p.bulk_mut()
                                .expect("just enabled")
                                .set_route(Some(route.clone()));
                        }
                        Box::new(p)
                    }
                    ProxySpec::Caching(cp) => {
                        let mut p =
                            CachingProxy::bind(ctx, service, server, self.ns_ep, iface, cp)?;
                        p.enable_bulk(params, self.ns_ep);
                        if let Some(route) = &self.bulk_route {
                            p.bulk_mut()
                                .expect("just enabled")
                                .set_route(Some(route.clone()));
                        }
                        Box::new(p)
                    }
                    other => {
                        return Err(RpcError::Wire(WireError::WrongKind {
                            expected: "bulk inner spec of kind stub or caching",
                            actual: match other {
                                ProxySpec::Migratory { .. } => "migratory",
                                ProxySpec::Replicated { .. } => "replicated",
                                ProxySpec::Adaptive(_) => "adaptive",
                                ProxySpec::Bulk { .. } => "bulk",
                                ProxySpec::Custom { .. } => "custom",
                                ProxySpec::Stub | ProxySpec::Caching(_) => unreachable!(),
                            },
                        }))
                    }
                };
                Ok(proxy)
            }
            ProxySpec::Custom { kind, params } => {
                self.bind_custom(ctx, &kind, service, record, &iface, &params)
            }
        }
    }

    fn bind_custom(
        &mut self,
        ctx: &mut Ctx,
        kind: &str,
        service: &str,
        record: &NameRecord,
        iface: &InterfaceDesc,
        params: &Value,
    ) -> Result<Box<dyn Proxy>, RpcError> {
        let ctor = self.proxy_ctors.get(kind).cloned().ok_or_else(|| {
            RpcError::Remote(rpc::RemoteError::new(
                rpc::ErrorCode::Unavailable,
                format!("no proxy implementation registered for kind `{kind}`"),
            ))
        })?;
        let bind_ctx = BindContext {
            service,
            record,
            iface,
            params,
            ns: self.ns_ep,
            factories: &self.factories,
        };
        ctor(ctx, &bind_ctx)
    }
}

/// The per-process context manager — the blocking face of
/// [`SessionCore`].
///
/// Owns all proxies bound in this context and routes one-way
/// notifications between them, so invalidations for service A arriving
/// while a call to service B is in flight are never lost. Every method
/// is a thin delegation to [`SessionCore`]'s blocking surface; code
/// that also wants the non-blocking surface (poll-driven processes)
/// reaches it through [`ClientRuntime::core_mut`] or uses
/// [`SessionCore`] directly.
pub struct ClientRuntime {
    core: SessionCore,
}

impl fmt::Debug for ClientRuntime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ClientRuntime")
            .field("core", &self.core)
            .finish()
    }
}

impl ClientRuntime {
    /// Creates a runtime talking to the name server at `ns`.
    pub fn new(ns: Endpoint) -> ClientRuntime {
        ClientRuntime {
            core: SessionCore::new(ns),
        }
    }

    /// Supplies object factories (for migratory services).
    pub fn with_factories(mut self, factories: FactoryRegistry) -> ClientRuntime {
        self.core = self.core.with_factories(factories);
        self
    }

    /// Access to the underlying binder (to register custom proxy kinds).
    pub fn binder_mut(&mut self) -> &mut Binder {
        self.core.binder_mut()
    }

    /// The session core behind this runtime (read-only).
    pub fn core(&self) -> &SessionCore {
        &self.core
    }

    /// The session core behind this runtime — e.g. to use the
    /// non-blocking surface alongside the blocking one.
    pub fn core_mut(&mut self) -> &mut SessionCore {
        &mut self.core
    }

    /// Binds to `service`, waiting up to 100ms of virtual time for it to
    /// register.
    ///
    /// # Errors
    ///
    /// See [`Binder::bind_wait`].
    pub fn bind(&mut self, ctx: &mut Ctx, service: &str) -> Result<ProxyHandle, RpcError> {
        self.core.bind(ctx, service)
    }

    /// Invokes an operation through a bound proxy.
    ///
    /// See [`SessionCore::invoke`] for span and metrics behaviour.
    ///
    /// # Errors
    ///
    /// Any [`RpcError`] from the proxy.
    ///
    /// # Panics
    ///
    /// Panics if the handle did not come from this runtime.
    pub fn invoke(
        &mut self,
        ctx: &mut Ctx,
        handle: ProxyHandle,
        op: &str,
        args: Value,
    ) -> Result<Value, RpcError> {
        self.core.invoke(ctx, handle, op, args)
    }

    /// Hosts an object directly in this context under `service` — the
    /// same-context fast path (experiment E5): invocations through the
    /// returned handle are ordinary procedure calls, no messages at all.
    pub fn host_local(
        &mut self,
        service: impl Into<String>,
        object: Box<dyn crate::ServiceObject>,
    ) -> ProxyHandle {
        self.core.host_local(service, object)
    }

    /// Drains the process mailbox and routes notifications; gives every
    /// proxy a chance to do deferred work (honour recalls, etc.). Call
    /// this periodically from client loops that go quiet.
    pub fn pump(&mut self, ctx: &mut Ctx) {
        self.core.pump(ctx);
    }

    /// Stats for one proxy.
    ///
    /// # Panics
    ///
    /// Panics if the handle did not come from this runtime.
    pub fn stats(&self, handle: ProxyHandle) -> ProxyStats {
        self.core.stats(handle)
    }

    /// Cleanly detaches one proxy (unsubscribe, check state back in).
    ///
    /// # Panics
    ///
    /// Panics if the handle did not come from this runtime.
    pub fn unbind(&mut self, ctx: &mut Ctx, handle: ProxyHandle) {
        self.core.unbind(ctx, handle);
    }

    /// Detaches every proxy (call before client exit).
    pub fn shutdown(&mut self, ctx: &mut Ctx) {
        self.core.shutdown(ctx);
    }
}
