//! Service objects and the factory registry.
//!
//! A [`ServiceObject`] is the encapsulated state-plus-methods unit the
//! paper structures services around. Objects are hosted in a *context*
//! (a [`crate::ServiceServer`] process) and invoked only through
//! dispatch; their state never leaks except through [`snapshot`]
//! (migration, replication) which is itself part of the protocol, not
//! the interface.
//!
//! [`snapshot`]: ServiceObject::snapshot

use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

use rpc::{ErrorCode, RemoteError};
use simnet::Ctx;
use wire::Value;

use crate::interface::InterfaceDesc;

/// An object hosted by a service context.
///
/// `dispatch` receives the simulation [`Ctx`] so implementations can
/// model compute time (`ctx.sleep(..)`) or talk to other services.
pub trait ServiceObject: Send {
    /// The interface this object exports.
    fn interface(&self) -> InterfaceDesc;

    /// Executes one operation.
    ///
    /// # Errors
    ///
    /// A [`RemoteError`] describing the failure; it is shipped to the
    /// caller verbatim.
    fn dispatch(&mut self, ctx: &mut Ctx, op: &str, args: &Value) -> Result<Value, RemoteError>;

    /// Captures the object's full state for migration or replication.
    ///
    /// # Errors
    ///
    /// The default declines with [`ErrorCode::Unavailable`]; movable
    /// objects override this.
    fn snapshot(&self) -> Result<Value, RemoteError> {
        Err(RemoteError::new(
            ErrorCode::Unavailable,
            "object does not support state capture",
        ))
    }
}

impl fmt::Debug for dyn ServiceObject {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ServiceObject({})", self.interface().type_name)
    }
}

/// Constructor for re-instantiating an object from a snapshot.
pub type ObjectCtor = dyn Fn(&Value) -> Result<Box<dyn ServiceObject>, RemoteError> + Send + Sync;

/// A registry of object constructors keyed by interface type name.
///
/// The paper lets a service ship proxy *code* into client contexts; Rust
/// cannot load code at runtime, so the equivalent is this registry: a
/// process that may host migrated objects (or custom proxies) registers
/// the constructors ahead of time, and the binding protocol selects among
/// them by type name (see `DESIGN.md` §6).
///
/// Cloning is cheap (shared internals).
#[derive(Clone, Default)]
pub struct FactoryRegistry {
    ctors: HashMap<String, Arc<ObjectCtor>>,
}

impl fmt::Debug for FactoryRegistry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut names: Vec<&str> = self.ctors.keys().map(String::as_str).collect();
        names.sort_unstable();
        f.debug_struct("FactoryRegistry")
            .field("types", &names)
            .finish()
    }
}

impl FactoryRegistry {
    /// Creates an empty registry.
    pub fn new() -> FactoryRegistry {
        FactoryRegistry::default()
    }

    /// Registers a constructor for `type_name`, replacing any previous
    /// one. Returns `self` for chaining.
    pub fn register<F>(mut self, type_name: impl Into<String>, ctor: F) -> FactoryRegistry
    where
        F: Fn(&Value) -> Result<Box<dyn ServiceObject>, RemoteError> + Send + Sync + 'static,
    {
        self.ctors.insert(type_name.into(), Arc::new(ctor));
        self
    }

    /// Instantiates an object of `type_name` from a snapshot.
    ///
    /// # Errors
    ///
    /// [`ErrorCode::NoSuchObject`] if the type is unknown, or whatever
    /// the constructor reports.
    pub fn create(
        &self,
        type_name: &str,
        snapshot: &Value,
    ) -> Result<Box<dyn ServiceObject>, RemoteError> {
        match self.ctors.get(type_name) {
            Some(ctor) => ctor(snapshot),
            None => Err(RemoteError::new(
                ErrorCode::NoSuchObject,
                format!("no factory for type `{type_name}`"),
            )),
        }
    }

    /// Whether a constructor exists for `type_name`.
    pub fn knows(&self, type_name: &str) -> bool {
        self.ctors.contains_key(type_name)
    }
}

#[cfg(test)]
pub(crate) mod testutil {
    //! A tiny in-memory KV object shared by the crate's unit tests.
    use super::*;
    use crate::interface::OpDesc;
    use std::collections::BTreeMap;

    #[derive(Debug, Default)]
    pub struct TestKv {
        pub map: BTreeMap<String, String>,
    }

    impl TestKv {
        pub fn iface() -> InterfaceDesc {
            InterfaceDesc::new(
                "test-kv",
                [
                    OpDesc::read("get", "key"),
                    OpDesc::write("put", "key"),
                    OpDesc::read_whole("len"),
                ],
            )
        }

        pub fn from_snapshot(v: &Value) -> Result<Box<dyn ServiceObject>, RemoteError> {
            let mut kv = TestKv::default();
            if let Some(items) = v.as_record() {
                for (k, val) in items {
                    if let Some(s) = val.as_str() {
                        kv.map.insert(k.to_string_owned(), s.to_owned());
                    }
                }
            }
            Ok(Box::new(kv))
        }
    }

    impl ServiceObject for TestKv {
        fn interface(&self) -> InterfaceDesc {
            TestKv::iface()
        }

        fn dispatch(
            &mut self,
            _ctx: &mut Ctx,
            op: &str,
            args: &Value,
        ) -> Result<Value, RemoteError> {
            match op {
                "get" => {
                    let key = args
                        .get_str("key")
                        .map_err(|e| RemoteError::new(ErrorCode::BadArgs, e.to_string()))?;
                    Ok(self
                        .map
                        .get(key)
                        .map(|v| Value::str(v.clone()))
                        .unwrap_or(Value::Null))
                }
                "put" => {
                    let key = args
                        .get_str("key")
                        .map_err(|e| RemoteError::new(ErrorCode::BadArgs, e.to_string()))?;
                    let val = args
                        .get_str("value")
                        .map_err(|e| RemoteError::new(ErrorCode::BadArgs, e.to_string()))?;
                    self.map.insert(key.to_owned(), val.to_owned());
                    Ok(Value::Null)
                }
                "len" => Ok(Value::U64(self.map.len() as u64)),
                other => Err(RemoteError::new(ErrorCode::NoSuchOp, other.to_owned())),
            }
        }

        fn snapshot(&self) -> Result<Value, RemoteError> {
            Ok(Value::record(
                self.map
                    .iter()
                    .map(|(k, v)| (k.clone(), Value::str(v.clone()))),
            ))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::testutil::TestKv;
    use super::*;

    #[test]
    fn registry_creates_from_snapshot() {
        let reg = FactoryRegistry::new().register("test-kv", TestKv::from_snapshot);
        assert!(reg.knows("test-kv"));
        assert!(!reg.knows("other"));
        let snap = Value::record([("a", Value::str("1"))]);
        let obj = reg.create("test-kv", &snap).unwrap();
        assert_eq!(obj.interface().type_name, "test-kv");
        assert_eq!(obj.snapshot().unwrap(), snap);
    }

    #[test]
    fn unknown_type_is_error() {
        let reg = FactoryRegistry::new();
        let err = reg.create("ghost", &Value::Null).unwrap_err();
        assert_eq!(err.code, ErrorCode::NoSuchObject);
    }

    #[test]
    fn default_snapshot_declines() {
        struct Opaque;
        impl ServiceObject for Opaque {
            fn interface(&self) -> InterfaceDesc {
                InterfaceDesc::new("opaque", [])
            }
            fn dispatch(
                &mut self,
                _ctx: &mut Ctx,
                _op: &str,
                _args: &Value,
            ) -> Result<Value, RemoteError> {
                Ok(Value::Null)
            }
        }
        let err = Opaque.snapshot().unwrap_err();
        assert_eq!(err.code, ErrorCode::Unavailable);
    }

    #[test]
    fn debug_impls_are_nonempty() {
        let reg = FactoryRegistry::new()
            .register("t", |_| Err(RemoteError::new(ErrorCode::App, "never")));
        assert!(format!("{reg:?}").contains("t"));
    }
}
