//! The out-of-band bulk data plane: pass-by-reference payloads.
//!
//! The paper's proxy encapsulates the service's distribution strategy —
//! *including how bytes move*. Inline marshalling ships a 1 MB value
//! over the same framed RPC path as a 40-byte control message, bloating
//! retransmit cost and tail latency. This module implements the
//! ProxyStore-style alternative: payloads above a spill threshold are
//! uploaded (chunked, pipelined) to a blob-store service and replaced on
//! the RPC path by a fixed-size [`wire::Value::Ref`] handle; whoever
//! actually touches the value fetches the bytes out-of-band, optionally
//! through a region-local edge cache. Client code sees plain blobs on
//! both ends — the substitution happens inside the proxy, which is
//! exactly the encapsulation the paper argues for.
//!
//! The pieces:
//!
//! * [`ops`] — the chunked blob protocol op names, shared by
//!   [`BlobClient`] and any service implementing the store side.
//! * [`BulkParams`] — the spill/transfer contract a service publishes in
//!   its [`crate::ProxySpec::Bulk`] binding metadata. Writer and reader
//!   must agree on the chunk size, so it rides the spec.
//! * [`BlobClient`] — chunked put/get over the pipelined
//!   [`rpc::Channel`], with whole-payload length + CRC verification.
//! * [`BulkEngine`] — the spill/resolve walkers a proxy wraps around its
//!   calls, plus the region routing that sends resolution to an edge
//!   cache instead of the origin.

use std::collections::HashMap;

use bytes::Bytes;
use naming::NameClient;
use rpc::{Channel, ChannelConfig, ErrorCode, RemoteError, RpcError};
use simnet::{Ctx, Endpoint};
use wire::{BlobRef, Value};

use crate::proxy::OnewaySink;

/// Blob-store protocol operation names.
pub mod ops {
    /// Uploads one chunk: `{key, seq, total, len, crc, data}` — a write,
    /// tagged by `key` so cache invalidation rides the normal path.
    pub const PUT_CHUNK: &str = "put_chunk";
    /// Fetches one chunk: `{key, seq}` → `{data}` — a read, tagged by
    /// `key`.
    pub const GET_CHUNK: &str = "get_chunk";
    /// Reads a key's metadata: `{key}` → `{len, crc, chunks}`.
    pub const STAT: &str = "stat";
    /// Deletes a key: `{key}` — a write, tagged by `key`.
    pub const DEL: &str = "del";
}

/// Payload size above which a proxy spills a blob out-of-band instead of
/// marshalling it inline. Below this, the ref handle plus the extra
/// out-of-band round trip cost more than just shipping the bytes.
pub const DEFAULT_THRESHOLD: usize = 4 * 1024;

/// Default transfer chunk size, tuned to `simnet::net`'s bandwidth
/// model: on the WAN profile (10 ns/byte, 20 ms one-way) a 64 KiB chunk
/// costs ~0.65 ms of serialization against a 20 ms propagation delay, so
/// a modest pipeline depth keeps the link busy while each retransmit
/// unit stays small; on the LAN profile (1 ns/byte) per-message overhead
/// is amortized across 64 KiB of useful bytes.
pub const DEFAULT_CHUNK: usize = 64 * 1024;

/// Largest chunk a blob store accepts in one `put_chunk` (hostile-size
/// guard on the server side; the wire-level companion is
/// [`wire::MAX_BULK_LEN`] on a ref's declared total length).
pub const MAX_CHUNK: usize = 1 << 20;

/// The bulk plane's contract between a service and its clients' proxies.
///
/// Published inside [`crate::ProxySpec::Bulk`] so both the writer (who
/// chunks uploads) and every reader (who computes chunk counts from a
/// ref's declared length) agree on the same parameters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BulkParams {
    /// Service name of the blob store holding spilled payloads.
    pub store: String,
    /// Spill payloads strictly larger than this many bytes.
    pub threshold: usize,
    /// Transfer chunk size in bytes.
    pub chunk: usize,
    /// Pipeline depth for chunked transfers.
    pub depth: usize,
}

impl Default for BulkParams {
    fn default() -> BulkParams {
        BulkParams {
            store: "blob".to_owned(),
            threshold: DEFAULT_THRESHOLD,
            chunk: DEFAULT_CHUNK,
            depth: 8,
        }
    }
}

impl BulkParams {
    /// Encodes the params for binding metadata.
    pub fn to_value(&self) -> Value {
        Value::record([
            ("store", Value::str(self.store.clone())),
            ("threshold", Value::U64(self.threshold as u64)),
            ("chunk", Value::U64(self.chunk as u64)),
            ("depth", Value::U64(self.depth as u64)),
        ])
    }

    /// Decodes params from binding metadata.
    ///
    /// # Errors
    ///
    /// [`wire::WireError`] for missing or malformed fields.
    pub fn from_value(v: &Value) -> Result<BulkParams, wire::WireError> {
        Ok(BulkParams {
            store: v.get_str("store")?.to_owned(),
            threshold: v.get_u64("threshold")? as usize,
            chunk: (v.get_u64("chunk")? as usize).clamp(1, MAX_CHUNK),
            depth: (v.get_u64("depth")? as usize).max(1),
        })
    }
}

fn remote(code: ErrorCode, msg: impl Into<String>) -> RpcError {
    RpcError::Remote(RemoteError::new(code, msg.into()))
}

/// Chunked blob transfer over the pipelined [`rpc::Channel`].
///
/// One client per store service; the endpoint is resolved through the
/// name service on first use and cached (a stale endpoint surfaces as a
/// per-call error and is re-resolved on the next call).
#[derive(Debug)]
pub struct BlobClient {
    store: String,
    ns: NameClient,
    server: Option<Endpoint>,
    chunk: usize,
    depth: usize,
}

impl BlobClient {
    /// Creates a client for the blob store registered under `store`,
    /// resolving through the name server at `ns`.
    pub fn new(store: impl Into<String>, ns: Endpoint, chunk: usize, depth: usize) -> BlobClient {
        BlobClient {
            store: store.into(),
            ns: NameClient::new(ns),
            server: None,
            chunk: chunk.clamp(1, MAX_CHUNK),
            depth: depth.max(1),
        }
    }

    /// The store service this client talks to.
    pub fn store(&self) -> &str {
        &self.store
    }

    fn endpoint(&mut self, ctx: &mut Ctx) -> Result<Endpoint, RpcError> {
        if let Some(ep) = self.server {
            return Ok(ep);
        }
        let rec = self.ns.resolve(ctx, &self.store)?;
        self.server = Some(rec.endpoint);
        Ok(rec.endpoint)
    }

    fn channel(&mut self, ctx: &mut Ctx) -> Result<Channel, RpcError> {
        let ep = self.endpoint(ctx)?;
        // Bulk transfers are throughput-bound, not latency-bound: a
        // pipelined chunk fetch legitimately queues behind its window
        // predecessors at the store (or behind a cold edge cache's
        // serial origin misses over the WAN), so the per-call patience
        // must cover many upstream round trips — the LAN-sized default
        // policy would give up on calls the server fully intends to
        // answer.
        let policy = rpc::RetryPolicy::exponential(std::time::Duration::from_millis(50), 8);
        Ok(Channel::new(
            self.store.clone(),
            ep,
            ChannelConfig::with_depth(self.depth).with_policy(policy),
        ))
    }

    fn drain(&mut self, ch: &mut Channel, strays: &mut dyn OnewaySink) {
        for o in ch.take_strays() {
            strays.push(o);
        }
    }

    /// Uploads `data` under `key`, chunked and pipelined, and returns the
    /// reference handle to ship on the RPC path.
    ///
    /// # Errors
    ///
    /// Any [`RpcError`] from the transfer; on error the upload may be
    /// partially applied (a later upload under a fresh key supersedes it).
    pub fn put(
        &mut self,
        ctx: &mut Ctx,
        key: &str,
        data: &Bytes,
        strays: &mut dyn OnewaySink,
    ) -> Result<BlobRef, RpcError> {
        let crc = wire::crc32(data);
        let total = data.len().div_ceil(self.chunk).max(1) as u64;
        let mut ch = self.channel(ctx)?;
        let handles: Vec<_> = (0..total)
            .map(|seq| {
                let start = seq as usize * self.chunk;
                let end = (start + self.chunk).min(data.len());
                ch.begin_call(
                    ctx,
                    ops::PUT_CHUNK,
                    Value::record([
                        ("key", Value::str(key)),
                        ("seq", Value::U64(seq)),
                        ("total", Value::U64(total)),
                        ("len", Value::U64(data.len() as u64)),
                        ("crc", Value::U64(u64::from(crc))),
                        ("data", Value::Blob(data.slice(start..end))),
                    ]),
                )
            })
            .collect();
        ch.wait_all(ctx)?;
        let mut result = Ok(());
        for h in handles {
            if let Err(e) = ch.wait(ctx, h) {
                result = Err(e);
            }
        }
        self.drain(&mut ch, strays);
        if let Err(e) = result {
            self.server = None;
            return Err(e);
        }
        Ok(BlobRef {
            store: self.store.clone().into(),
            key: key.into(),
            len: data.len() as u64,
            crc,
        })
    }

    /// Fetches the payload a reference points at, chunked and pipelined,
    /// verifying the reassembled bytes against the ref's declared length
    /// and CRC.
    ///
    /// The chunk count is computed from the ref's length and this
    /// client's chunk size — the shared [`BulkParams`] contract; a
    /// mismatch surfaces as a verification failure, never silent
    /// corruption.
    ///
    /// # Errors
    ///
    /// Any transfer [`RpcError`]; [`ErrorCode::App`] if the reassembled
    /// payload fails length or CRC verification.
    pub fn get(
        &mut self,
        ctx: &mut Ctx,
        r: &BlobRef,
        strays: &mut dyn OnewaySink,
    ) -> Result<Bytes, RpcError> {
        if r.len > wire::MAX_BULK_LEN {
            return Err(remote(
                ErrorCode::BadArgs,
                format!("ref declares {} bytes, over MAX_BULK_LEN", r.len),
            ));
        }
        let total = (r.len as usize).div_ceil(self.chunk).max(1) as u64;
        let mut ch = self.channel(ctx)?;
        let handles: Vec<_> = (0..total)
            .map(|seq| {
                ch.begin_call(
                    ctx,
                    ops::GET_CHUNK,
                    Value::record([
                        ("key", Value::str(r.key.as_str())),
                        ("seq", Value::U64(seq)),
                    ]),
                )
            })
            .collect();
        ch.wait_all(ctx)?;
        let mut buf = Vec::with_capacity(r.len as usize);
        let mut result = Ok(());
        for h in handles {
            match ch.wait(ctx, h) {
                Ok(rep) => match rep.get_blob("data") {
                    Ok(b) => buf.extend_from_slice(b),
                    Err(e) => result = Err(RpcError::Wire(e)),
                },
                Err(e) => result = Err(e),
            }
        }
        self.drain(&mut ch, strays);
        if let Err(e) = result {
            self.server = None;
            return Err(e);
        }
        if buf.len() as u64 != r.len {
            return Err(remote(
                ErrorCode::App,
                format!(
                    "bulk payload {}: reassembled {} bytes, ref declares {} \
                     (chunk-size contract violated?)",
                    r.key,
                    buf.len(),
                    r.len
                ),
            ));
        }
        if wire::crc32(&buf) != r.crc {
            return Err(remote(
                ErrorCode::App,
                format!("bulk payload {}: CRC mismatch after reassembly", r.key),
            ));
        }
        Ok(Bytes::from(buf))
    }

    /// Deletes `key` from the store.
    ///
    /// # Errors
    ///
    /// Any [`RpcError`] from the call.
    pub fn del(
        &mut self,
        ctx: &mut Ctx,
        key: &str,
        strays: &mut dyn OnewaySink,
    ) -> Result<(), RpcError> {
        let mut ch = self.channel(ctx)?;
        let h = ch.begin_call(ctx, ops::DEL, Value::record([("key", Value::str(key))]));
        ch.wait_all(ctx)?;
        let r = ch.wait(ctx, h).map(drop);
        self.drain(&mut ch, strays);
        r
    }
}

/// The spill/resolve engine a proxy wraps around its calls.
///
/// Outbound, [`BulkEngine::spill`] walks the argument tree and replaces
/// every blob above the threshold with a [`Value::Ref`] after uploading
/// the bytes to the configured store. Inbound, [`BulkEngine::resolve`]
/// walks a reply and replaces every ref with the fetched bytes — from
/// the ref's own store by default, or from a region-local edge cache
/// when a route override is set ([`BulkEngine::set_route`]). Client code
/// above the proxy sees plain blobs in both directions.
#[derive(Debug)]
pub struct BulkEngine {
    params: BulkParams,
    ns: Endpoint,
    route: Option<String>,
    clients: HashMap<String, BlobClient>,
    /// Payloads spilled out-of-band by this engine.
    pub spills: u64,
    /// References resolved out-of-band by this engine.
    pub resolves: u64,
    /// Total bytes moved off the RPC path by spills.
    pub bytes_spilled: u64,
    /// Total bytes fetched out-of-band by resolves.
    pub bytes_resolved: u64,
}

impl BulkEngine {
    /// Creates an engine with the given contract, resolving store names
    /// through the name server at `ns`.
    pub fn new(params: BulkParams, ns: Endpoint) -> BulkEngine {
        BulkEngine {
            params,
            ns,
            route: None,
            clients: HashMap::new(),
            spills: 0,
            resolves: 0,
            bytes_spilled: 0,
            bytes_resolved: 0,
        }
    }

    /// The engine's contract.
    pub fn params(&self) -> &BulkParams {
        &self.params
    }

    /// Routes *resolution* to a region-local service (an edge cache
    /// layered over the origin store) instead of the store named in each
    /// ref. Spills still go to the origin store — writes must land where
    /// invalidations originate.
    pub fn set_route(&mut self, route: Option<String>) {
        self.route = route;
    }

    fn client(&mut self, service: &str) -> &mut BlobClient {
        let (chunk, depth, ns) = (self.params.chunk, self.params.depth, self.ns);
        self.clients
            .entry(service.to_owned())
            .or_insert_with(|| BlobClient::new(service, ns, chunk, depth))
    }

    /// Whether a value tree contains any blob that would spill.
    pub fn wants_spill(&self, v: &Value) -> bool {
        match v {
            Value::Blob(b) => b.len() > self.params.threshold,
            Value::List(items) => items.iter().any(|i| self.wants_spill(i)),
            Value::Record(fields) => fields.iter().any(|(_, i)| self.wants_spill(i)),
            _ => false,
        }
    }

    /// Whether a value tree contains any reference to resolve.
    pub fn wants_resolve(v: &Value) -> bool {
        match v {
            Value::Ref(_) => true,
            Value::List(items) => items.iter().any(Self::wants_resolve),
            Value::Record(fields) => fields.iter().any(|(_, i)| Self::wants_resolve(i)),
            _ => false,
        }
    }

    /// Replaces every over-threshold blob in `v` with a reference after
    /// uploading its bytes to the origin store. Spill keys are unique per
    /// upload (endpoint + sequence), so spilled content is immutable:
    /// overwriting a logical value creates a fresh key rather than
    /// mutating a published one.
    ///
    /// # Errors
    ///
    /// Any [`RpcError`] from an upload; already-spilled siblings stay
    /// uploaded (orphans are garbage, collectible via [`ops::DEL`]).
    pub fn spill(
        &mut self,
        ctx: &mut Ctx,
        v: Value,
        strays: &mut dyn OnewaySink,
    ) -> Result<Value, RpcError> {
        match v {
            Value::Blob(b) if b.len() > self.params.threshold => {
                let key = format!("s/{}/{}", ctx.endpoint(), ctx.next_seq());
                let store = self.params.store.clone();
                let r = self.client(&store).put(ctx, &key, &b, strays)?;
                self.spills += 1;
                self.bytes_spilled += b.len() as u64;
                Ok(Value::Ref(r))
            }
            Value::List(items) => {
                let mut out = Vec::with_capacity(items.len());
                for item in items {
                    out.push(self.spill(ctx, item, strays)?);
                }
                Ok(Value::List(out))
            }
            Value::Record(fields) => {
                let mut out = Vec::with_capacity(fields.len());
                for (k, item) in fields {
                    out.push((k, self.spill(ctx, item, strays)?));
                }
                Ok(Value::Record(out))
            }
            other => Ok(other),
        }
    }

    /// Replaces every reference in `v` with the fetched payload bytes.
    ///
    /// # Errors
    ///
    /// Any [`RpcError`] from a fetch, including verification failures.
    pub fn resolve(
        &mut self,
        ctx: &mut Ctx,
        v: Value,
        strays: &mut dyn OnewaySink,
    ) -> Result<Value, RpcError> {
        match v {
            Value::Ref(r) => {
                let service = match &self.route {
                    Some(route) => route.clone(),
                    None => r.store.as_str().to_owned(),
                };
                let bytes = self.client(&service).get(ctx, &r, strays)?;
                self.resolves += 1;
                self.bytes_resolved += bytes.len() as u64;
                Ok(Value::Blob(bytes))
            }
            Value::List(items) => {
                let mut out = Vec::with_capacity(items.len());
                for item in items {
                    out.push(self.resolve(ctx, item, strays)?);
                }
                Ok(Value::List(out))
            }
            Value::Record(fields) => {
                let mut out = Vec::with_capacity(fields.len());
                for (k, item) in fields {
                    out.push((k, self.resolve(ctx, item, strays)?));
                }
                Ok(Value::Record(out))
            }
            other => Ok(other),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn params_roundtrip() {
        let p = BulkParams {
            store: "blob-origin".into(),
            threshold: 1000,
            chunk: 32 * 1024,
            depth: 4,
        };
        assert_eq!(BulkParams::from_value(&p.to_value()).unwrap(), p);
        // Hostile values are clamped into the legal range.
        let hostile = Value::record([
            ("store", Value::str("s")),
            ("threshold", Value::U64(10)),
            ("chunk", Value::U64(u64::MAX)),
            ("depth", Value::U64(0)),
        ]);
        let parsed = BulkParams::from_value(&hostile).unwrap();
        assert_eq!(parsed.chunk, MAX_CHUNK);
        assert_eq!(parsed.depth, 1);
    }

    #[test]
    fn spill_predicate_walks_the_tree() {
        let ns = Endpoint::new(simnet::NodeId(0), simnet::PortId(1));
        let eng = BulkEngine::new(
            BulkParams {
                threshold: 8,
                ..BulkParams::default()
            },
            ns,
        );
        assert!(!eng.wants_spill(&Value::blob(vec![0u8; 8])));
        assert!(eng.wants_spill(&Value::blob(vec![0u8; 9])));
        assert!(eng.wants_spill(&Value::record([(
            "deep",
            Value::list([Value::blob(vec![0u8; 64])]),
        )])));
        assert!(!eng.wants_spill(&Value::str("small")));
        assert!(BulkEngine::wants_resolve(&Value::list([Value::blob_ref(
            "s", "k", 1, 2
        )])));
        assert!(!BulkEngine::wants_resolve(&Value::blob(vec![1, 2])));
    }
}
