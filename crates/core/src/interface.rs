//! Service interfaces: the typed contract between a client and a proxy.
//!
//! In the proxy principle, the *interface* is the part of a service a
//! client sees — local, fixed and type-checked — while the *protocol*
//! behind the proxy stays private to the service. [`InterfaceDesc`] is the
//! runtime description of such an interface: each operation declares
//! whether it reads or writes, whether it is idempotent, and which
//! argument identifies the datum it touches. Generic smart proxies use
//! these declarations to decide what is cacheable and what invalidates
//! what, without knowing anything else about the service.

use wire::{Value, WireError};

/// Whether an operation observes or mutates service state.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OpKind {
    /// Pure observation; result may be cached.
    Read,
    /// Mutation; invalidates cached reads of the same tag.
    Write,
}

impl OpKind {
    /// Stable wire name.
    pub fn as_str(self) -> &'static str {
        match self {
            OpKind::Read => "read",
            OpKind::Write => "write",
        }
    }
}

/// Description of one operation in a service interface.
#[derive(Debug, Clone, PartialEq)]
pub struct OpDesc {
    /// Operation name (the `op` field of requests).
    pub name: String,
    /// Read or write.
    pub kind: OpKind,
    /// Name of the argument field that identifies the datum this
    /// operation touches (its *cache tag*). `None` means the operation
    /// touches the whole object: reads are tagged by the full argument
    /// encoding, and writes invalidate everything.
    pub key_field: Option<String>,
    /// Whether re-executing the operation is harmless. Purely
    /// informational for transports that might relax at-most-once.
    pub idempotent: bool,
}

impl OpDesc {
    /// A cacheable read keyed by `key_field`.
    pub fn read(name: impl Into<String>, key_field: impl Into<String>) -> OpDesc {
        OpDesc {
            name: name.into(),
            kind: OpKind::Read,
            key_field: Some(key_field.into()),
            idempotent: true,
        }
    }

    /// A read that observes the whole object (tagged by full arguments).
    pub fn read_whole(name: impl Into<String>) -> OpDesc {
        OpDesc {
            name: name.into(),
            kind: OpKind::Read,
            key_field: None,
            idempotent: true,
        }
    }

    /// A write affecting the datum named by `key_field`.
    pub fn write(name: impl Into<String>, key_field: impl Into<String>) -> OpDesc {
        OpDesc {
            name: name.into(),
            kind: OpKind::Write,
            key_field: Some(key_field.into()),
            idempotent: false,
        }
    }

    /// A write affecting the whole object (invalidates every cached read).
    pub fn write_whole(name: impl Into<String>) -> OpDesc {
        OpDesc {
            name: name.into(),
            kind: OpKind::Write,
            key_field: None,
            idempotent: false,
        }
    }

    /// Marks the operation idempotent (builder style).
    pub fn idempotent(mut self) -> OpDesc {
        self.idempotent = true;
        self
    }

    /// The cache tag this operation touches for the given arguments:
    /// the value of `key_field` if declared and present, otherwise the
    /// whole-object tag `"*"`.
    pub fn tag(&self, args: &Value) -> String {
        match &self.key_field {
            Some(field) => match args.get(field) {
                Some(Value::Str(s)) => s.to_string_owned(),
                Some(Value::U64(n)) => n.to_string(),
                Some(Value::I64(n)) => n.to_string(),
                _ => "*".to_owned(),
            },
            None => "*".to_owned(),
        }
    }

    fn to_value(&self) -> Value {
        let mut fields = vec![
            ("name".into(), Value::str(self.name.clone())),
            ("kind".into(), Value::str(self.kind.as_str())),
            ("idem".into(), Value::Bool(self.idempotent)),
        ];
        if let Some(k) = &self.key_field {
            fields.push(("key".into(), Value::str(k.clone())));
        }
        Value::Record(fields)
    }

    fn from_value(v: &Value) -> Result<OpDesc, WireError> {
        let kind = match v.get_str("kind")? {
            "write" => OpKind::Write,
            _ => OpKind::Read,
        };
        Ok(OpDesc {
            name: v.get_str("name")?.to_owned(),
            kind,
            key_field: v.get("key").and_then(|k| k.as_str().map(str::to_owned)),
            idempotent: v.get_bool("idem").unwrap_or(false),
        })
    }
}

/// Runtime description of a service interface (its abstract type).
#[derive(Debug, Clone, PartialEq)]
pub struct InterfaceDesc {
    /// The service's type name; also keys the object factory used to
    /// re-instantiate migrated objects.
    pub type_name: String,
    /// The operations the interface exposes.
    pub ops: Vec<OpDesc>,
}

impl InterfaceDesc {
    /// Creates an interface description.
    ///
    /// # Panics
    ///
    /// Panics if two operations share a name: an interface is a
    /// function from operation names to signatures, so duplicates are
    /// always a programming error.
    pub fn new(
        type_name: impl Into<String>,
        ops: impl IntoIterator<Item = OpDesc>,
    ) -> InterfaceDesc {
        let ops: Vec<OpDesc> = ops.into_iter().collect();
        for (i, a) in ops.iter().enumerate() {
            for b in &ops[i + 1..] {
                assert!(
                    a.name != b.name,
                    "duplicate operation `{}` in interface",
                    a.name
                );
            }
        }
        InterfaceDesc {
            type_name: type_name.into(),
            ops,
        }
    }

    /// Looks up an operation by name.
    pub fn op(&self, name: &str) -> Option<&OpDesc> {
        self.ops.iter().find(|o| o.name == name)
    }

    /// Whether `name` is a declared read.
    pub fn is_read(&self, name: &str) -> bool {
        matches!(self.op(name), Some(o) if o.kind == OpKind::Read)
    }

    /// Whether `name` is a declared write.
    pub fn is_write(&self, name: &str) -> bool {
        matches!(self.op(name), Some(o) if o.kind == OpKind::Write)
    }

    /// Encodes the interface as a wire value (the `_iface` system op).
    pub fn to_value(&self) -> Value {
        Value::record([
            ("type", Value::str(self.type_name.clone())),
            ("ops", Value::list(self.ops.iter().map(OpDesc::to_value))),
        ])
    }

    /// Decodes an interface from a wire value.
    ///
    /// # Errors
    ///
    /// Returns a [`WireError`] for missing or malformed fields.
    pub fn from_value(v: &Value) -> Result<InterfaceDesc, WireError> {
        let ops = v
            .get_list("ops")?
            .iter()
            .map(OpDesc::from_value)
            .collect::<Result<Vec<_>, _>>()?;
        Ok(InterfaceDesc {
            type_name: v.get_str("type")?.to_owned(),
            ops,
        })
    }

    /// Whether a subtype relation holds: `self` provides at least the
    /// operations of `other`, with matching kinds (the conformance rule
    /// distributed systems use instead of implementation inheritance).
    pub fn conforms_to(&self, other: &InterfaceDesc) -> bool {
        other.ops.iter().all(|needed| {
            self.op(&needed.name)
                .map(|have| have.kind == needed.kind)
                .unwrap_or(false)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kv_iface() -> InterfaceDesc {
        InterfaceDesc::new(
            "kv",
            [
                OpDesc::read("get", "key"),
                OpDesc::write("put", "key"),
                OpDesc::read_whole("len"),
                OpDesc::write_whole("clear"),
            ],
        )
    }

    #[test]
    fn lookup_and_classification() {
        let i = kv_iface();
        assert!(i.is_read("get"));
        assert!(i.is_write("put"));
        assert!(!i.is_read("put"));
        assert!(!i.is_write("nope"));
        assert_eq!(i.op("len").unwrap().kind, OpKind::Read);
    }

    #[test]
    fn tags_follow_key_field() {
        let i = kv_iface();
        let args = Value::record([("key", Value::str("color")), ("v", Value::str("blue"))]);
        assert_eq!(i.op("get").unwrap().tag(&args), "color");
        assert_eq!(i.op("put").unwrap().tag(&args), "color");
        // Whole-object ops tag "*".
        assert_eq!(i.op("len").unwrap().tag(&Value::Null), "*");
        // Numeric keys stringify.
        let nargs = Value::record([("key", Value::U64(7))]);
        assert_eq!(i.op("get").unwrap().tag(&nargs), "7");
        // Missing key field degrades to whole-object.
        assert_eq!(i.op("get").unwrap().tag(&Value::Null), "*");
    }

    #[test]
    fn wire_roundtrip() {
        let i = kv_iface();
        let v = i.to_value();
        assert_eq!(InterfaceDesc::from_value(&v).unwrap(), i);
    }

    #[test]
    fn conformance_is_operation_superset() {
        let full = kv_iface();
        let reader = InterfaceDesc::new("kv-read", [OpDesc::read("get", "key")]);
        assert!(full.conforms_to(&reader));
        assert!(!reader.conforms_to(&full));
        // Same op name but different kind does not conform.
        let weird = InterfaceDesc::new("weird", [OpDesc::write("get", "key")]);
        assert!(!weird.conforms_to(&reader));
        // Every interface conforms to itself and to the empty interface.
        assert!(full.conforms_to(&full));
        assert!(reader.conforms_to(&InterfaceDesc::new("empty", [])));
    }

    #[test]
    fn idempotent_builder() {
        let op = OpDesc::write("reset", "key").idempotent();
        assert!(op.idempotent);
    }
}
