//! Shim equivalence: the blocking `Session` surface and the
//! non-blocking `SessionCore` surface are two faces of one engine, so a
//! workload expressed both ways must look identical to the service.
//!
//! Twin runs with the same seed — one thread-backed client using
//! `Session::{bind,invoke}`, one poll-driven `Process` using
//! `bind_async`/`invoke_async` — must produce the same per-call
//! results, the same server-side dispatch counts, and the same number
//! of client RPC calls.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use proxy_core::{
    AsyncHandle, BindFuture, CallFuture, ClientRuntime, InterfaceDesc, OpDesc, ProxySpec,
    ServiceBuilder, ServiceObject, Session, SessionCore,
};
use rpc::{ErrorCode, RemoteError};
use simnet::{NetworkConfig, NodeId, Poll, ProcCx, Process, Simulation};
use wire::Value;

const CALLS: u32 = 10;

/// A counter service: `add {n}` returns the running total.
struct Adder(u64);

impl ServiceObject for Adder {
    fn interface(&self) -> InterfaceDesc {
        InterfaceDesc::new("adder", [OpDesc::write_whole("add")])
    }

    fn dispatch(
        &mut self,
        _ctx: &mut simnet::Ctx,
        op: &str,
        args: &Value,
    ) -> Result<Value, RemoteError> {
        match op {
            "add" => {
                let n = args
                    .get_u64("n")
                    .map_err(|e| RemoteError::new(ErrorCode::BadArgs, e.to_string()))?;
                self.0 += n;
                Ok(Value::U64(self.0))
            }
            other => Err(RemoteError::new(ErrorCode::NoSuchOp, other.to_owned())),
        }
    }
}

/// What one run looks like from the outside: every call's result, the
/// service's dispatch count, and the client-side RPC call count.
#[derive(Debug, PartialEq)]
struct RunShape {
    results: Vec<u64>,
    dispatched: u64,
    client_calls: u64,
}

fn shape(sim: &Simulation, results: Vec<u64>) -> RunShape {
    let report = sim.obs_report();
    RunShape {
        results,
        dispatched: report.servers.get("adder").map_or(0, |s| s.dispatched),
        client_calls: report.rpc.client.calls,
    }
}

fn blocking_run(seed: u64) -> RunShape {
    let mut sim = Simulation::new(NetworkConfig::lan(), seed);
    let ns = naming::spawn_name_server(&sim, NodeId(0));
    ServiceBuilder::new("adder")
        .spec(ProxySpec::Stub)
        .object(|| Box::new(Adder(0)))
        .spawn(&sim, NodeId(1), ns);
    let results = Arc::new(Mutex::new(Vec::new()));
    let r2 = Arc::clone(&results);
    sim.spawn("client", NodeId(2), move |ctx| {
        let mut rt = ClientRuntime::new(ns);
        let mut session = Session::new(&mut rt, ctx);
        let h = session.bind("adder").unwrap();
        for i in 0..CALLS {
            let v = session
                .invoke(
                    h,
                    "add",
                    Value::record([("n", Value::U64(u64::from(i) + 1))]),
                )
                .unwrap();
            r2.lock().unwrap().push(v.as_u64().unwrap());
        }
    });
    sim.run();
    let results = std::mem::take(&mut *results.lock().unwrap());
    shape(&sim, results)
}

/// The poll-driven twin of the blocking client above.
struct PollClient {
    core: SessionCore,
    state: State,
    done: u32,
    results: Arc<Mutex<Vec<u64>>>,
}

enum State {
    Start,
    Binding(BindFuture),
    Calling(AsyncHandle, CallFuture),
}

impl Process for PollClient {
    fn poll(&mut self, cx: &mut ProcCx) -> Poll<()> {
        loop {
            match self.state {
                State::Start => {
                    let f = self.core.bind_async(cx, "adder");
                    self.state = State::Binding(f);
                }
                State::Binding(f) => match self.core.poll_bind(cx, f) {
                    Poll::Pending => return Poll::Pending,
                    Poll::Ready(h) => {
                        let h = h.unwrap();
                        let f = self.core.invoke_async(
                            cx,
                            h,
                            "add",
                            Value::record([("n", Value::U64(1))]),
                        );
                        self.state = State::Calling(h, f);
                    }
                },
                State::Calling(h, f) => match self.core.poll_call(cx, f) {
                    Poll::Pending => return Poll::Pending,
                    Poll::Ready(r) => {
                        let v = r.unwrap();
                        self.results.lock().unwrap().push(v.as_u64().unwrap());
                        self.done += 1;
                        if self.done == CALLS {
                            return Poll::Ready(());
                        }
                        let f = self.core.invoke_async(
                            cx,
                            h,
                            "add",
                            Value::record([("n", Value::U64(u64::from(self.done) + 1))]),
                        );
                        self.state = State::Calling(h, f);
                    }
                },
            }
        }
    }
}

fn polled_run(seed: u64) -> RunShape {
    let mut sim = Simulation::new(NetworkConfig::lan(), seed);
    let ns = naming::spawn_name_server(&sim, NodeId(0));
    ServiceBuilder::new("adder")
        .spec(ProxySpec::Stub)
        .object(|| Box::new(Adder(0)))
        .spawn(&sim, NodeId(1), ns);
    let results = Arc::new(Mutex::new(Vec::new()));
    sim.spawn_poll(
        "client",
        NodeId(2),
        PollClient {
            core: SessionCore::new(ns),
            state: State::Start,
            done: 0,
            results: Arc::clone(&results),
        },
    );
    sim.run();
    let results = std::mem::take(&mut *results.lock().unwrap());
    shape(&sim, results)
}

#[test]
fn blocking_session_and_poll_driven_twin_agree() {
    let blocking = blocking_run(7);
    let polled = polled_run(7);
    // Both surfaces drive the same workload: same running totals, the
    // service executed the same number of calls, the client issued the
    // same number of RPCs (1 lookup + CALLS invokes).
    assert_eq!(blocking, polled);
    assert_eq!(
        blocking.results,
        (1..=u64::from(CALLS))
            .scan(0, |acc, i| {
                *acc += i;
                Some(*acc)
            })
            .collect::<Vec<_>>()
    );
    assert_eq!(blocking.dispatched, u64::from(CALLS));
}

#[test]
fn async_surface_refuses_smart_proxy_specs() {
    // The non-blocking surface implements stub-grade bindings only; a
    // service that chose a caching proxy must be reported, not silently
    // downgraded to stub semantics.
    let mut sim = Simulation::new(NetworkConfig::lan(), 11);
    let ns = naming::spawn_name_server(&sim, NodeId(0));
    ServiceBuilder::new("cached")
        .spec(ProxySpec::Caching(proxy_core::CachingParams::default()))
        .object(|| Box::new(Adder(0)))
        .spawn(&sim, NodeId(1), ns);
    let refused = Arc::new(AtomicU64::new(0));
    let r2 = Arc::clone(&refused);
    let mut core = SessionCore::new(ns);
    let mut bind = None;
    sim.spawn_poll("client", NodeId(2), move |cx: &mut ProcCx| {
        let f = *bind.get_or_insert_with(|| core.bind_async(cx, "cached"));
        match core.poll_bind(cx, f) {
            Poll::Pending => Poll::Pending,
            Poll::Ready(Ok(_)) => panic!("caching spec must not bind through the async surface"),
            Poll::Ready(Err(e)) => {
                assert!(
                    e.to_string().contains("stub-grade"),
                    "unexpected error: {e}"
                );
                r2.fetch_add(1, Ordering::Relaxed);
                Poll::Ready(())
            }
        }
    });
    sim.run();
    assert_eq!(refused.load(Ordering::Relaxed), 1);
}
