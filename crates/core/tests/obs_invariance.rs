//! Merge determinism of the sharded observability registry, proved at
//! the full simulation level: for a fixed seed, the `RunReport` JSON
//! and the causal trace are byte-identical no matter how the registry
//! is sharded — the layout is a pure contention knob.
//!
//! Also: span retirement conserves every report aggregate exactly while
//! bounding the resident span table.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use proptest::prelude::*;
use proxy_core::{
    BindFuture, CallFuture, InterfaceDesc, OpDesc, ProxySpec, ServiceBuilder, ServiceObject,
    SessionCore,
};
use rpc::{ErrorCode, RemoteError};
use simnet::{NetworkConfig, NodeId, Poll, ProcCx, Process, Simulation};
use wire::Value;

const CLIENTS: u32 = 6;
const CALLS: u32 = 3;

/// A counter service: `add {n}` returns the running total.
struct Adder(u64);

impl ServiceObject for Adder {
    fn interface(&self) -> InterfaceDesc {
        InterfaceDesc::new("adder", [OpDesc::write_whole("add")])
    }

    fn dispatch(
        &mut self,
        _ctx: &mut simnet::Ctx,
        op: &str,
        args: &Value,
    ) -> Result<Value, RemoteError> {
        match op {
            "add" => {
                let n = args
                    .get_u64("n")
                    .map_err(|e| RemoteError::new(ErrorCode::BadArgs, e.to_string()))?;
                self.0 += n;
                Ok(Value::U64(self.0))
            }
            other => Err(RemoteError::new(ErrorCode::NoSuchOp, other.to_owned())),
        }
    }
}

struct Client {
    core: SessionCore,
    state: State,
    calls_done: u32,
    ok: Arc<AtomicU64>,
}

enum State {
    Start,
    Binding(BindFuture),
    Calling(proxy_core::AsyncHandle, CallFuture),
}

impl Process for Client {
    fn poll(&mut self, cx: &mut ProcCx) -> Poll<()> {
        loop {
            match self.state {
                State::Start => {
                    let f = self.core.bind_async(cx, "adder");
                    self.state = State::Binding(f);
                }
                State::Binding(f) => match self.core.poll_bind(cx, f) {
                    Poll::Pending => return Poll::Pending,
                    Poll::Ready(h) => {
                        let h = h.expect("bind succeeds");
                        let f = self.core.invoke_async(
                            cx,
                            h,
                            "add",
                            Value::record([("n", Value::U64(1))]),
                        );
                        self.state = State::Calling(h, f);
                    }
                },
                State::Calling(h, f) => match self.core.poll_call(cx, f) {
                    Poll::Pending => return Poll::Pending,
                    Poll::Ready(r) => {
                        r.expect("call succeeds");
                        self.ok.fetch_add(1, Ordering::Relaxed);
                        self.calls_done += 1;
                        if self.calls_done == CALLS {
                            return Poll::Ready(());
                        }
                        let f = self.core.invoke_async(
                            cx,
                            h,
                            "add",
                            Value::record([("n", Value::U64(1))]),
                        );
                        self.state = State::Calling(h, f);
                    }
                },
            }
        }
    }
}

/// FNV-1a over a string, for compact trace fingerprints.
fn fnv(s: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in s.as_bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// One full run; returns `(report JSON, trace hash, calls ok)`.
fn run(seed: u64, layout: Option<(usize, usize)>, retire: Option<u64>) -> (String, u64, u64) {
    let mut sim = Simulation::new(NetworkConfig::lan(), seed);
    if let Some((shards, stripes)) = layout {
        sim = sim.with_obs_layout(shards, stripes);
    }
    if let Some(keep_every) = retire {
        sim.obs().enable_retirement(keep_every);
    }
    sim.enable_trace(100_000);
    let ns = naming::spawn_name_server(&sim, NodeId(0));
    ServiceBuilder::new("adder")
        .spec(ProxySpec::Stub)
        .object(|| Box::new(Adder(0)))
        .spawn(&sim, NodeId(1), ns);
    let ok = Arc::new(AtomicU64::new(0));
    for i in 0..CLIENTS {
        sim.spawn_poll(
            format!("client-{i}"),
            NodeId(10 + i),
            Client {
                core: SessionCore::new(ns),
                state: State::Start,
                calls_done: 0,
                ok: Arc::clone(&ok),
            },
        );
    }
    sim.run();
    let json = sim.obs_report().to_json();
    let trace = sim.causal_trace();
    let trace_hash = fnv(&obs::to_jsonl(&trace));
    (json, trace_hash, ok.load(Ordering::Relaxed))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Same seed, shard layouts 1x1 / 4x2 / 16x8 → identical report
    /// bytes and identical causal trace.
    #[test]
    fn report_and_trace_invariant_across_layouts(seed in 0u64..10_000) {
        let (base_json, base_trace, base_ok) = run(seed, Some((1, 1)), None);
        prop_assert_eq!(base_ok, u64::from(CLIENTS * CALLS));
        for layout in [(4, 2), (16, 8)] {
            let (json, trace, ok) = run(seed, Some(layout), None);
            prop_assert_eq!(ok, base_ok);
            prop_assert_eq!(&json, &base_json, "layout {:?} changed the report", layout);
            prop_assert_eq!(trace, base_trace, "layout {:?} changed the trace", layout);
        }
    }
}

#[test]
fn default_layout_matches_single_shard() {
    let (a, ta, _) = run(1234, None, None);
    let (b, tb, _) = run(1234, Some((1, 1)), None);
    assert_eq!(a, b);
    assert_eq!(ta, tb);
}

#[test]
fn retirement_conserves_aggregates_and_bounds_residency() {
    let (plain, _, ok_a) = run(77, None, None);
    let (retired, _, ok_b) = run(77, None, Some(0));
    assert_eq!(ok_a, ok_b);
    let a = obs::json::parse(&plain).expect("parses");
    let b = obs::json::parse(&retired).expect("parses");
    // Everything the report aggregates is conserved exactly under
    // retirement: span totals, per-op latency percentiles, RPC and
    // network counters.
    for section in ["spans", "ops", "rpc", "net", "proxies", "servers"] {
        assert_eq!(
            a.get(section),
            b.get(section),
            "retirement changed the `{section}` section"
        );
    }
    // And the retiring run's table is bounded by what is still open
    // (everything closed was evicted; keep_every = 0 samples none).
    let obs_b = b.get("obs").expect("obs section");
    let allocated = a.get("spans").unwrap().u64_field("started").unwrap()
        + a.get("spans").unwrap().u64_field("oneways").unwrap();
    let resident = obs_b.u64_field("spans_resident").unwrap();
    let retired_count = obs_b.u64_field("spans_retired").unwrap();
    assert_eq!(retired_count + resident, allocated);
    assert!(
        retired_count > 0,
        "workload must actually retire spans to prove anything"
    );
    let open = a.get("spans").unwrap().u64_field("open").unwrap();
    assert_eq!(resident, open, "resident == open spans when keeping none");
}
