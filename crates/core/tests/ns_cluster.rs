//! Name-server cluster: replicas share one striped directory, so a
//! registration through any replica endpoint is visible to lookups
//! through every other, and clients spreading lookups by service-name
//! hash still resolve everything.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use proxy_core::{
    BindFuture, CallFuture, InterfaceDesc, OpDesc, ProxySpec, ServiceBuilder, ServiceObject,
    SessionCore,
};
use rpc::{ErrorCode, RemoteError};
use simnet::{Endpoint, NetworkConfig, NodeId, Poll, ProcCx, Process, Simulation};
use wire::Value;

/// Echoes its configured id.
struct Echo(u64);

impl ServiceObject for Echo {
    fn interface(&self) -> InterfaceDesc {
        InterfaceDesc::new("echo", [OpDesc::read_whole("get")])
    }

    fn dispatch(
        &mut self,
        _ctx: &mut simnet::Ctx,
        op: &str,
        _args: &Value,
    ) -> Result<Value, RemoteError> {
        match op {
            "get" => Ok(Value::U64(self.0)),
            other => Err(RemoteError::new(ErrorCode::NoSuchOp, other.to_owned())),
        }
    }
}

/// Binds one service through the replica set and calls `get` once.
struct ClusterClient {
    core: SessionCore,
    service: String,
    expect: u64,
    state: State,
    ok: Arc<AtomicU64>,
}

enum State {
    Start,
    Binding(BindFuture),
    Calling(CallFuture),
    Done,
}

impl Process for ClusterClient {
    fn poll(&mut self, cx: &mut ProcCx) -> Poll<()> {
        loop {
            match self.state {
                State::Start => {
                    let f = self.core.bind_async(cx, &self.service.clone());
                    self.state = State::Binding(f);
                }
                State::Binding(f) => match self.core.poll_bind(cx, f) {
                    Poll::Pending => return Poll::Pending,
                    Poll::Ready(h) => {
                        let h = h.expect("bind resolves through some replica");
                        let f = self.core.invoke_async(cx, h, "get", Value::Null);
                        self.state = State::Calling(f);
                    }
                },
                State::Calling(f) => match self.core.poll_call(cx, f) {
                    Poll::Pending => return Poll::Pending,
                    Poll::Ready(r) => {
                        let v = r.expect("call succeeds").as_u64().unwrap();
                        assert_eq!(v, self.expect, "bound to the right service");
                        self.ok.fetch_add(1, Ordering::Relaxed);
                        self.state = State::Done;
                        return Poll::Ready(());
                    }
                },
                State::Done => return Poll::Ready(()),
            }
        }
    }
}

const SERVICES: u64 = 12;

fn cluster_run(seed: u64, replicas: usize) -> (u64, String) {
    let mut sim = Simulation::new(NetworkConfig::lan(), seed);
    let ns_nodes: Vec<NodeId> = (0..replicas as u32).map(NodeId).collect();
    let cluster: Vec<Endpoint> = naming::spawn_name_cluster(&sim, &ns_nodes);
    // Register every service through a *different* replica endpoint:
    // the shared directory must make all of them visible everywhere.
    for i in 0..SERVICES {
        let reg_ep = cluster[(i as usize) % cluster.len()];
        ServiceBuilder::new(format!("echo-{i}"))
            .spec(ProxySpec::Stub)
            .object(move || Box::new(Echo(i)))
            .spawn(&sim, NodeId(replicas as u32 + i as u32), reg_ep);
    }
    let ok = Arc::new(AtomicU64::new(0));
    for i in 0..SERVICES {
        sim.spawn_poll(
            format!("client-{i}"),
            NodeId(100 + i as u32),
            ClusterClient {
                core: SessionCore::new(cluster[0]).with_ns_replicas(cluster.clone()),
                service: format!("echo-{i}"),
                expect: i,
                state: State::Start,
                ok: Arc::clone(&ok),
            },
        );
    }
    sim.run();
    let report = sim.obs_report();
    (ok.load(Ordering::Relaxed), report.to_json())
}

#[test]
fn cluster_resolves_cross_replica_registrations() {
    let (ok, _) = cluster_run(42, 3);
    assert_eq!(ok, SERVICES, "every client bound and called");
}

#[test]
fn cluster_runs_are_deterministic() {
    let (ok_a, json_a) = cluster_run(7, 4);
    let (ok_b, json_b) = cluster_run(7, 4);
    assert_eq!(ok_a, SERVICES);
    assert_eq!(ok_b, SERVICES);
    assert_eq!(json_a, json_b, "same seed, same cluster => same report");
}

#[test]
fn single_replica_cluster_matches_plain_server() {
    // A one-replica cluster is just the ordinary name server reached
    // through the cluster API; everything still resolves.
    let (ok, _) = cluster_run(11, 1);
    assert_eq!(ok, SERVICES);
}
