//! Tests of the client runtime's notification routing: one-way traffic
//! for proxy A arriving while proxy B is mid-call must reach A, never
//! be lost, and never corrupt B's call.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use naming::spawn_name_server;
use proxy_core::{
    CachingParams, ClientRuntime, Coherence, InterfaceDesc, OpDesc, ProxySpec, ServiceBuilder,
    ServiceObject,
};
use rpc::{ErrorCode, RemoteError};
use simnet::{Ctx, NetworkConfig, NodeId, Simulation};
use wire::Value;

/// KV whose reads can be made artificially slow, to hold a call open
/// while other traffic arrives.
struct SlowKv {
    map: BTreeMap<String, String>,
    read_delay: Duration,
}

impl ServiceObject for SlowKv {
    fn interface(&self) -> InterfaceDesc {
        InterfaceDesc::new(
            "slow-kv",
            [OpDesc::read("get", "key"), OpDesc::write("put", "key")],
        )
    }
    fn dispatch(&mut self, ctx: &mut Ctx, op: &str, args: &Value) -> Result<Value, RemoteError> {
        let key = args
            .get_str("key")
            .map_err(|e| RemoteError::new(ErrorCode::BadArgs, e.to_string()))?;
        match op {
            "get" => {
                if !self.read_delay.is_zero() {
                    let _ = ctx.sleep(self.read_delay);
                }
                Ok(self
                    .map
                    .get(key)
                    .map(|v| Value::str(v.clone()))
                    .unwrap_or(Value::Null))
            }
            "put" => {
                let v = args
                    .get_str("value")
                    .map_err(|e| RemoteError::new(ErrorCode::BadArgs, e.to_string()))?;
                self.map.insert(key.to_owned(), v.to_owned());
                Ok(Value::Null)
            }
            other => Err(RemoteError::new(ErrorCode::NoSuchOp, other.to_owned())),
        }
    }
}

#[test]
fn invalidation_for_proxy_a_arriving_during_call_to_b_is_routed() {
    let mut sim = Simulation::new(NetworkConfig::lan(), 10);
    let ns = spawn_name_server(&sim, NodeId(0));
    let caching = ProxySpec::Caching(CachingParams {
        coherence: Coherence::Invalidate,
        capacity: 64,
    });
    // Service A: fast kv, invalidation-coherent caching.
    ServiceBuilder::new("svc-a")
        .spec(caching.clone())
        .object(|| {
            Box::new(SlowKv {
                map: BTreeMap::new(),
                read_delay: Duration::ZERO,
            })
        })
        .spawn(&sim, NodeId(1), ns);
    // Service B: reads take 30ms, holding the observer's call open.
    ServiceBuilder::new("svc-b")
        .spec(caching)
        .object(|| {
            Box::new(SlowKv {
                map: BTreeMap::new(),
                read_delay: Duration::from_millis(30),
            })
        })
        .spawn(&sim, NodeId(2), ns);

    let observed = Arc::new(AtomicU64::new(0));
    let o2 = Arc::clone(&observed);
    sim.spawn("observer", NodeId(3), move |ctx| {
        let mut rt = ClientRuntime::new(ns);
        let a = rt.bind(ctx, "svc-a").unwrap();
        let b = rt.bind(ctx, "svc-b").unwrap();
        // Prime A's cache.
        rt.invoke(ctx, a, "put", kv("x", "old")).unwrap();
        assert_eq!(
            rt.invoke(ctx, a, "get", key("x")).unwrap(),
            Value::str("old")
        );
        // Long call to B (its RetryPolicy default timeout is 10ms, so
        // raise nothing: the call itself just takes 30ms of server time
        // — the stub retransmits and dedup suppresses; the reply
        // eventually arrives). During that window, the writer updates
        // A's key and the invalidation lands in OUR mailbox while we
        // wait on B. The runtime must hand it to proxy A.
        let _ = rt.invoke(ctx, b, "get", key("anything")).unwrap();
        // No sleeps: immediately read A again. If the invalidation was
        // lost, the stale cached "old" comes back.
        let v = rt.invoke(ctx, a, "get", key("x")).unwrap();
        assert_eq!(v, Value::str("new"), "invalidation was lost in transit");
        assert!(rt.stats(a).invalidations_rx >= 1);
        o2.store(1, Ordering::SeqCst);
    });
    sim.spawn("writer", NodeId(4), move |ctx| {
        // Fire while the observer is blocked on B (B's read takes 30ms
        // and starts ~6ms in; write at 15ms lands inside the window).
        ctx.sleep(Duration::from_millis(15)).unwrap();
        let mut rt = ClientRuntime::new(ns);
        let a = rt.bind(ctx, "svc-a").unwrap();
        rt.invoke(ctx, a, "put", kv("x", "new")).unwrap();
    });
    sim.run();
    assert_eq!(observed.load(Ordering::SeqCst), 1);
}

#[test]
fn pump_routes_notifications_while_idle() {
    let mut sim = Simulation::new(NetworkConfig::lan(), 11);
    let ns = spawn_name_server(&sim, NodeId(0));
    ServiceBuilder::new("svc-a")
        .spec(ProxySpec::Caching(CachingParams {
            coherence: Coherence::Invalidate,
            capacity: 64,
        }))
        .object(|| {
            Box::new(SlowKv {
                map: BTreeMap::new(),
                read_delay: Duration::ZERO,
            })
        })
        .spawn(&sim, NodeId(1), ns);
    sim.spawn("observer", NodeId(2), move |ctx| {
        let mut rt = ClientRuntime::new(ns);
        let a = rt.bind(ctx, "svc-a").unwrap();
        rt.invoke(ctx, a, "put", kv("x", "old")).unwrap();
        rt.invoke(ctx, a, "get", key("x")).unwrap(); // cached
                                                     // Go idle; a writer invalidates; pump (not invoke) processes it.
        ctx.sleep(Duration::from_millis(30)).unwrap();
        rt.pump(ctx);
        assert_eq!(rt.stats(a).invalidations_rx, 1, "pump did not route");
        assert_eq!(
            rt.invoke(ctx, a, "get", key("x")).unwrap(),
            Value::str("new")
        );
    });
    sim.spawn("writer", NodeId(3), move |ctx| {
        ctx.sleep(Duration::from_millis(10)).unwrap();
        let mut rt = ClientRuntime::new(ns);
        let a = rt.bind(ctx, "svc-a").unwrap();
        rt.invoke(ctx, a, "put", kv("x", "new")).unwrap();
    });
    sim.run();
}

fn kv(k: &str, v: &str) -> Value {
    Value::record([("key", Value::str(k)), ("value", Value::str(v))])
}

fn key(k: &str) -> Value {
    Value::record([("key", Value::str(k))])
}
