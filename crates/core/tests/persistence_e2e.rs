//! Crash/recovery tests: checkpointing to stable storage, restart from
//! the last checkpoint, and transparent client recovery through the
//! binding protocol.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use naming::spawn_name_server;
use proxy_core::{
    CheckpointPolicy, ClientRuntime, FactoryRegistry, InterfaceDesc, OpDesc, ProxySpec,
    ServiceBuilder, ServiceObject, StableStore,
};
use rpc::{ErrorCode, RemoteError, RpcError};
use simnet::{Ctx, NetworkConfig, NodeId, Simulation};
use wire::Value;

#[derive(Debug, Default)]
struct Kv(BTreeMap<String, String>);

impl Kv {
    fn from_snapshot(v: &Value) -> Result<Box<dyn ServiceObject>, RemoteError> {
        let mut kv = Kv::default();
        if let Some(fields) = v.as_record() {
            for (k, val) in fields {
                if let Some(s) = val.as_str() {
                    kv.0.insert(k.to_string_owned(), s.to_owned());
                }
            }
        }
        Ok(Box::new(kv))
    }
}

impl ServiceObject for Kv {
    fn interface(&self) -> InterfaceDesc {
        InterfaceDesc::new(
            "pkv",
            [OpDesc::read("get", "key"), OpDesc::write("put", "key")],
        )
    }
    fn dispatch(&mut self, _ctx: &mut Ctx, op: &str, args: &Value) -> Result<Value, RemoteError> {
        let key = args
            .get_str("key")
            .map_err(|e| RemoteError::new(ErrorCode::BadArgs, e.to_string()))?;
        match op {
            "get" => Ok(self
                .0
                .get(key)
                .map(|v| Value::str(v.clone()))
                .unwrap_or(Value::Null)),
            "put" => {
                let v = args
                    .get_str("value")
                    .map_err(|e| RemoteError::new(ErrorCode::BadArgs, e.to_string()))?;
                self.0.insert(key.to_owned(), v.to_owned());
                Ok(Value::Null)
            }
            other => Err(RemoteError::new(ErrorCode::NoSuchOp, other.to_owned())),
        }
    }
    fn snapshot(&self) -> Result<Value, RemoteError> {
        Ok(Value::record(
            self.0
                .iter()
                .map(|(k, v)| (k.clone(), Value::str(v.clone()))),
        ))
    }
}

fn factories() -> FactoryRegistry {
    FactoryRegistry::new().register("pkv", Kv::from_snapshot)
}

fn put(rt: &mut ClientRuntime, ctx: &mut Ctx, h: proxy_core::ProxyHandle, k: &str, v: &str) {
    rt.invoke(
        ctx,
        h,
        "put",
        Value::record([("key", Value::str(k)), ("value", Value::str(v))]),
    )
    .unwrap();
}

fn get(
    rt: &mut ClientRuntime,
    ctx: &mut Ctx,
    h: proxy_core::ProxyHandle,
    k: &str,
) -> Result<Value, RpcError> {
    rt.invoke(ctx, h, "get", Value::record([("key", Value::str(k))]))
}

#[test]
fn checkpoints_are_written_on_schedule() {
    let mut sim = Simulation::new(NetworkConfig::lan(), 1);
    let ns = spawn_name_server(&sim, NodeId(0));
    let store = StableStore::new();
    let s2 = store.clone();
    ServiceBuilder::new("kv")
        .factories(factories())
        .recovered(CheckpointPolicy::every(store.clone(), 3))
        .object(|| Box::new(Kv::default()))
        .spawn(&sim, NodeId(1), ns);
    sim.spawn("client", NodeId(2), move |ctx| {
        let mut rt = ClientRuntime::new(ns);
        let kv = rt.bind(ctx, "kv").unwrap();
        // 2 writes: below the interval, no checkpoint yet.
        put(&mut rt, ctx, kv, "a", "1");
        put(&mut rt, ctx, kv, "b", "2");
        assert!(s2.load(NodeId(1), "kv").is_none());
        // Third write crosses the interval.
        put(&mut rt, ctx, kv, "c", "3");
        let snap = s2.load(NodeId(1), "kv").expect("checkpoint missing");
        assert_eq!(snap.get("c").and_then(Value::as_str), Some("3"));
    });
    sim.run();
}

#[test]
fn crash_restart_recovers_last_checkpoint_and_clients_rebind() {
    let mut sim = Simulation::new(NetworkConfig::lan(), 2);
    let ns = spawn_name_server(&sim, NodeId(0));
    let store = StableStore::new();

    let old_incarnation = ServiceBuilder::new("kv")
        .factories(factories())
        .recovered(CheckpointPolicy::every(store.clone(), 2))
        .object(|| Box::new(Kv::default()))
        .spawn(&sim, NodeId(1), ns);

    let verified = Arc::new(AtomicU64::new(0));
    let v2 = Arc::clone(&verified);
    let store2 = store.clone();
    sim.spawn("client", NodeId(2), move |ctx| {
        let mut rt = ClientRuntime::new(ns);
        let kv = rt.bind(ctx, "kv").unwrap();
        put(&mut rt, ctx, kv, "a", "1");
        put(&mut rt, ctx, kv, "b", "2"); // checkpoint happens here
        put(&mut rt, ctx, kv, "c", "3"); // NOT yet checkpointed

        // ── Crash: the service process dies (volatile state gone). ──
        assert!(ctx.kill(old_incarnation));
        match get(&mut rt, ctx, kv, "a") {
            Err(RpcError::Timeout { .. }) => {}
            other => panic!("expected timeout during outage, got {other:?}"),
        }

        // ── Recovery: a fresh incarnation restarts on the same node
        //    from the last checkpoint and re-registers. ─────────────
        let f = factories();
        let policy = CheckpointPolicy::every(store2.clone(), 2);
        ctx.spawn("svc-kv-reborn", NodeId(1), move |sctx| {
            let default: Box<dyn ServiceObject> = Box::new(Kv::default());
            let object = match policy.store.load(sctx.node(), "kv") {
                Some(snapshot) => f.create("pkv", &snapshot).unwrap_or(default),
                None => default,
            };
            proxy_core::ServiceServer::new("kv", object, ProxySpec::Stub)
                .with_factories(f)
                .with_checkpointing(policy)
                .run(sctx, ns);
        });
        ctx.sleep(Duration::from_millis(10)).unwrap();

        // The stub proxy re-resolves through naming after its timeout:
        // same proxy handle, new incarnation.
        assert_eq!(get(&mut rt, ctx, kv, "a").unwrap(), Value::str("1"));
        assert_eq!(get(&mut rt, ctx, kv, "b").unwrap(), Value::str("2"));
        // Classic checkpoint semantics: the uncheckpointed write is gone.
        assert_eq!(get(&mut rt, ctx, kv, "c").unwrap(), Value::Null);
        assert!(rt.stats(kv).rebinds >= 1, "proxy should have re-resolved");
        v2.store(1, Ordering::SeqCst);
    });
    sim.run();
    assert_eq!(verified.load(Ordering::SeqCst), 1);
}

#[test]
fn recovery_with_empty_store_starts_fresh() {
    let mut sim = Simulation::new(NetworkConfig::lan(), 3);
    let ns = spawn_name_server(&sim, NodeId(0));
    let store = StableStore::new();
    ServiceBuilder::new("kv")
        .factories(factories())
        .recovered(CheckpointPolicy::every(store, 5))
        .object(|| {
            let mut kv = Kv::default();
            kv.0.insert("seeded".into(), "yes".into());
            Box::new(kv)
        })
        .spawn(&sim, NodeId(1), ns);
    sim.spawn("client", NodeId(2), move |ctx| {
        let mut rt = ClientRuntime::new(ns);
        let kv = rt.bind(ctx, "kv").unwrap();
        assert_eq!(get(&mut rt, ctx, kv, "seeded").unwrap(), Value::str("yes"));
    });
    sim.run();
}

#[test]
fn checkpoints_are_per_node() {
    let mut sim = Simulation::new(NetworkConfig::lan(), 4);
    let ns = spawn_name_server(&sim, NodeId(0));
    let store = StableStore::new();
    // Two services with the same name-prefix on different nodes must not
    // clobber each other's checkpoints.
    for (node, svc) in [(1u32, "kv-a"), (2, "kv-b")] {
        ServiceBuilder::new(svc)
            .factories(factories())
            .recovered(CheckpointPolicy::every(store.clone(), 1))
            .object(|| Box::new(Kv::default()))
            .spawn(&sim, NodeId(node), ns);
    }
    let s2 = store.clone();
    sim.spawn("client", NodeId(3), move |ctx| {
        let mut rt = ClientRuntime::new(ns);
        let a = rt.bind(ctx, "kv-a").unwrap();
        let b = rt.bind(ctx, "kv-b").unwrap();
        put(&mut rt, ctx, a, "x", "from-a");
        put(&mut rt, ctx, b, "x", "from-b");
        let snap_a = s2.load(NodeId(1), "kv-a").unwrap();
        let snap_b = s2.load(NodeId(2), "kv-b").unwrap();
        assert_eq!(snap_a.get("x").and_then(Value::as_str), Some("from-a"));
        assert_eq!(snap_b.get("x").and_then(Value::as_str), Some("from-b"));
    });
    sim.run();
}
