//! End-to-end tests of the proxy zoo: every strategy exercised over the
//! simulated network, through the real binding protocol.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use naming::spawn_name_server;
use proxy_core::{
    AdaptiveParams, CachingParams, ClientRuntime, Coherence, DiscardStrays, FactoryRegistry,
    InterfaceDesc, OpDesc, Proxy, ProxySpec, ServiceBuilder, ServiceObject,
};
use rpc::{ErrorCode, RemoteError};
use simnet::{Ctx, NetworkConfig, NodeId, Simulation};
use wire::Value;

/// A key-value object used by most tests.
#[derive(Debug, Default)]
struct Kv {
    map: BTreeMap<String, String>,
    /// Counts real dispatches, shared with the test for assertions.
    dispatches: Option<Arc<AtomicU64>>,
}

impl Kv {
    fn iface() -> InterfaceDesc {
        InterfaceDesc::new(
            "kv",
            [
                OpDesc::read("get", "key"),
                OpDesc::write("put", "key"),
                OpDesc::read_whole("len"),
            ],
        )
    }

    fn with_counter(c: Arc<AtomicU64>) -> Kv {
        Kv {
            map: BTreeMap::new(),
            dispatches: Some(c),
        }
    }

    fn from_snapshot(v: &Value) -> Result<Box<dyn ServiceObject>, RemoteError> {
        let mut kv = Kv::default();
        if let Some(fields) = v.as_record() {
            for (k, val) in fields {
                if let Some(s) = val.as_str() {
                    kv.map.insert(k.to_string_owned(), s.to_owned());
                }
            }
        }
        Ok(Box::new(kv))
    }
}

impl ServiceObject for Kv {
    fn interface(&self) -> InterfaceDesc {
        Kv::iface()
    }

    fn dispatch(&mut self, _ctx: &mut Ctx, op: &str, args: &Value) -> Result<Value, RemoteError> {
        if let Some(c) = &self.dispatches {
            c.fetch_add(1, Ordering::SeqCst);
        }
        match op {
            "get" => {
                let key = args
                    .get_str("key")
                    .map_err(|e| RemoteError::new(ErrorCode::BadArgs, e.to_string()))?;
                Ok(self
                    .map
                    .get(key)
                    .map(|v| Value::str(v.clone()))
                    .unwrap_or(Value::Null))
            }
            "put" => {
                let key = args
                    .get_str("key")
                    .map_err(|e| RemoteError::new(ErrorCode::BadArgs, e.to_string()))?;
                let value = args
                    .get_str("value")
                    .map_err(|e| RemoteError::new(ErrorCode::BadArgs, e.to_string()))?;
                self.map.insert(key.to_owned(), value.to_owned());
                Ok(Value::Null)
            }
            "len" => Ok(Value::U64(self.map.len() as u64)),
            other => Err(RemoteError::new(ErrorCode::NoSuchOp, other.to_owned())),
        }
    }

    fn snapshot(&self) -> Result<Value, RemoteError> {
        Ok(Value::record(
            self.map
                .iter()
                .map(|(k, v)| (k.clone(), Value::str(v.clone()))),
        ))
    }
}

fn get_args(key: &str) -> Value {
    Value::record([("key", Value::str(key))])
}

fn put_args(key: &str, value: &str) -> Value {
    Value::record([("key", Value::str(key)), ("value", Value::str(value))])
}

#[test]
fn stub_proxy_forwards_everything() {
    let mut sim = Simulation::new(NetworkConfig::lan(), 1);
    let ns = spawn_name_server(&sim, NodeId(0));
    ServiceBuilder::new("kv")
        .object(|| Box::new(Kv::default()))
        .spawn(&sim, NodeId(1), ns);
    sim.spawn("client", NodeId(2), move |ctx| {
        let mut rt = ClientRuntime::new(ns);
        let kv = rt.bind(ctx, "kv").unwrap();
        rt.invoke(ctx, kv, "put", put_args("a", "1")).unwrap();
        for _ in 0..5 {
            assert_eq!(
                rt.invoke(ctx, kv, "get", get_args("a")).unwrap(),
                Value::str("1")
            );
        }
        let s = rt.stats(kv);
        assert_eq!(s.invocations, 6);
        assert_eq!(s.remote_calls, 6, "stub never answers locally");
        assert_eq!(s.local_hits, 0);
    });
    sim.run();
}

#[test]
fn caching_proxy_hits_after_first_read() {
    let mut sim = Simulation::new(NetworkConfig::lan(), 2);
    let ns = spawn_name_server(&sim, NodeId(0));
    let dispatches = Arc::new(AtomicU64::new(0));
    let d = Arc::clone(&dispatches);
    ServiceBuilder::new("kv")
        .spec(ProxySpec::Caching(CachingParams {
            coherence: Coherence::Invalidate,
            capacity: 64,
        }))
        .object(move || Box::new(Kv::with_counter(d)))
        .spawn(&sim, NodeId(1), ns);
    sim.spawn("client", NodeId(2), move |ctx| {
        let mut rt = ClientRuntime::new(ns);
        let kv = rt.bind(ctx, "kv").unwrap();
        rt.invoke(ctx, kv, "put", put_args("a", "1")).unwrap();
        for _ in 0..10 {
            assert_eq!(
                rt.invoke(ctx, kv, "get", get_args("a")).unwrap(),
                Value::str("1")
            );
        }
        let s = rt.stats(kv);
        assert_eq!(s.local_hits, 9, "all but the first read are cache hits");
        assert_eq!(s.remote_calls, 2, "one put + one fill");
    });
    sim.run();
    assert_eq!(dispatches.load(Ordering::SeqCst), 2);
}

#[test]
fn caching_proxy_reads_own_writes() {
    let mut sim = Simulation::new(NetworkConfig::lan(), 3);
    let ns = spawn_name_server(&sim, NodeId(0));
    ServiceBuilder::new("kv")
        .spec(ProxySpec::Caching(CachingParams::default()))
        .object(|| Box::new(Kv::default()))
        .spawn(&sim, NodeId(1), ns);
    sim.spawn("client", NodeId(2), move |ctx| {
        let mut rt = ClientRuntime::new(ns);
        let kv = rt.bind(ctx, "kv").unwrap();
        rt.invoke(ctx, kv, "put", put_args("a", "1")).unwrap();
        assert_eq!(
            rt.invoke(ctx, kv, "get", get_args("a")).unwrap(),
            Value::str("1")
        );
        // The write must drop the cached read so this sees the new value.
        rt.invoke(ctx, kv, "put", put_args("a", "2")).unwrap();
        assert_eq!(
            rt.invoke(ctx, kv, "get", get_args("a")).unwrap(),
            Value::str("2"),
            "stale cached value returned after own write"
        );
    });
    sim.run();
}

#[test]
fn invalidations_propagate_between_clients() {
    let mut sim = Simulation::new(NetworkConfig::lan(), 4);
    let ns = spawn_name_server(&sim, NodeId(0));
    ServiceBuilder::new("kv")
        .spec(ProxySpec::Caching(CachingParams {
            coherence: Coherence::Invalidate,
            capacity: 64,
        }))
        .object(|| Box::new(Kv::default()))
        .spawn(&sim, NodeId(1), ns);
    let reader_saw = Arc::new(AtomicU64::new(0));
    let rs = Arc::clone(&reader_saw);
    // Reader caches "a", then waits; writer updates "a"; reader must see
    // the new value after the invalidation arrives.
    sim.spawn("reader", NodeId(2), move |ctx| {
        let mut rt = ClientRuntime::new(ns);
        let kv = rt.bind(ctx, "kv").unwrap();
        rt.invoke(ctx, kv, "put", put_args("a", "old")).unwrap();
        assert_eq!(
            rt.invoke(ctx, kv, "get", get_args("a")).unwrap(),
            Value::str("old")
        );
        // Wait long enough for the writer (starts at 20ms) to write and
        // the invalidation to arrive.
        ctx.sleep(Duration::from_millis(50)).unwrap();
        let v = rt.invoke(ctx, kv, "get", get_args("a")).unwrap();
        assert_eq!(v, Value::str("new"), "stale read after invalidation");
        let s = rt.stats(kv);
        assert!(s.invalidations_rx >= 1, "invalidation was not processed");
        rs.store(1, Ordering::SeqCst);
    });
    sim.spawn("writer", NodeId(3), move |ctx| {
        ctx.sleep(Duration::from_millis(20)).unwrap();
        let mut rt = ClientRuntime::new(ns);
        let kv = rt.bind(ctx, "kv").unwrap();
        rt.invoke(ctx, kv, "put", put_args("a", "new")).unwrap();
    });
    sim.run();
    assert_eq!(reader_saw.load(Ordering::SeqCst), 1);
}

#[test]
fn lease_coherence_expires_entries() {
    let mut sim = Simulation::new(NetworkConfig::lan(), 5);
    let ns = spawn_name_server(&sim, NodeId(0));
    let dispatches = Arc::new(AtomicU64::new(0));
    let d = Arc::clone(&dispatches);
    ServiceBuilder::new("kv")
        .spec(ProxySpec::Caching(CachingParams {
            coherence: Coherence::Lease(Duration::from_millis(5)),
            capacity: 64,
        }))
        .object(move || Box::new(Kv::with_counter(d)))
        .spawn(&sim, NodeId(1), ns);
    sim.spawn("client", NodeId(2), move |ctx| {
        let mut rt = ClientRuntime::new(ns);
        let kv = rt.bind(ctx, "kv").unwrap();
        rt.invoke(ctx, kv, "put", put_args("a", "1")).unwrap();
        // Fill, then hit within the lease.
        rt.invoke(ctx, kv, "get", get_args("a")).unwrap();
        rt.invoke(ctx, kv, "get", get_args("a")).unwrap();
        assert_eq!(rt.stats(kv).local_hits, 1);
        // After the lease expires the next read must refetch.
        ctx.sleep(Duration::from_millis(6)).unwrap();
        rt.invoke(ctx, kv, "get", get_args("a")).unwrap();
        assert_eq!(rt.stats(kv).local_hits, 1, "expired entry served");
        assert_eq!(rt.stats(kv).remote_calls, 3);
    });
    sim.run();
}

#[test]
fn cache_capacity_is_bounded() {
    let mut sim = Simulation::new(NetworkConfig::lan(), 6);
    let ns = spawn_name_server(&sim, NodeId(0));
    ServiceBuilder::new("kv")
        .spec(ProxySpec::Caching(CachingParams {
            coherence: Coherence::Invalidate,
            capacity: 4,
        }))
        .object(|| Box::new(Kv::default()))
        .spawn(&sim, NodeId(1), ns);
    sim.spawn("client", NodeId(2), move |ctx| {
        let mut rt = ClientRuntime::new(ns);
        let kv = rt.bind(ctx, "kv").unwrap();
        for i in 0..16 {
            let k = format!("k{i}");
            rt.invoke(ctx, kv, "put", put_args(&k, "v")).unwrap();
            rt.invoke(ctx, kv, "get", get_args(&k)).unwrap();
        }
        // Only the 4 most recent entries can be hits.
        let mut hits = 0;
        for i in 0..16 {
            let before = rt.stats(kv).local_hits;
            rt.invoke(ctx, kv, "get", get_args(&format!("k{i}")))
                .unwrap();
            if rt.stats(kv).local_hits > before {
                hits += 1;
            }
        }
        assert!(hits <= 4, "cache held more than its capacity: {hits}");
    });
    sim.run();
}

#[test]
fn migratory_proxy_localizes_after_threshold() {
    let mut sim = Simulation::new(NetworkConfig::lan(), 7);
    let ns = spawn_name_server(&sim, NodeId(0));
    let factories = FactoryRegistry::new().register("kv", Kv::from_snapshot);
    ServiceBuilder::new("kv")
        .spec(ProxySpec::Migratory { threshold: 5 })
        .factories(factories.clone())
        .object(|| Box::new(Kv::default()))
        .spawn(&sim, NodeId(1), ns);
    sim.spawn("client", NodeId(2), move |ctx| {
        let mut rt = ClientRuntime::new(ns).with_factories(factories);
        let kv = rt.bind(ctx, "kv").unwrap();
        rt.invoke(ctx, kv, "put", put_args("a", "1")).unwrap();
        for _ in 0..20 {
            assert_eq!(
                rt.invoke(ctx, kv, "get", get_args("a")).unwrap(),
                Value::str("1")
            );
        }
        let s = rt.stats(kv);
        assert_eq!(s.migrations, 1, "object should have been checked out");
        assert!(
            s.local_hits >= 15,
            "post-migration calls must be local: {s:?}"
        );
        // State written before migration survived the move.
        assert_eq!(
            rt.invoke(ctx, kv, "len", Value::Null).unwrap(),
            Value::U64(1)
        );
    });
    sim.run();
}

#[test]
fn migratory_object_recalled_for_second_client() {
    let mut sim = Simulation::new(NetworkConfig::lan(), 8);
    let ns = spawn_name_server(&sim, NodeId(0));
    let factories = FactoryRegistry::new().register("kv", Kv::from_snapshot);
    ServiceBuilder::new("kv")
        .spec(ProxySpec::Migratory { threshold: 2 })
        .factories(factories.clone())
        .object(|| Box::new(Kv::default()))
        .spawn(&sim, NodeId(1), ns);
    let b_done = Arc::new(AtomicU64::new(0));
    let bd = Arc::clone(&b_done);

    let fa = factories.clone();
    sim.spawn("client-a", NodeId(2), move |ctx| {
        let mut rt = ClientRuntime::new(ns).with_factories(fa);
        let kv = rt.bind(ctx, "kv").unwrap();
        // Trigger migration to A.
        rt.invoke(ctx, kv, "put", put_args("a", "from-a")).unwrap();
        for _ in 0..5 {
            rt.invoke(ctx, kv, "get", get_args("a")).unwrap();
        }
        assert_eq!(rt.stats(kv).migrations, 1);
        // Keep invoking slowly; the recall arrives during this window and
        // must be honoured (checkin) so client B can proceed. Once B has
        // the object checked out, our own calls may bounce Unavailable —
        // that is the protocol working, so retry.
        for _ in 0..40 {
            ctx.sleep(Duration::from_millis(2)).unwrap();
            match rt.invoke(ctx, kv, "get", get_args("a")) {
                Ok(v) => assert_eq!(v, Value::str("from-a")),
                Err(rpc::RpcError::Remote(ref e)) if e.code == ErrorCode::Unavailable => {}
                Err(e) => panic!("unexpected error: {e}"),
            }
        }
        assert!(rt.stats(kv).checkins >= 1, "recall was never honoured");
    });
    let fb = factories;
    sim.spawn("client-b", NodeId(3), move |ctx| {
        ctx.sleep(Duration::from_millis(30)).unwrap();
        let mut rt = ClientRuntime::new(ns).with_factories(fb);
        let kv = rt.bind(ctx, "kv").unwrap();
        // The object is checked out to A; our calls bounce with
        // Unavailable until A checks in. Retry with backoff.
        let mut value = None;
        for _ in 0..100 {
            match rt.invoke(ctx, kv, "get", get_args("a")) {
                Ok(v) => {
                    value = Some(v);
                    break;
                }
                Err(rpc::RpcError::Remote(ref e)) if e.code == ErrorCode::Unavailable => {
                    ctx.sleep(Duration::from_millis(3)).unwrap();
                }
                Err(e) => panic!("unexpected error: {e}"),
            }
        }
        assert_eq!(value, Some(Value::str("from-a")), "state lost in transfer");
        bd.store(1, Ordering::SeqCst);
    });
    sim.run();
    assert_eq!(b_done.load(Ordering::SeqCst), 1);
}

#[test]
fn adaptive_proxy_switches_with_workload() {
    let mut sim = Simulation::new(NetworkConfig::lan(), 9);
    let ns = spawn_name_server(&sim, NodeId(0));
    ServiceBuilder::new("kv")
        .spec(ProxySpec::Adaptive(AdaptiveParams {
            window: 20,
            enable_at: 0.8,
            disable_at: 0.4,
            caching: CachingParams {
                coherence: Coherence::Invalidate,
                capacity: 64,
            },
        }))
        .object(|| Box::new(Kv::default()))
        .spawn(&sim, NodeId(1), ns);
    sim.spawn("client", NodeId(2), move |ctx| {
        let mut rt = ClientRuntime::new(ns);
        let kv = rt.bind(ctx, "kv").unwrap();
        rt.invoke(ctx, kv, "put", put_args("a", "1")).unwrap();

        // Phase 1: read-heavy — caching should engage and produce hits.
        for _ in 0..60 {
            rt.invoke(ctx, kv, "get", get_args("a")).unwrap();
        }
        let after_reads = rt.stats(kv);
        assert!(after_reads.strategy_switches >= 1, "never enabled caching");
        assert!(after_reads.local_hits > 20, "caching produced no hits");

        // Phase 2: write-heavy — caching should disengage.
        for i in 0..60 {
            rt.invoke(ctx, kv, "put", put_args("a", &format!("v{i}")))
                .unwrap();
        }
        let after_writes = rt.stats(kv);
        assert!(
            after_writes.strategy_switches >= 2,
            "never disabled caching: {after_writes:?}"
        );
        // Correctness throughout: final read sees last write.
        assert_eq!(
            rt.invoke(ctx, kv, "get", get_args("a")).unwrap(),
            Value::str("v59")
        );
    });
    sim.run();
}

#[test]
fn service_switches_spec_without_client_change() {
    // The encapsulation claim: the same client code works when the
    // service changes its published proxy from stub to caching.
    fn client_workload(rt: &mut ClientRuntime, ctx: &mut Ctx) -> u64 {
        let kv = rt.bind(ctx, "kv").unwrap();
        rt.invoke(ctx, kv, "put", put_args("a", "1")).unwrap();
        for _ in 0..20 {
            assert_eq!(
                rt.invoke(ctx, kv, "get", get_args("a")).unwrap(),
                Value::str("1")
            );
        }
        rt.stats(kv).remote_calls
    }

    let mut remote_calls = Vec::new();
    for (seed, spec) in [
        (10u64, ProxySpec::Stub),
        (
            11,
            ProxySpec::Caching(CachingParams {
                coherence: Coherence::Invalidate,
                capacity: 64,
            }),
        ),
    ] {
        let mut sim = Simulation::new(NetworkConfig::lan(), seed);
        let ns = spawn_name_server(&sim, NodeId(0));
        ServiceBuilder::new("kv")
            .spec(spec)
            .object(|| Box::new(Kv::default()))
            .spawn(&sim, NodeId(1), ns);
        let calls = Arc::new(AtomicU64::new(0));
        let c = Arc::clone(&calls);
        sim.spawn("client", NodeId(2), move |ctx| {
            let mut rt = ClientRuntime::new(ns);
            c.store(client_workload(&mut rt, ctx), Ordering::SeqCst);
        });
        sim.run();
        remote_calls.push(calls.load(Ordering::SeqCst));
    }
    assert_eq!(remote_calls[0], 21, "stub: every call remote");
    assert_eq!(remote_calls[1], 2, "caching: put + one fill");
}

#[test]
fn custom_proxy_kind_via_factory() {
    use proxy_core::{OnewaySink, Proxy, ProxyStats};

    /// A trivial custom proxy that counts invocations and forwards via a
    /// nested stub.
    struct CountingProxy {
        inner: proxy_core::proxies::StubProxy,
        count: Arc<AtomicU64>,
    }
    impl Proxy for CountingProxy {
        fn service(&self) -> &str {
            self.inner.service()
        }
        fn invoke(
            &mut self,
            ctx: &mut Ctx,
            op: &str,
            args: Value,
            strays: &mut dyn OnewaySink,
        ) -> Result<Value, rpc::RpcError> {
            self.count.fetch_add(1, Ordering::SeqCst);
            self.inner.invoke(ctx, op, args, strays)
        }
        fn stats(&self) -> ProxyStats {
            self.inner.stats()
        }
    }

    let mut sim = Simulation::new(NetworkConfig::lan(), 12);
    let ns = spawn_name_server(&sim, NodeId(0));
    ServiceBuilder::new("kv")
        .spec(ProxySpec::Custom {
            kind: "counting".into(),
            params: Value::Null,
        })
        .object(|| Box::new(Kv::default()))
        .spawn(&sim, NodeId(1), ns);
    let count = Arc::new(AtomicU64::new(0));
    let c = Arc::clone(&count);
    sim.spawn("client", NodeId(2), move |ctx| {
        let mut rt = ClientRuntime::new(ns);
        let c2 = Arc::clone(&c);
        rt.binder_mut().register_proxy("counting", move |_ctx, bc| {
            Ok(Box::new(CountingProxy {
                inner: proxy_core::proxies::StubProxy::new(bc.service, bc.record.endpoint, bc.ns),
                count: Arc::clone(&c2),
            }))
        });
        let kv = rt.bind(ctx, "kv").unwrap();
        for _ in 0..7 {
            rt.invoke(ctx, kv, "len", Value::Null).unwrap();
        }
    });
    sim.run();
    assert_eq!(count.load(Ordering::SeqCst), 7);
}

#[test]
fn unknown_custom_kind_fails_bind() {
    let mut sim = Simulation::new(NetworkConfig::lan(), 13);
    let ns = spawn_name_server(&sim, NodeId(0));
    ServiceBuilder::new("kv")
        .spec(ProxySpec::Custom {
            kind: "alien".into(),
            params: Value::Null,
        })
        .object(|| Box::new(Kv::default()))
        .spawn(&sim, NodeId(1), ns);
    sim.spawn("client", NodeId(2), move |ctx| {
        let mut rt = ClientRuntime::new(ns);
        let err = rt.bind(ctx, "kv").unwrap_err();
        match err {
            rpc::RpcError::Remote(e) => assert_eq!(e.code, ErrorCode::Unavailable),
            other => panic!("unexpected error {other:?}"),
        }
    });
    sim.run();
}

#[test]
fn stub_invoke_many_pipelines_calls() {
    let mut sim = Simulation::new(NetworkConfig::lan(), 21);
    let ns = spawn_name_server(&sim, NodeId(0));
    let dispatches = Arc::new(AtomicU64::new(0));
    let d = Arc::clone(&dispatches);
    let server = ServiceBuilder::new("kv")
        .object(move || Box::new(Kv::with_counter(Arc::clone(&d))))
        .spawn(&sim, NodeId(1), ns);
    sim.spawn("client", NodeId(2), move |ctx| {
        let mut stub = proxy_core::proxies::StubProxy::new("kv", server, ns);
        let cfg = rpc::ChannelConfig::with_depth(8).batched(4);
        let keys: Vec<String> = (0..8).map(|i| format!("k{i}")).collect();

        let puts: Vec<(&str, Value)> = keys
            .iter()
            .map(|k| ("put", put_args(k, &format!("v-{k}"))))
            .collect();
        let results = stub
            .invoke_many(ctx, &puts, cfg.clone(), &mut DiscardStrays)
            .unwrap();
        assert_eq!(results.len(), 8);
        for r in &results {
            assert_eq!(*r.as_ref().unwrap(), Value::Null);
        }

        // A second pipelined round reads everything back: results come
        // out in call order even though the wire work overlapped.
        let gets: Vec<(&str, Value)> = keys.iter().map(|k| ("get", get_args(k))).collect();
        let results = stub
            .invoke_many(ctx, &gets, cfg, &mut DiscardStrays)
            .unwrap();
        for (k, r) in keys.iter().zip(&results) {
            assert_eq!(*r.as_ref().unwrap(), Value::str(format!("v-{k}")));
        }

        let s = stub.stats();
        assert_eq!(s.invocations, 16);
        assert_eq!(s.remote_calls, 16);
    });
    sim.run();
    assert_eq!(
        dispatches.load(Ordering::SeqCst),
        16,
        "each pipelined call dispatched exactly once"
    );
}

#[test]
fn caching_write_behind_reads_own_writes_and_drains_on_detach() {
    let mut sim = Simulation::new(NetworkConfig::lan(), 22);
    let ns = spawn_name_server(&sim, NodeId(0));
    let dispatches = Arc::new(AtomicU64::new(0));
    let d = Arc::clone(&dispatches);
    let server = ServiceBuilder::new("kv")
        .object(move || Box::new(Kv::with_counter(Arc::clone(&d))))
        .spawn(&sim, NodeId(1), ns);
    sim.spawn("client", NodeId(2), move |ctx| {
        let mut p = proxy_core::proxies::CachingProxy::bind(
            ctx,
            "kv",
            server,
            ns,
            Kv::iface(),
            CachingParams::default(),
        )
        .unwrap();
        p.enable_write_behind(rpc::ChannelConfig::with_depth(8).batched(4));

        // Staged writes return immediately: six puts cost less wall
        // clock than a single one-way network hop (500us on this LAN).
        let t0 = ctx.now();
        for i in 0..6 {
            let r = p
                .invoke(
                    ctx,
                    "put",
                    put_args(&format!("k{i}"), &format!("v{i}")),
                    &mut DiscardStrays,
                )
                .unwrap();
            assert_eq!(r, Value::Null, "write-behind acks locally");
        }
        assert!(
            ctx.now() - t0 < Duration::from_micros(500),
            "write-behind puts must not block on round trips"
        );

        // A read miss flushes the pipeline first, so the client reads
        // its own (still-in-flight) writes.
        let v = p
            .invoke(ctx, "get", get_args("k3"), &mut DiscardStrays)
            .unwrap();
        assert_eq!(v, Value::str("v3"));

        // More writes, then detach: detach is the durability point.
        for i in 6..9 {
            p.invoke(
                ctx,
                "put",
                put_args(&format!("k{i}"), &format!("v{i}")),
                &mut DiscardStrays,
            )
            .unwrap();
        }
        p.detach(ctx);

        // A plain stub sees every write on the server.
        let mut stub = proxy_core::proxies::StubProxy::new("kv", server, ns);
        for i in 0..9 {
            let v = stub
                .invoke(ctx, "get", get_args(&format!("k{i}")), &mut DiscardStrays)
                .unwrap();
            assert_eq!(v, Value::str(format!("v{i}")), "k{i} durable after detach");
        }
    });
    sim.run();
    // 9 puts + 1 caching-proxy get + 9 stub gets, each exactly once.
    assert_eq!(dispatches.load(Ordering::SeqCst), 19);
}
