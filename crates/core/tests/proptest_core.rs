//! Property-based tests of proxy-core invariants:
//!
//! * wire roundtrips of every binding-metadata type,
//! * interface conformance laws,
//! * and a model check: a caching proxy driven by an arbitrary op
//!   sequence always agrees with an in-memory oracle (single writer,
//!   invalidation coherence).

use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};
use std::time::Duration;

use naming::spawn_name_server;
use proptest::prelude::*;
use proxy_core::{
    AdaptiveParams, CachingParams, ClientRuntime, Coherence, InterfaceDesc, OpDesc, OpKind,
    ProxySpec, ReadTarget, ServiceBuilder, ServiceObject,
};
use rpc::{ErrorCode, RemoteError};
use simnet::{Ctx, Endpoint, NetworkConfig, NodeId, PortId, Simulation};
use wire::Value;

fn arb_coherence() -> impl Strategy<Value = Coherence> {
    prop_oneof![
        (1u64..100_000).prop_map(|us| Coherence::Lease(Duration::from_micros(us))),
        Just(Coherence::Invalidate),
        (1u64..100_000).prop_map(|us| Coherence::LeaseAndInvalidate(Duration::from_micros(us))),
    ]
}

fn arb_endpoint() -> impl Strategy<Value = Endpoint> {
    (0u32..1000, 0u32..70000).prop_map(|(n, p)| Endpoint::new(NodeId(n), PortId(p)))
}

fn arb_spec() -> impl Strategy<Value = ProxySpec> {
    prop_oneof![
        Just(ProxySpec::Stub),
        (arb_coherence(), 1usize..10_000).prop_map(|(coherence, capacity)| {
            ProxySpec::Caching(CachingParams {
                coherence,
                capacity,
            })
        }),
        (1u64..1000).prop_map(|threshold| ProxySpec::Migratory { threshold }),
        (
            arb_endpoint(),
            proptest::collection::vec(arb_endpoint(), 1..5),
            any::<bool>()
        )
            .prop_map(|(primary, replicas, nearest)| ProxySpec::Replicated {
                primary,
                replicas,
                read_target: if nearest {
                    ReadTarget::Nearest
                } else {
                    ReadTarget::Primary
                },
            }),
        (2usize..200, 0.5f64..1.0, 0.0f64..0.5).prop_map(|(window, hi, lo)| {
            ProxySpec::Adaptive(AdaptiveParams {
                window,
                enable_at: hi,
                disable_at: lo,
                caching: CachingParams::default(),
            })
        }),
        ("[a-z]{1,10}", proptest::collection::vec(any::<u64>(), 0..3)).prop_map(|(kind, ns)| {
            ProxySpec::Custom {
                kind,
                params: Value::list(ns.into_iter().map(Value::U64)),
            }
        }),
    ]
}

fn arb_iface() -> impl Strategy<Value = InterfaceDesc> {
    (
        "[a-z.]{1,16}",
        proptest::collection::btree_map(
            "[a-z_]{1,10}".prop_map(String::from),
            (
                any::<bool>(),
                proptest::option::of("[a-z]{1,6}"),
                any::<bool>(),
            ),
            0..8,
        ),
    )
        .prop_map(|(name, ops)| {
            InterfaceDesc::new(
                name,
                ops.into_iter().map(|(op, (is_read, key, idem))| OpDesc {
                    name: op,
                    kind: if is_read { OpKind::Read } else { OpKind::Write },
                    key_field: key,
                    idempotent: idem,
                }),
            )
        })
}

proptest! {
    #[test]
    fn proxyspec_roundtrips(spec in arb_spec()) {
        let v = spec.to_value();
        prop_assert_eq!(ProxySpec::from_value(&v).unwrap(), spec);
    }

    #[test]
    fn iface_roundtrips(iface in arb_iface()) {
        let v = iface.to_value();
        prop_assert_eq!(InterfaceDesc::from_value(&v).unwrap(), iface);
    }

    #[test]
    fn conformance_is_reflexive_and_monotone(iface in arb_iface()) {
        prop_assert!(iface.conforms_to(&iface), "reflexivity");
        // Dropping any operation yields a supertype the original conforms to.
        for drop_idx in 0..iface.ops.len() {
            let mut smaller = iface.clone();
            smaller.ops.remove(drop_idx);
            prop_assert!(iface.conforms_to(&smaller));
        }
        // The empty interface is the top type.
        prop_assert!(iface.conforms_to(&InterfaceDesc::new("top", [])));
    }

    #[test]
    fn tags_are_deterministic(iface in arb_iface(), key in "[a-z0-9]{0,8}") {
        let args = Value::record([("key", Value::str(key))]);
        for op in &iface.ops {
            prop_assert_eq!(op.tag(&args), op.tag(&args.clone()));
        }
    }
}

/// One step of the model-checked workload.
#[derive(Debug, Clone)]
enum Step {
    Put(u8, u8),
    Get(u8),
    Del(u8),
    Sleep(u8),
}

fn arb_steps() -> impl Strategy<Value = Vec<Step>> {
    proptest::collection::vec(
        prop_oneof![
            (any::<u8>(), any::<u8>()).prop_map(|(k, v)| Step::Put(k % 8, v)),
            any::<u8>().prop_map(|k| Step::Get(k % 8)),
            any::<u8>().prop_map(|k| Step::Del(k % 8)),
            any::<u8>().prop_map(Step::Sleep),
        ],
        1..40,
    )
}

/// A KV object compatible with the oracle below.
struct ModelKv(BTreeMap<String, String>);

impl ServiceObject for ModelKv {
    fn interface(&self) -> InterfaceDesc {
        InterfaceDesc::new(
            "model-kv",
            [
                OpDesc::read("get", "key"),
                OpDesc::write("put", "key"),
                OpDesc::write("del", "key"),
            ],
        )
    }

    fn dispatch(&mut self, _ctx: &mut Ctx, op: &str, args: &Value) -> Result<Value, RemoteError> {
        let key = args
            .get_str("key")
            .map_err(|e| RemoteError::new(ErrorCode::BadArgs, e.to_string()))?;
        match op {
            "get" => Ok(self
                .0
                .get(key)
                .map(|v| Value::str(v.clone()))
                .unwrap_or(Value::Null)),
            "put" => {
                let v = args
                    .get_str("value")
                    .map_err(|e| RemoteError::new(ErrorCode::BadArgs, e.to_string()))?;
                self.0.insert(key.to_owned(), v.to_owned());
                Ok(Value::Null)
            }
            "del" => {
                self.0.remove(key);
                Ok(Value::Null)
            }
            other => Err(RemoteError::new(ErrorCode::NoSuchOp, other.to_owned())),
        }
    }
}

/// Drives a caching proxy with `steps` and checks every read against an
/// in-memory oracle. With a single writer and write-own-tag
/// invalidation, the proxy must be indistinguishable from the oracle.
fn run_model(steps: Vec<Step>, coherence: Coherence, seed: u64) -> Result<(), TestCaseError> {
    let mut sim = Simulation::new(NetworkConfig::lan(), seed);
    let ns = spawn_name_server(&sim, NodeId(0));
    ServiceBuilder::new("kv")
        .spec(ProxySpec::Caching(CachingParams {
            coherence,
            capacity: 4, // deliberately tiny: evictions happen mid-run
        }))
        .object(|| Box::new(ModelKv(BTreeMap::new())))
        .spawn(&sim, NodeId(1), ns);
    let failure: Arc<Mutex<Option<String>>> = Arc::new(Mutex::new(None));
    let f2 = Arc::clone(&failure);
    sim.spawn("driver", NodeId(2), move |ctx| {
        let mut rt = ClientRuntime::new(ns);
        let kv = rt.bind(ctx, "kv").unwrap();
        let mut oracle: BTreeMap<String, String> = BTreeMap::new();
        for (i, step) in steps.iter().enumerate() {
            match step {
                Step::Put(k, v) => {
                    let (k, v) = (format!("k{k}"), format!("v{v}"));
                    rt.invoke(
                        ctx,
                        kv,
                        "put",
                        Value::record([("key", Value::str(&*k)), ("value", Value::str(&*v))]),
                    )
                    .unwrap();
                    oracle.insert(k, v);
                }
                Step::Del(k) => {
                    let k = format!("k{k}");
                    rt.invoke(ctx, kv, "del", Value::record([("key", Value::str(&*k))]))
                        .unwrap();
                    oracle.remove(&k);
                }
                Step::Get(k) => {
                    let k = format!("k{k}");
                    let got = rt
                        .invoke(ctx, kv, "get", Value::record([("key", Value::str(&*k))]))
                        .unwrap();
                    let want = oracle
                        .get(&k)
                        .map(|v| Value::str(v.clone()))
                        .unwrap_or(Value::Null);
                    if got != want {
                        *f2.lock().unwrap() = Some(format!(
                            "step {i}: get({k}) = {got:?}, oracle says {want:?}"
                        ));
                        return;
                    }
                }
                Step::Sleep(ms) => {
                    let _ = ctx.sleep(Duration::from_millis(*ms as u64 % 20));
                }
            }
        }
    });
    sim.run();
    if let Some(msg) = failure.lock().unwrap().take() {
        return Err(TestCaseError::fail(msg));
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn caching_proxy_matches_oracle_invalidate(steps in arb_steps(), seed in 0u64..1000) {
        run_model(steps, Coherence::Invalidate, seed)?;
    }

    #[test]
    fn caching_proxy_matches_oracle_lease(steps in arb_steps(), seed in 0u64..1000) {
        run_model(steps, Coherence::Lease(Duration::from_millis(5)), seed)?;
    }

    #[test]
    fn caching_proxy_matches_oracle_combined(steps in arb_steps(), seed in 0u64..1000) {
        run_model(steps, Coherence::LeaseAndInvalidate(Duration::from_millis(3)), seed)?;
    }
}
