//! perfgate — the perf-regression gate over `BENCH_*.json` artifacts.
//!
//! The E14 macro-benchmark leaves a `BENCH_e14.json` artifact behind on
//! every run; the committed copy at the repo root is the *baseline* for
//! the current commit. This module diffs a freshly produced artifact
//! against that baseline with a noise tolerance and renders a per-metric
//! verdict table, so CI can fail a change that quietly lost hot-path
//! throughput instead of relying on someone eyeballing the numbers.
//!
//! Comparisons only make sense between runs of the *same workload*:
//! [`compare`] refuses artifacts whose experiment id, mode, or workload
//! config differ (and, when both artifacts carry a `meta.config_hash`,
//! whose hashes differ). Provenance that does not change the workload —
//! git revision, date, seed — is deliberately ignored, otherwise no two
//! commits could ever be compared.
//!
//! Wall-clock benchmarks are noisy; the default ±10% tolerance absorbs
//! scheduler jitter on a loaded CI host while still catching the 2x
//! class of regression a lost fast path produces. The `perfgate` binary
//! wraps this module; `ci.sh` runs it strict against the committed
//! baseline (self-compare: always comparable, always passing) and
//! warn-only against the smoke artifact.

use obs::json::{self, Json};

/// Tuning for one gate run.
#[derive(Debug, Clone, Copy)]
pub struct GateConfig {
    /// Relative loss tolerated before a metric counts as regressed
    /// (0.10 = 10%).
    pub tolerance: f64,
}

impl Default for GateConfig {
    fn default() -> Self {
        GateConfig { tolerance: 0.10 }
    }
}

/// How one metric moved relative to the baseline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// Within tolerance of the baseline.
    Pass,
    /// Better than the baseline by more than the tolerance.
    Improved,
    /// Worse than the baseline by more than the tolerance.
    Regressed,
    /// Not compared: the metric scales with wall clock and the two
    /// artifacts were produced on hosts with different core counts, so a
    /// delta would measure the hardware, not the change.
    Skipped,
}

impl Verdict {
    /// Fixed-width label for the verdict table.
    pub fn label(self) -> &'static str {
        match self {
            Verdict::Pass => "ok",
            Verdict::Improved => "IMPROVED",
            Verdict::Regressed => "REGRESSED",
            Verdict::Skipped => "skipped (host cores differ)",
        }
    }
}

/// One compared metric.
#[derive(Debug, Clone)]
pub struct MetricVerdict {
    /// Metric name (key under the artifact's `best` object).
    pub name: &'static str,
    /// Baseline value.
    pub baseline: f64,
    /// Current value.
    pub current: f64,
    /// Signed relative change, positive = improvement. For lower-better
    /// metrics (wall time) the sign is already flipped.
    pub delta: f64,
    /// True when a larger value is better.
    pub higher_is_better: bool,
    /// The verdict.
    pub verdict: Verdict,
}

/// Result of a successful (comparable) gate run.
#[derive(Debug, Clone)]
pub struct GateOutcome {
    /// Experiment id shared by both artifacts.
    pub experiment: String,
    /// Mode shared by both artifacts.
    pub mode: String,
    /// Per-metric verdicts, artifact order.
    pub metrics: Vec<MetricVerdict>,
}

impl GateOutcome {
    /// True when any metric regressed beyond tolerance.
    pub fn regressed(&self) -> bool {
        self.metrics.iter().any(|m| m.verdict == Verdict::Regressed)
    }

    /// Renders the per-metric verdict table.
    pub fn render(&self) -> String {
        let mut out = format!(
            "perfgate: {} ({}) — current vs baseline\n\
             {:<16} {:>14} {:>14} {:>9}  verdict\n",
            self.experiment, self.mode, "metric", "baseline", "current", "delta"
        );
        for m in &self.metrics {
            out.push_str(&format!(
                "{:<16} {:>14.3} {:>14.3} {:>+8.1}%  {}\n",
                m.name,
                m.baseline,
                m.current,
                m.delta * 100.0,
                m.verdict.label()
            ));
        }
        if self.metrics.iter().any(|m| m.verdict == Verdict::Skipped) {
            out.push_str(
                "note: wall-clock metrics skipped — artifacts were produced on hosts \
                 with different core counts (host_cores stamp)\n",
            );
        }
        out
    }
}

/// Why a gate run could not produce verdicts.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GateError {
    /// An artifact failed to parse or lacked required fields.
    Malformed(String),
    /// The artifacts describe different workloads and must not be
    /// compared.
    Incomparable(String),
}

impl std::fmt::Display for GateError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GateError::Malformed(m) => write!(f, "malformed artifact: {m}"),
            GateError::Incomparable(m) => write!(f, "incomparable artifacts: {m}"),
        }
    }
}

/// The metrics gated in a `BENCH_*.json` `best` object, with direction.
/// Every current metric is wall-clock-derived, so all of them are
/// skipped when the artifacts' `host_cores` stamps differ; a future
/// hardware-independent metric (simulated bytes, virtual time) would opt
/// out of the skip here.
const METRICS: &[(&str, bool)] = &[
    ("wall_ms", false),
    ("events_per_sec", true),
    ("msgs_per_sec", true),
    ("bytes_per_sec", true),
];

fn str_of<'a>(doc: &'a Json, key: &str, which: &str) -> Result<&'a str, GateError> {
    doc.str_field(key)
        .ok_or_else(|| GateError::Malformed(format!("{which}: missing {key}")))
}

/// Diffs `current` against `baseline` (both raw `BENCH_*.json` text).
///
/// # Errors
///
/// [`GateError::Malformed`] when either artifact fails to parse or
/// lacks the `best` metrics; [`GateError::Incomparable`] when the two
/// artifacts describe different workloads (experiment, mode, config, or
/// config hash mismatch).
pub fn compare(baseline: &str, current: &str, cfg: &GateConfig) -> Result<GateOutcome, GateError> {
    let base = json::parse(baseline).map_err(|e| GateError::Malformed(format!("baseline: {e}")))?;
    let cur = json::parse(current).map_err(|e| GateError::Malformed(format!("current: {e}")))?;

    let experiment = str_of(&base, "experiment", "baseline")?;
    if str_of(&cur, "experiment", "current")? != experiment {
        return Err(GateError::Incomparable(format!(
            "experiment {:?} vs {:?}",
            str_of(&cur, "experiment", "current")?,
            experiment
        )));
    }
    let mode = str_of(&base, "mode", "baseline")?;
    if str_of(&cur, "mode", "current")? != mode {
        return Err(GateError::Incomparable(format!(
            "mode {:?} vs baseline {:?}",
            str_of(&cur, "mode", "current")?,
            mode
        )));
    }
    // The whole workload config must match value-for-value: a faster run
    // with half the payload is not a win.
    let base_cfg = base.get("config");
    let cur_cfg = cur.get("config");
    if base_cfg != cur_cfg {
        return Err(GateError::Incomparable("config objects differ".into()));
    }
    // When both sides stamp a config hash, trust it as a second opinion;
    // other provenance (git_rev, date, seed) intentionally never blocks.
    let hash = |doc: &Json| {
        doc.get("meta")
            .and_then(|m| m.str_field("config_hash"))
            .map(str::to_owned)
    };
    if let (Some(b), Some(c)) = (hash(&base), hash(&cur)) {
        if b != c {
            return Err(GateError::Incomparable(format!(
                "config_hash {c:?} vs baseline {b:?}"
            )));
        }
    }

    let best_of = |doc: &Json, which: &str| -> Result<Json, GateError> {
        doc.get("best")
            .cloned()
            .ok_or_else(|| GateError::Malformed(format!("{which}: missing best object")))
    };
    let base_best = best_of(&base, "baseline")?;
    let cur_best = best_of(&cur, "current")?;

    // Wall-clock metrics only compare like-for-like hardware. When both
    // artifacts carry a top-level `host_cores` stamp and the counts
    // differ, the wall-clock-scaling metrics are reported but *skipped*
    // rather than judged — a 32-core baseline regressing on a 4-core CI
    // runner is a fact about the runner. Artifacts missing the stamp
    // (pre-stamp baselines) compare as before.
    let cores = |doc: &Json| doc.get("host_cores").and_then(Json::as_f64);
    let cores_differ = match (cores(&base), cores(&cur)) {
        (Some(b), Some(c)) => b != c,
        _ => false,
    };

    let mut metrics = Vec::with_capacity(METRICS.len());
    for &(name, higher_is_better) in METRICS {
        let field = |doc: &Json, which: &str| -> Result<f64, GateError> {
            doc.get(name)
                .and_then(Json::as_f64)
                .ok_or_else(|| GateError::Malformed(format!("{which}: best.{name} missing")))
        };
        let b = field(&base_best, "baseline")?;
        let c = field(&cur_best, "current")?;
        if cores_differ {
            metrics.push(MetricVerdict {
                name,
                baseline: b,
                current: c,
                delta: 0.0,
                higher_is_better,
                verdict: Verdict::Skipped,
            });
            continue;
        }
        if b <= 0.0 {
            return Err(GateError::Malformed(format!(
                "baseline: best.{name} is {b}, cannot take a ratio"
            )));
        }
        // Signed relative change, positive = improvement.
        let delta = if higher_is_better {
            (c - b) / b
        } else {
            (b - c) / b
        };
        let verdict = if delta < -cfg.tolerance {
            Verdict::Regressed
        } else if delta > cfg.tolerance {
            Verdict::Improved
        } else {
            Verdict::Pass
        };
        metrics.push(MetricVerdict {
            name,
            baseline: b,
            current: c,
            delta,
            higher_is_better,
            verdict,
        });
    }
    Ok(GateOutcome {
        experiment: experiment.to_owned(),
        mode: mode.to_owned(),
        metrics,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn artifact(wall: f64, eps: f64, extra_meta: &str) -> String {
        format!(
            "{{\"experiment\":\"E14\",\"mode\":\"full\",\
             \"config\":{{\"clients\":4,\"depth\":16}},\
             \"meta\":{{\"config_hash\":\"abc123\"{extra_meta}}},\
             \"best\":{{\"wall_ms\":{wall},\"events_per_sec\":{eps},\
             \"msgs_per_sec\":{eps},\"bytes_per_sec\":{eps}}}}}"
        )
    }

    #[test]
    fn identical_artifacts_pass() {
        let a = artifact(10.0, 100_000.0, "");
        let out = compare(&a, &a, &GateConfig::default()).expect("comparable");
        assert!(!out.regressed());
        assert!(out.metrics.iter().all(|m| m.verdict == Verdict::Pass));
        assert_eq!(out.metrics.len(), 4);
        let table = out.render();
        assert!(table.contains("wall_ms"));
        assert!(table.contains("ok"));
    }

    #[test]
    fn degraded_artifact_regresses() {
        // Synthetically degraded: 2x slower wall clock, half the rates.
        let base = artifact(10.0, 100_000.0, "");
        let bad = artifact(20.0, 50_000.0, "");
        let out = compare(&base, &bad, &GateConfig::default()).expect("comparable");
        assert!(out.regressed());
        // Every gated metric went the wrong way.
        assert!(out.metrics.iter().all(|m| m.verdict == Verdict::Regressed));
        assert!(out.render().contains("REGRESSED"));
    }

    #[test]
    fn improvement_is_not_a_regression() {
        let base = artifact(10.0, 100_000.0, "");
        let fast = artifact(5.0, 200_000.0, "");
        let out = compare(&base, &fast, &GateConfig::default()).expect("comparable");
        assert!(!out.regressed());
        assert!(out.metrics.iter().all(|m| m.verdict == Verdict::Improved));
    }

    #[test]
    fn tolerance_absorbs_noise_and_direction_matters() {
        let base = artifact(10.0, 100_000.0, "");
        // 8% worse everywhere: inside the default 10% band.
        let noisy = artifact(10.8, 92_000.0, "");
        let out = compare(&base, &noisy, &GateConfig::default()).expect("comparable");
        assert!(!out.regressed());
        // The same artifact regresses under a 5% tolerance.
        let strict = GateConfig { tolerance: 0.05 };
        assert!(compare(&base, &noisy, &strict).unwrap().regressed());
        // Wall time is lower-better: a *drop* in wall_ms is improvement.
        let out = compare(&base, &artifact(5.0, 100_000.0, ""), &GateConfig::default()).unwrap();
        let wall = out.metrics.iter().find(|m| m.name == "wall_ms").unwrap();
        assert_eq!(wall.verdict, Verdict::Improved);
        assert!(!wall.higher_is_better);
        assert!(wall.delta > 0.0, "sign flipped for lower-better");
    }

    #[test]
    fn refuses_incomparable_artifacts() {
        let base = artifact(10.0, 100_000.0, "");
        let cfg = GateConfig::default();
        // Mode mismatch.
        let smoke = base.replace("\"mode\":\"full\"", "\"mode\":\"smoke\"");
        assert!(matches!(
            compare(&base, &smoke, &cfg),
            Err(GateError::Incomparable(_))
        ));
        // Experiment mismatch.
        let other = base.replace("\"experiment\":\"E14\"", "\"experiment\":\"E8\"");
        assert!(matches!(
            compare(&base, &other, &cfg),
            Err(GateError::Incomparable(_))
        ));
        // Config value mismatch.
        let bigger = base.replace("\"clients\":4", "\"clients\":8");
        assert!(matches!(
            compare(&base, &bigger, &cfg),
            Err(GateError::Incomparable(_))
        ));
        // Config-hash mismatch (configs textually equal but hash differs).
        let rehashed = base.replace("abc123", "def456");
        assert!(matches!(
            compare(&base, &rehashed, &cfg),
            Err(GateError::Incomparable(_))
        ));
    }

    #[test]
    fn provenance_differences_do_not_block() {
        // Different git revs and dates: still comparable.
        let base = artifact(
            10.0,
            100_000.0,
            ",\"git_rev\":\"aaa\",\"date\":\"2026-01-01\"",
        );
        let cur = artifact(
            10.0,
            100_000.0,
            ",\"git_rev\":\"bbb\",\"date\":\"2026-08-06\"",
        );
        assert!(!compare(&base, &cur, &GateConfig::default())
            .expect("provenance never blocks")
            .regressed());
        // A baseline with no meta at all is comparable with one that has
        // it (pre-meta artifacts keep working).
        let legacy = "{\"experiment\":\"E14\",\"mode\":\"full\",\
             \"config\":{\"clients\":4,\"depth\":16},\
             \"best\":{\"wall_ms\":10,\"events_per_sec\":100000,\
             \"msgs_per_sec\":100000,\"bytes_per_sec\":100000}}";
        assert!(compare(legacy, &cur, &GateConfig::default()).is_ok());
    }

    fn artifact_on_host(wall: f64, eps: f64, cores: u32) -> String {
        format!(
            "{{\"experiment\":\"E14\",\"mode\":\"full\",\"host_cores\":{cores},\
             \"config\":{{\"clients\":4,\"depth\":16}},\
             \"meta\":{{\"config_hash\":\"abc123\"}},\
             \"best\":{{\"wall_ms\":{wall},\"events_per_sec\":{eps},\
             \"msgs_per_sec\":{eps},\"bytes_per_sec\":{eps}}}}}"
        )
    }

    #[test]
    fn differing_host_cores_skips_wall_clock_metrics() {
        // A 2x-slower run on a smaller host: every metric is skipped, not
        // regressed — the delta would measure the hardware.
        let base = artifact_on_host(10.0, 100_000.0, 32);
        let small = artifact_on_host(20.0, 50_000.0, 4);
        let out = compare(&base, &small, &GateConfig::default()).expect("comparable");
        assert!(!out.regressed());
        assert_eq!(out.metrics.len(), 4);
        assert!(out.metrics.iter().all(|m| m.verdict == Verdict::Skipped));
        let table = out.render();
        assert!(table.contains("skipped (host cores differ)"));
        assert!(table.contains("different core counts"));
    }

    #[test]
    fn matching_host_cores_compares_normally() {
        let base = artifact_on_host(10.0, 100_000.0, 8);
        let bad = artifact_on_host(20.0, 50_000.0, 8);
        let out = compare(&base, &bad, &GateConfig::default()).expect("comparable");
        assert!(out.regressed());
        assert!(out.metrics.iter().all(|m| m.verdict == Verdict::Regressed));
        assert!(!out.render().contains("skipped"));
    }

    #[test]
    fn missing_host_cores_stamp_compares_normally() {
        // Pre-stamp baselines keep gating: the stamp only arms the skip
        // when *both* sides carry it.
        let legacy = artifact(10.0, 100_000.0, "");
        let stamped = artifact_on_host(20.0, 50_000.0, 4);
        let out = compare(&legacy, &stamped, &GateConfig::default()).expect("comparable");
        assert!(out.regressed());
        let out = compare(&stamped, &legacy, &GateConfig::default()).expect("comparable");
        assert!(out.metrics.iter().all(|m| m.verdict != Verdict::Skipped));
    }

    #[test]
    fn rejects_malformed_artifacts() {
        let good = artifact(10.0, 100_000.0, "");
        let cfg = GateConfig::default();
        assert!(matches!(
            compare("not json", &good, &cfg),
            Err(GateError::Malformed(_))
        ));
        let no_best = "{\"experiment\":\"E14\",\"mode\":\"full\",\"config\":{}}";
        let base = good
            .replace("\"config\":{\"clients\":4,\"depth\":16}", "\"config\":{}")
            .replace(",\"meta\":{\"config_hash\":\"abc123\"}", "");
        assert!(matches!(
            compare(&base, no_best, &cfg),
            Err(GateError::Malformed(_))
        ));
        // Zero baseline metric: no ratio to take.
        let zero = artifact(0.0, 100_000.0, "");
        assert!(matches!(
            compare(&zero, &good, &cfg),
            Err(GateError::Malformed(_))
        ));
    }
}
