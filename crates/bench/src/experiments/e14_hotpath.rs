//! E14 — Hot-path macro-benchmark: wall-clock throughput of the full
//! stack under a closed-loop pipelined workload.
//!
//! Every other experiment reports *simulated* time; E8 reports real CPU
//! time of isolated kernels. E14 closes the gap: it drives a pipelined,
//! batched RPC workload (several clients hammering one server with
//! blob-carrying puts) through every layer at once — codec, framing +
//! CRC, channel batching, at-most-once server, scheduler — and reports
//! how fast the *host* chews through it: scheduler events/sec, network
//! messages/sec, and payload bytes/sec of real wall-clock time.
//!
//! This is the measurement harness for the hot-path work (zero-copy
//! decode, pooled encode buffers, slice-by-16 CRC, single scheduler
//! lock): those optimisations only count if this number moves. Each run
//! writes a `BENCH_e14.json` artifact to the repo root so successive
//! commits leave a comparable perf trajectory behind (see the README's
//! "Perf trajectory" section).
//!
//! Shape checks are deliberately conservative — they assert the workload
//! completed correctly and the harness produced sane, positive rates,
//! not absolute speed (CI machines vary). The artifact carries the
//! absolute numbers.
//!
//! Fast smoke mode for CI: set `PROXIDE_E14_SMOKE=1` to shrink the
//! workload (fewer clients/calls, one repetition).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use rpc::{Channel, ChannelConfig, ErrorCode, RemoteError, RpcServer};
use simnet::{NetworkConfig, NodeId, PortId, Simulation};
use wire::Value;

use crate::{check, slot, take, ExperimentOutput, Table};

/// One workload configuration.
#[derive(Debug, Clone, Copy)]
struct Config {
    clients: usize,
    calls_per_client: u64,
    depth: usize,
    batch: usize,
    payload: usize,
    reps: usize,
}

impl Config {
    fn full() -> Config {
        Config {
            clients: 4,
            calls_per_client: 512,
            depth: 16,
            batch: 4,
            payload: 256,
            reps: 3,
        }
    }

    fn smoke() -> Config {
        Config {
            clients: 2,
            calls_per_client: 64,
            depth: 8,
            batch: 4,
            payload: 128,
            reps: 1,
        }
    }

    fn pick() -> (Config, &'static str) {
        match std::env::var_os("PROXIDE_E14_SMOKE") {
            Some(v) if !v.is_empty() && v != "0" => (Config::smoke(), "smoke"),
            _ => (Config::full(), "full"),
        }
    }

    fn total_calls(&self) -> u64 {
        self.clients as u64 * self.calls_per_client
    }
}

/// One measured repetition.
#[derive(Debug, Clone, Copy)]
struct Rep {
    wall: Duration,
    sim_us: f64,
    ok: u64,
    events: u64,
    msgs: u64,
    bytes: u64,
}

impl Rep {
    fn events_per_sec(&self) -> f64 {
        self.events as f64 / self.wall.as_secs_f64()
    }
    fn msgs_per_sec(&self) -> f64 {
        self.msgs as f64 / self.wall.as_secs_f64()
    }
    fn bytes_per_sec(&self) -> f64 {
        self.bytes as f64 / self.wall.as_secs_f64()
    }
}

fn run_once(cfg: Config, seed: u64) -> Rep {
    let mut sim = Simulation::new(NetworkConfig::lan(), seed);
    let execs = Arc::new(AtomicU64::new(0));
    let e2 = Arc::clone(&execs);
    let server = sim.spawn_at("hotsvc", NodeId(0), PortId(1), move |ctx| {
        let mut srv = RpcServer::new();
        srv.serve(
            ctx,
            |_, req| match req.op.as_str() {
                "put" => Ok(Value::U64(e2.fetch_add(1, Ordering::SeqCst) + 1)),
                other => Err(RemoteError::new(ErrorCode::NoSuchOp, other.to_owned())),
            },
            |_, _| {},
        );
    });
    let mut slots = Vec::new();
    for c in 0..cfg.clients {
        let (w, r) = slot::<u64>();
        slots.push(r);
        sim.spawn("client", NodeId(1 + c as u32), move |ctx| {
            let chan_cfg = ChannelConfig::with_depth(cfg.depth).batched(cfg.batch);
            let mut ch = Channel::new("hotsvc", server, chan_cfg);
            let args = Value::record([
                ("key", Value::str(format!("client-{c}/key"))),
                ("value", Value::blob(vec![0xA5u8; cfg.payload])),
            ]);
            let mut ok = 0u64;
            // Closed loop: keep `depth` calls in flight, issue a new one
            // as each completes.
            let mut handles = std::collections::VecDeque::new();
            let mut issued = 0u64;
            while issued < cfg.calls_per_client || !handles.is_empty() {
                while issued < cfg.calls_per_client && handles.len() < cfg.depth {
                    handles.push_back(ch.begin_call(ctx, "put", args.clone()));
                    issued += 1;
                }
                if let Some(h) = handles.pop_front() {
                    if ch.wait(ctx, h).is_ok() {
                        ok += 1;
                    }
                }
            }
            *w.lock().unwrap() = Some(ok);
        });
    }
    let t0 = Instant::now();
    let report = sim.run();
    let wall = t0.elapsed();
    let ok: u64 = slots.into_iter().map(take).sum();
    Rep {
        wall,
        sim_us: report.end_time.as_nanos() as f64 / 1000.0,
        ok,
        events: report.metrics.events_dispatched,
        msgs: report.metrics.msgs_sent,
        bytes: report.metrics.bytes_sent,
    }
}

/// Where `BENCH_e14.json` lands: `$PROXIDE_BENCH_DIR` or the repo root
/// (two levels up from this crate's manifest).
fn artifact_path() -> std::path::PathBuf {
    if let Some(dir) = std::env::var_os("PROXIDE_BENCH_DIR") {
        return std::path::PathBuf::from(dir).join("BENCH_e14.json");
    }
    let manifest = std::path::Path::new(env!("CARGO_MANIFEST_DIR"));
    manifest
        .ancestors()
        .nth(2)
        .unwrap_or(manifest)
        .join("BENCH_e14.json")
}

/// FNV-1a over the workload-shaping fields, so perfgate has a config
/// fingerprint that is stable across formatting changes to the artifact.
fn config_hash(cfg: Config) -> String {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for v in [
        cfg.clients as u64,
        cfg.calls_per_client,
        cfg.depth as u64,
        cfg.batch as u64,
        cfg.payload as u64,
    ] {
        for b in v.to_le_bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    format!("{h:016x}")
}

/// Git revision of the working tree, when a git binary and repo are
/// around; benches must keep working in an exported tarball.
fn git_rev() -> Option<String> {
    let out = std::process::Command::new("git")
        .args(["rev-parse", "--short", "HEAD"])
        .output()
        .ok()?;
    if !out.status.success() {
        return None;
    }
    let rev = String::from_utf8(out.stdout).ok()?;
    let rev = rev.trim();
    if rev.is_empty() {
        None
    } else {
        Some(rev.to_owned())
    }
}

fn artifact_meta(cfg: Config) -> String {
    // Seed of the first rep; later reps are 1400+i by construction.
    let mut meta = format!(
        "{{\"seed\": 1400, \"config_hash\": \"{}\"",
        config_hash(cfg)
    );
    if let Some(rev) = git_rev() {
        meta.push_str(&format!(", \"git_rev\": \"{rev}\""));
    }
    // ISO date is passed in by the harness; the sandboxed sim has no
    // clock of record of its own.
    if let Ok(date) = std::env::var("PROXIDE_RUN_DATE") {
        if !date.is_empty() {
            meta.push_str(&format!(", \"date\": \"{date}\""));
        }
    }
    meta.push('}');
    meta
}

fn artifact_json(cfg: Config, mode: &str, reps: &[Rep], best: &Rep, host_cores: usize) -> String {
    let mut runs = String::new();
    for (i, r) in reps.iter().enumerate() {
        if i > 0 {
            runs.push_str(", ");
        }
        runs.push_str(&format!(
            "{{\"wall_ms\": {:.3}, \"events_per_sec\": {:.0}, \"msgs_per_sec\": {:.0}, \"bytes_per_sec\": {:.0}}}",
            r.wall.as_secs_f64() * 1e3,
            r.events_per_sec(),
            r.msgs_per_sec(),
            r.bytes_per_sec(),
        ));
    }
    format!(
        concat!(
            "{{\n",
            "  \"experiment\": \"E14\",\n",
            "  \"title\": \"hot-path macro-benchmark (closed-loop pipelined RPC, wall-clock)\",\n",
            "  \"mode\": \"{mode}\",\n",
            "  \"meta\": {meta},\n",
            "  \"host_cores\": {host_cores},\n",
            "  \"config\": {{\"clients\": {clients}, \"calls_per_client\": {cpc}, ",
            "\"depth\": {depth}, \"batch\": {batch}, \"payload_bytes\": {payload}, \"reps\": {reps}}},\n",
            "  \"best\": {{\n",
            "    \"wall_ms\": {wall:.3},\n",
            "    \"sim_ms\": {sim:.3},\n",
            "    \"ok_calls\": {ok},\n",
            "    \"events_dispatched\": {events},\n",
            "    \"msgs_sent\": {msgs},\n",
            "    \"bytes_sent\": {bytes},\n",
            "    \"events_per_sec\": {eps:.0},\n",
            "    \"msgs_per_sec\": {mps:.0},\n",
            "    \"bytes_per_sec\": {bps:.0}\n",
            "  }},\n",
            "  \"runs\": [{runs}]\n",
            "}}\n",
        ),
        mode = mode,
        meta = artifact_meta(cfg),
        host_cores = host_cores,
        clients = cfg.clients,
        cpc = cfg.calls_per_client,
        depth = cfg.depth,
        batch = cfg.batch,
        payload = cfg.payload,
        reps = cfg.reps,
        wall = best.wall.as_secs_f64() * 1e3,
        sim = best.sim_us / 1e3,
        ok = best.ok,
        events = best.events,
        msgs = best.msgs,
        bytes = best.bytes,
        eps = best.events_per_sec(),
        mps = best.msgs_per_sec(),
        bps = best.bytes_per_sec(),
        runs = runs,
    )
}

/// Runs E14 and returns its tables and shape checks.
pub fn run() -> ExperimentOutput {
    let (cfg, mode) = Config::pick();
    let mut reps = Vec::with_capacity(cfg.reps);
    for i in 0..cfg.reps {
        reps.push(run_once(cfg, 1400 + i as u64));
    }
    // Best-of-N is the standard wall-clock convention: the minimum is
    // the least noise-polluted observation of the same deterministic
    // workload.
    let best = *reps
        .iter()
        .min_by(|a, b| a.wall.cmp(&b.wall))
        .expect("at least one rep");

    let mut table = Table::new(
        format!(
            "closed-loop pipelined workload ({mode}) — {} clients x {} calls, depth {}, batch {}, {}B payload",
            cfg.clients, cfg.calls_per_client, cfg.depth, cfg.batch, cfg.payload
        ),
        &[
            "rep", "wall ms", "sim ms", "ok", "events", "msgs", "events/s", "msgs/s", "MB/s",
        ],
    );
    for (i, r) in reps.iter().enumerate() {
        table.add_row(vec![
            (i + 1).to_string(),
            format!("{:.2}", r.wall.as_secs_f64() * 1e3),
            format!("{:.2}", r.sim_us / 1e3),
            r.ok.to_string(),
            r.events.to_string(),
            r.msgs.to_string(),
            format!("{:.0}", r.events_per_sec()),
            format!("{:.0}", r.msgs_per_sec()),
            format!("{:.2}", r.bytes_per_sec() / 1e6),
        ]);
    }
    table.add_row(vec![
        "best".into(),
        format!("{:.2}", best.wall.as_secs_f64() * 1e3),
        format!("{:.2}", best.sim_us / 1e3),
        best.ok.to_string(),
        best.events.to_string(),
        best.msgs.to_string(),
        format!("{:.0}", best.events_per_sec()),
        format!("{:.0}", best.msgs_per_sec()),
        format!("{:.2}", best.bytes_per_sec() / 1e6),
    ]);

    let path = artifact_path();
    let host_cores = std::thread::available_parallelism().map_or(1, std::num::NonZero::get);
    let json = artifact_json(cfg, mode, &reps, &best, host_cores);
    let wrote = std::fs::write(&path, &json);
    let artifact_detail = match &wrote {
        Ok(()) => format!("wrote {}", path.display()),
        Err(e) => format!("write to {} failed: {e}", path.display()),
    };

    let total = cfg.total_calls();
    // Unbatched request/reply costs 2 datagrams per call; batching must
    // beat that even counting retransmissions and batch framing.
    let msgs_per_op = best.msgs as f64 / total as f64;
    let checks = vec![
        check(
            "every call completes on the clean network",
            reps.iter().all(|r| r.ok == total),
            format!(
                "ok by rep: {:?} (want {total})",
                reps.iter().map(|r| r.ok).collect::<Vec<_>>()
            ),
        ),
        check(
            "determinism: every rep dispatches the same event count",
            reps.windows(2).all(|w| w[0].events == w[1].events),
            format!(
                "events by rep: {:?}",
                reps.iter().map(|r| r.events).collect::<Vec<_>>()
            ),
        ),
        check(
            "batching beats 2 msgs/call",
            msgs_per_op < 2.0,
            format!("{msgs_per_op:.2} msgs/call over {} msgs", best.msgs),
        ),
        check(
            "host sustains a sane event rate",
            best.events_per_sec() > 1_000.0 && best.events_per_sec().is_finite(),
            format!(
                "{:.0} events/s, {:.0} msgs/s, {:.2} MB/s of payload",
                best.events_per_sec(),
                best.msgs_per_sec(),
                best.bytes_per_sec() / 1e6
            ),
        ),
        check(
            "BENCH_e14.json artifact written",
            wrote.is_ok(),
            artifact_detail,
        ),
    ];

    ExperimentOutput {
        id: "E14",
        title: "Hot-path macro-benchmark (wall-clock events/s, msgs/s, bytes/s)",
        tables: vec![table],
        checks,
        reports: Vec::new(),
        traces: Vec::new(),
    }
}
