//! The experiment suite (see `DESIGN.md` §3 for the index).

pub mod e10_forwarding;
pub mod e11_recovery;
pub mod e12_dsm;
pub mod e13_pipeline;
pub mod e14_hotpath;
pub mod e15_flight;
pub mod e16_million;
pub mod e17_obsplane;
pub mod e18_multicore;
pub mod e19_bulkplane;
pub mod e1_access_methods;
pub mod e20_profiler;
pub mod e2_cache_sweep;
pub mod e3_migration;
pub mod e4_replication;
pub mod e5_local_fastpath;
pub mod e6_binding_cost;
pub mod e7_loss;
pub mod e9_adaptive;

use crate::ExperimentOutput;

/// Runs every experiment, printing as it goes; returns true if every
/// shape check passed.
pub fn run_all() -> bool {
    let outputs: Vec<ExperimentOutput> = vec![
        e1_access_methods::run(),
        e2_cache_sweep::run(),
        e3_migration::run(),
        e4_replication::run(),
        e5_local_fastpath::run(),
        e6_binding_cost::run(),
        e7_loss::run(),
        e9_adaptive::run(),
        e10_forwarding::run(),
        e11_recovery::run(),
        e12_dsm::run(),
        e13_pipeline::run(),
        e14_hotpath::run(),
        e15_flight::run(),
        e16_million::run(),
        e17_obsplane::run(),
        e18_multicore::run(),
        e19_bulkplane::run(),
        e20_profiler::run(),
    ];
    let mut all = true;
    for o in &outputs {
        all &= o.print();
    }
    println!("\n================================================================");
    println!(
        "shape checks: {}",
        if all {
            "ALL PASSED"
        } else {
            "FAILURES (see above)"
        }
    );
    println!("(E8 — real-time overheads — runs under Criterion: `cargo bench -p bench`)");
    all
}
