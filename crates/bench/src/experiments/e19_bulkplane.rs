//! E19 — Out-of-band bulk data plane: pass-by-reference proxies and
//! hierarchical edge caches under Zipf traffic.
//!
//! The proxy principle says the interface a client sees and the
//! transport the service uses are independent decisions. This experiment
//! puts the claim under a bulk-payload workload: a media catalog whose
//! values are tens of kilobytes each, read from three WAN regions under
//! Zipf popularity with a flash-crowd phase.
//!
//! * **Inline leg** — the catalog is a plain stub service. Every get
//!   drags the full payload across the WAN through the catalog node, on
//!   the RPC path.
//! * **Bulk leg** — the catalog publishes `ProxySpec::Bulk`: large
//!   values spill into a chunked blob store and the catalog holds a
//!   fixed-size `Value::Ref`. Clients resolve references through their
//!   *region's* edge cache (a `CachingProxy` over the origin store with
//!   invalidation coherence), so payload bytes leave the origin once per
//!   region and the catalog's RPC path carries only handles.
//!
//! Measured: RPC-path bytes through the catalog node (inline vs bulk —
//! the headline ≥5x reduction), per-region p50/p99 fetch latency in the
//! Zipf and flash phases, edge-cache hit ratios (from the flight
//! recorder and the per-edge proxy stats), and a content checksum that
//! must be *identical* between legs — by-reference is a transport
//! optimization, never a semantic one. The bulk leg runs at 1 and 4
//! scheduler threads and must be byte-identical across them (summary
//! counters, causal trace JSONL, `RunReport` JSON), re-checked by
//! `ci.sh` with `cmp` on the exported `e19-t1`/`e19-t4` traces.
//!
//! Each run writes a `BENCH_e19.json` artifact (perfgate contract:
//! `best` holds the bulk-leg wall-clock rates; `host_cores` is stamped
//! so the gate can skip wall-clock comparisons across differently-sized
//! hosts).
//!
//! Fast smoke mode for CI: set `PROXIDE_E19_SMOKE=1`.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use proxy_core::{BulkParams, ClientRuntime, ProxySpec, ServiceBuilder, Session};
use services::blob::{spawn_edge_cache, BlobStore};
use services::kv::KvStore;
use simnet::{NetworkConfig, NodeId, Simulation};
use wire::Value;

use crate::{capture_trace, check, obs_report, ExperimentOutput, Table, TraceArtifact};

const SEED: u64 = 1900;

/// The thread counts the bulk leg is swept over (byte-identity gate).
const THREADS: [usize; 2] = [1, 4];

/// One workload configuration.
#[derive(Debug, Clone, Copy)]
struct Config {
    /// Client regions (each gets an edge cache and its own latency row).
    regions: usize,
    clients_per_region: usize,
    /// Catalog size.
    assets: usize,
    /// Zipf-sampled reads per client.
    rounds: u32,
    /// Flash-crowd reads per client (everyone hammers one asset).
    flash_rounds: u32,
    /// Zipf exponent ×1000 (integer so the config hash stays exact).
    zipf_s_x1000: u64,
    payload_min: usize,
    payload_max: usize,
    /// Edge cache capacity (chunk entries).
    edge_capacity: usize,
    /// Scheduler domains (fixed across legs; threads are swept).
    domains: usize,
}

impl Config {
    fn full() -> Config {
        Config {
            regions: 3,
            clients_per_region: 6,
            assets: 24,
            rounds: 30,
            flash_rounds: 10,
            zipf_s_x1000: 1100,
            payload_min: 8 * 1024,
            payload_max: 64 * 1024,
            edge_capacity: 256,
            domains: 8,
        }
    }

    fn smoke() -> Config {
        Config {
            regions: 3,
            clients_per_region: 2,
            assets: 8,
            rounds: 6,
            flash_rounds: 4,
            zipf_s_x1000: 1100,
            payload_min: 4 * 1024,
            payload_max: 24 * 1024,
            edge_capacity: 64,
            domains: 8,
        }
    }

    fn pick() -> (Config, &'static str) {
        match std::env::var_os("PROXIDE_E19_SMOKE") {
            Some(v) if !v.is_empty() && v != "0" => (Config::smoke(), "smoke"),
            _ => (Config::full(), "full"),
        }
    }

    fn clients(&self) -> usize {
        self.regions * self.clients_per_region
    }

    fn gets_per_client(&self) -> u32 {
        self.rounds + self.flash_rounds
    }
}

// -- topology ----------------------------------------------------------

/// Fixed origin nodes; regions start after them.
const NODE_NS: u32 = 0;
const NODE_CATALOG: u32 = 1;
const NODE_BLOB: u32 = 2;
const NODE_PUBLISHER: u32 = 3;
const FIRST_EDGE: u32 = 4;

fn edge_node(cfg: Config, r: usize) -> NodeId {
    let _ = cfg;
    NodeId(FIRST_EDGE + r as u32)
}

fn client_node(cfg: Config, r: usize, c: usize) -> NodeId {
    NodeId(FIRST_EDGE + cfg.regions as u32 + (r * cfg.clients_per_region + c) as u32)
}

fn node_count(cfg: Config) -> u32 {
    FIRST_EDGE + cfg.regions as u32 + cfg.clients() as u32
}

/// Which latency region a node belongs to: 0 = origin, 1.. = client
/// regions.
fn region_of(cfg: Config, n: u32) -> usize {
    if n < FIRST_EDGE {
        return 0;
    }
    if n < FIRST_EDGE + cfg.regions as u32 {
        return (n - FIRST_EDGE) as usize + 1;
    }
    (n - FIRST_EDGE - cfg.regions as u32) as usize / cfg.clients_per_region + 1
}

/// One-way latency between two latency regions: 1ms inside a region,
/// widening WAN hops between the origin and each region and between
/// regions (the exact matrix is workload-shaping and hashed via the
/// config, which pins the topology constants through `regions`).
fn region_latency(a: usize, b: usize) -> Duration {
    if a == b {
        return Duration::from_millis(1);
    }
    let (lo, hi) = if a < b { (a, b) } else { (b, a) };
    if lo == 0 {
        // Origin to region r: 20ms, 35ms, 50ms, ...
        Duration::from_millis(20 + 15 * (hi as u64 - 1))
    } else {
        // Region to region (name-service chatter only).
        Duration::from_millis(25 + 10 * (lo as u64 + hi as u64))
    }
}

fn apply_latency_matrix(sim: &Simulation, cfg: Config) {
    let n = node_count(cfg);
    let mut net = sim.net();
    for a in 0..n {
        for b in (a + 1)..n {
            net.set_link_latency(
                NodeId(a),
                NodeId(b),
                region_latency(region_of(cfg, a), region_of(cfg, b)),
            );
        }
    }
}

// -- deterministic workload material -----------------------------------

/// xorshift64* — the per-client RNG. Seeded from the run seed and the
/// client id, so every leg and every thread count samples identically.
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Rng {
        Rng(seed.wrapping_mul(0x9e37_79b9_7f4a_7c15) | 1)
    }

    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    fn next_f64(&mut self) -> f64 {
        (self.next() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// Cumulative Zipf distribution over `n` assets with exponent `s`.
struct Zipf(Vec<f64>);

impl Zipf {
    fn new(n: usize, s: f64) -> Zipf {
        let mut cum = Vec::with_capacity(n);
        let mut total = 0.0;
        for i in 0..n {
            total += 1.0 / ((i + 1) as f64).powf(s);
            cum.push(total);
        }
        for c in &mut cum {
            *c /= total;
        }
        Zipf(cum)
    }

    fn sample(&self, rng: &mut Rng) -> usize {
        let u = rng.next_f64();
        self.0.partition_point(|&c| c < u).min(self.0.len() - 1)
    }
}

/// Deterministic per-asset payload: the length is seeded by the asset
/// id, the bytes by a rolling pattern — both legs must serve exactly
/// these bytes end-to-end.
fn asset_len(cfg: Config, asset: usize) -> usize {
    let span = cfg.payload_max - cfg.payload_min;
    let mut h = Rng::new(SEED ^ (asset as u64).wrapping_mul(0x517c_c1b7_2722_0a95));
    cfg.payload_min + (h.next() as usize % span.max(1))
}

fn asset_payload(cfg: Config, asset: usize) -> Vec<u8> {
    let len = asset_len(cfg, asset);
    (0..len)
        .map(|i| (i as u8).wrapping_mul(31).wrapping_add(asset as u8))
        .collect()
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

fn fnv_bytes(mut h: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

// -- one leg -----------------------------------------------------------

/// Latencies of one region, split by phase (nanoseconds, unsorted).
#[derive(Default)]
struct RegionLat {
    zipf: Vec<u64>,
    flash: Vec<u64>,
}

struct Leg {
    label: String,
    wall: Duration,
    /// XOR over per-call FNV digests of (client, round, asset, bytes):
    /// order-independent, content- and position-sensitive.
    checksum: u64,
    completed: u64,
    ok_gets: u64,
    /// Wire bytes on links touching the catalog node — the RPC path.
    catalog_bytes: u64,
    /// Wire bytes on links touching the origin blob node.
    origin_blob_bytes: u64,
    events: u64,
    msgs: u64,
    bytes: u64,
    lat: Vec<RegionLat>,
    /// Per-edge `(owner, local_hits, remote_calls)`.
    edges: Vec<(String, u64, u64)>,
    /// Flight-recorder counters over the origin store's chunk ops.
    ts_cache_hit: u64,
    ts_cache_miss: u64,
    bulk_resolves: u64,
    summary: String,
    trace_jsonl: String,
    report_json: String,
    trace: TraceArtifact,
    obs: crate::ObsReport,
}

impl Leg {
    fn events_per_sec(&self) -> f64 {
        self.events as f64 / self.wall.as_secs_f64()
    }
    fn msgs_per_sec(&self) -> f64 {
        self.msgs as f64 / self.wall.as_secs_f64()
    }
    fn bytes_per_sec(&self) -> f64 {
        self.bytes as f64 / self.wall.as_secs_f64()
    }
    fn edge_hit_ratio(&self) -> f64 {
        let (h, m) = self
            .edges
            .iter()
            .fold((0u64, 0u64), |(h, m), e| (h + e.1, m + e.2));
        if h + m == 0 {
            0.0
        } else {
            h as f64 / (h + m) as f64
        }
    }
}

fn pct(sorted: &[u64], p: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let idx = ((sorted.len() as f64 * p).ceil() as usize).clamp(1, sorted.len()) - 1;
    sorted[idx]
}

/// Parses `link_bytes@nA->nB` into `(A, B)`.
fn parse_link(series: &str) -> Option<(u32, u32)> {
    let rest = series.strip_prefix("link_bytes@n")?;
    let (a, b) = rest.split_once("->n")?;
    Some((a.parse().ok()?, b.parse().ok()?))
}

#[allow(clippy::too_many_lines)] // one leg is one story: topology, services, clients, harvest
fn run_leg(cfg: Config, bulk: bool, threads: usize) -> Leg {
    let label = if bulk {
        format!("bulk-t{threads}")
    } else {
        format!("inline-t{threads}")
    };
    let mut sim = Simulation::new(NetworkConfig::wan(), SEED)
        .with_domains(cfg.domains)
        .with_threads(threads);
    apply_latency_matrix(&sim, cfg);
    sim.enable_trace(1 << 16);
    sim.obs().enable_timeseries(50_000_000, 4096);

    let ns = naming::spawn_name_server(&sim, NodeId(NODE_NS));

    let params = BulkParams {
        store: "blob".into(),
        threshold: 4096,
        chunk: 16 * 1024,
        depth: 8,
    };
    let spec = if bulk {
        ProxySpec::Bulk {
            inner: Box::new(ProxySpec::Stub),
            params: params.clone(),
        }
    } else {
        ProxySpec::Stub
    };
    ServiceBuilder::new("catalog")
        .spec(spec)
        .object(|| Box::new(KvStore::new()))
        .spawn(&sim, NodeId(NODE_CATALOG), ns);
    ServiceBuilder::new("blob")
        .object(|| Box::new(BlobStore::new()))
        .spawn(&sim, NodeId(NODE_BLOB), ns);
    if bulk {
        for r in 0..cfg.regions {
            spawn_edge_cache(
                &sim,
                edge_node(cfg, r),
                ns,
                format!("edge{r}"),
                "blob",
                cfg.edge_capacity,
            );
        }
    }

    // The publisher fills the catalog, then writes the manifest key the
    // readers poll for. All coordination rides the simulated network so
    // thread count cannot reorder anything observable.
    sim.spawn("publisher", NodeId(NODE_PUBLISHER), move |ctx| {
        let mut rt = ClientRuntime::new(ns);
        let mut s = Session::new(&mut rt, ctx);
        let mut patience = 200;
        let catalog = loop {
            match s.bind("catalog") {
                Ok(h) => break h,
                Err(_) => {
                    patience -= 1;
                    assert!(patience > 0, "publisher could not bind the catalog");
                    if s.ctx().sleep(Duration::from_millis(5)).is_err() {
                        return;
                    }
                }
            }
        };
        for a in 0..cfg.assets {
            s.invoke(
                catalog,
                "put",
                Value::record([
                    ("key", Value::str(format!("asset-{a}"))),
                    ("value", Value::blob(asset_payload(cfg, a))),
                ]),
            )
            .expect("publish must succeed");
        }
        s.invoke(
            catalog,
            "put",
            Value::record([
                ("key", Value::str("__manifest")),
                ("value", Value::str("ready")),
            ]),
        )
        .expect("manifest must publish");
    });

    let checksum = Arc::new(AtomicU64::new(0));
    let completed = Arc::new(AtomicU64::new(0));
    let ok_gets = Arc::new(AtomicU64::new(0));
    let lat: Vec<Arc<Mutex<RegionLat>>> = (0..cfg.regions)
        .map(|_| Arc::new(Mutex::new(RegionLat::default())))
        .collect();

    for r in 0..cfg.regions {
        for c in 0..cfg.clients_per_region {
            let id = r * cfg.clients_per_region + c;
            let route = bulk.then(|| format!("edge{r}"));
            let checksum = Arc::clone(&checksum);
            let completed = Arc::clone(&completed);
            let ok_gets = Arc::clone(&ok_gets);
            let lat = Arc::clone(&lat[r]);
            sim.spawn(format!("r{r}c{c}"), client_node(cfg, r, c), move |ctx| {
                let mut rt = ClientRuntime::new(ns);
                rt.binder_mut().set_bulk_route(route);
                let mut s = Session::new(&mut rt, ctx);
                let mut patience = 400;
                let catalog = loop {
                    match s.bind("catalog") {
                        Ok(h) => break h,
                        Err(_) => {
                            patience -= 1;
                            assert!(patience > 0, "client {id} could not bind");
                            if s.ctx().sleep(Duration::from_millis(5)).is_err() {
                                return;
                            }
                        }
                    }
                };
                // Wait (over the network) for the catalog to fill.
                let mut patience = 4000;
                loop {
                    let v = s.invoke(
                        catalog,
                        "get",
                        Value::record([("key", Value::str("__manifest"))]),
                    );
                    if matches!(&v, Ok(v) if v.as_str() == Some("ready")) {
                        break;
                    }
                    patience -= 1;
                    assert!(patience > 0, "client {id}: manifest never appeared");
                    if s.ctx().sleep(Duration::from_millis(10)).is_err() {
                        return;
                    }
                }
                let zipf = Zipf::new(cfg.assets, cfg.zipf_s_x1000 as f64 / 1000.0);
                let mut rng = Rng::new(SEED ^ ((id as u64) << 17));
                let mut sum = 0u64;
                let mut ok = 0u64;
                for round in 0..cfg.gets_per_client() {
                    let flash = round >= cfg.rounds;
                    // Flash crowd: everyone piles on the *least* popular
                    // asset — cold at every edge when the crowd arrives.
                    let asset = if flash {
                        cfg.assets - 1
                    } else {
                        zipf.sample(&mut rng)
                    };
                    let t0 = ctx_now(&mut s);
                    let mut patience = 40;
                    let v = loop {
                        match s.invoke(
                            catalog,
                            "get",
                            Value::record([("key", Value::str(format!("asset-{asset}")))]),
                        ) {
                            Ok(v) => break v,
                            Err(e) => {
                                patience -= 1;
                                assert!(patience > 0, "client {id} get failed for good: {e}");
                                if s.ctx().sleep(Duration::from_millis(10)).is_err() {
                                    return;
                                }
                            }
                        }
                    };
                    let dt = ctx_now(&mut s) - t0;
                    let bytes = v.as_blob().expect("catalog serves blobs");
                    let mut h = FNV_OFFSET;
                    h = fnv_bytes(h, &(id as u64).to_le_bytes());
                    h = fnv_bytes(h, &u64::from(round).to_le_bytes());
                    h = fnv_bytes(h, &(asset as u64).to_le_bytes());
                    h = fnv_bytes(h, bytes);
                    sum ^= h;
                    ok += 1;
                    {
                        let mut l = lat.lock().unwrap();
                        if flash {
                            l.flash.push(dt);
                        } else {
                            l.zipf.push(dt);
                        }
                    }
                    if s.ctx().sleep(Duration::from_millis(2)).is_err() {
                        return;
                    }
                }
                checksum.fetch_xor(sum, Ordering::Relaxed);
                ok_gets.fetch_add(ok, Ordering::Relaxed);
                completed.fetch_add(1, Ordering::Relaxed);
            });
        }
    }

    let t0 = Instant::now();
    let run = sim.run();
    let wall = t0.elapsed();

    let report = sim.obs_report();
    let ts = report.timeseries.as_ref().expect("recorder was on");
    let mut catalog_bytes = 0u64;
    let mut origin_blob_bytes = 0u64;
    for name in ts.series_names() {
        if let Some((a, b)) = parse_link(&name) {
            let total = ts.counter_total(&name);
            if a == NODE_CATALOG || b == NODE_CATALOG {
                catalog_bytes += total;
            }
            if a == NODE_BLOB || b == NODE_BLOB {
                origin_blob_bytes += total;
            }
        }
    }
    let edges: Vec<(String, u64, u64)> = report
        .proxies
        .iter()
        .filter(|(k, _)| k.starts_with("blob@edge-"))
        .map(|(k, s)| (k.clone(), s.local_hits, s.remote_calls))
        .collect();
    let bulk_resolves: u64 = report.proxies.values().map(|s| s.bulk_resolves).sum();

    let trace = capture_trace(format!("t{threads}"), &sim);
    let trace_jsonl = obs::to_jsonl(&trace.trace);
    let obs_rep = obs_report(format!("e19-{label}"), &sim);
    let report_json = obs_rep.json.clone();
    let summary = format!(
        "end={} sent={} delivered={} events={} spawned={} finished={} alive={}",
        run.end_time.as_nanos(),
        run.metrics.msgs_sent,
        run.metrics.msgs_delivered,
        run.metrics.events_dispatched,
        run.metrics.processes_spawned,
        run.finished,
        run.alive
    );
    Leg {
        label,
        wall,
        checksum: checksum.load(Ordering::Relaxed),
        completed: completed.load(Ordering::Relaxed),
        ok_gets: ok_gets.load(Ordering::Relaxed),
        catalog_bytes,
        origin_blob_bytes,
        events: run.metrics.events_dispatched,
        msgs: run.metrics.msgs_sent,
        bytes: run.metrics.bytes_sent,
        lat: lat
            .iter()
            .map(|l| {
                let mut l = l.lock().unwrap();
                l.zipf.sort_unstable();
                l.flash.sort_unstable();
                RegionLat {
                    zipf: std::mem::take(&mut l.zipf),
                    flash: std::mem::take(&mut l.flash),
                }
            })
            .collect(),
        edges,
        ts_cache_hit: ts.counter_total("cache_hit@blob"),
        ts_cache_miss: ts.counter_total("cache_miss@blob"),
        bulk_resolves,
        summary,
        trace_jsonl,
        report_json,
        trace,
        obs: obs_rep,
    }
}

/// The session's current virtual time, in nanoseconds.
fn ctx_now(s: &mut Session<'_>) -> u64 {
    s.ctx().now().as_nanos()
}

// -- artifact ----------------------------------------------------------

/// Where `BENCH_e19.json` lands: `$PROXIDE_BENCH_DIR` or the repo root.
fn artifact_path() -> std::path::PathBuf {
    if let Some(dir) = std::env::var_os("PROXIDE_BENCH_DIR") {
        return std::path::PathBuf::from(dir).join("BENCH_e19.json");
    }
    let manifest = std::path::Path::new(env!("CARGO_MANIFEST_DIR"));
    manifest
        .ancestors()
        .nth(2)
        .unwrap_or(manifest)
        .join("BENCH_e19.json")
}

/// FNV-1a over the workload-shaping fields.
fn config_hash(cfg: Config) -> String {
    let mut h: u64 = FNV_OFFSET;
    let mut mix = |v: u64| {
        h = fnv_bytes(h, &v.to_le_bytes());
    };
    mix(cfg.regions as u64);
    mix(cfg.clients_per_region as u64);
    mix(cfg.assets as u64);
    mix(u64::from(cfg.rounds));
    mix(u64::from(cfg.flash_rounds));
    mix(cfg.zipf_s_x1000);
    mix(cfg.payload_min as u64);
    mix(cfg.payload_max as u64);
    mix(cfg.edge_capacity as u64);
    mix(cfg.domains as u64);
    for t in THREADS {
        mix(t as u64);
    }
    format!("{h:016x}")
}

fn git_rev() -> Option<String> {
    let out = std::process::Command::new("git")
        .args(["rev-parse", "--short", "HEAD"])
        .output()
        .ok()?;
    if !out.status.success() {
        return None;
    }
    let rev = String::from_utf8(out.stdout).ok()?;
    let rev = rev.trim();
    if rev.is_empty() {
        None
    } else {
        Some(rev.to_owned())
    }
}

fn artifact_meta(cfg: Config) -> String {
    let mut meta = format!(
        "{{\"seed\": {SEED}, \"config_hash\": \"{}\"",
        config_hash(cfg)
    );
    if let Some(rev) = git_rev() {
        meta.push_str(&format!(", \"git_rev\": \"{rev}\""));
    }
    if let Ok(date) = std::env::var("PROXIDE_RUN_DATE") {
        if !date.is_empty() {
            meta.push_str(&format!(", \"date\": \"{date}\""));
        }
    }
    meta.push('}');
    meta
}

#[allow(clippy::too_many_arguments)] // flat snapshot of the run, serialized once
fn artifact_json(
    cfg: Config,
    mode: &str,
    inline: &Leg,
    bulk: &Leg,
    host_cores: usize,
    reduction: f64,
    identical_results: bool,
    deterministic: bool,
) -> String {
    let mut regions_json = String::new();
    for r in 0..cfg.regions {
        if r > 0 {
            regions_json.push_str(",\n");
        }
        let il = &inline.lat[r];
        let bl = &bulk.lat[r];
        regions_json.push_str(&format!(
            "    {{\"region\": {r}, \
             \"zipf_p50_ms\": {{\"inline\": {:.3}, \"bulk\": {:.3}}}, \
             \"zipf_p99_ms\": {{\"inline\": {:.3}, \"bulk\": {:.3}}}, \
             \"flash_p50_ms\": {{\"inline\": {:.3}, \"bulk\": {:.3}}}, \
             \"flash_p99_ms\": {{\"inline\": {:.3}, \"bulk\": {:.3}}}}}",
            pct(&il.zipf, 0.50) as f64 / 1e6,
            pct(&bl.zipf, 0.50) as f64 / 1e6,
            pct(&il.zipf, 0.99) as f64 / 1e6,
            pct(&bl.zipf, 0.99) as f64 / 1e6,
            pct(&il.flash, 0.50) as f64 / 1e6,
            pct(&bl.flash, 0.50) as f64 / 1e6,
            pct(&il.flash, 0.99) as f64 / 1e6,
            pct(&bl.flash, 0.99) as f64 / 1e6,
        ));
    }
    format!(
        concat!(
            "{{\n",
            "  \"experiment\": \"E19\",\n",
            "  \"title\": \"out-of-band bulk data plane (pass-by-reference + edge caches, Zipf + flash crowd)\",\n",
            "  \"mode\": \"{mode}\",\n",
            "  \"meta\": {meta},\n",
            "  \"host_cores\": {host_cores},\n",
            "  \"identical_results_inline_vs_bulk\": {ident},\n",
            "  \"deterministic_across_threads\": {det},\n",
            "  \"rpc_bytes\": {{\"inline\": {cb_inline}, \"bulk\": {cb_bulk}, ",
            "\"reduction_factor\": {reduction:.2}}},\n",
            "  \"origin_blob_bytes\": {{\"inline\": {ob_inline}, \"bulk\": {ob_bulk}}},\n",
            "  \"edge_hit_ratio\": {hit:.4},\n",
            "  \"config\": {{\"regions\": {regions}, \"clients_per_region\": {cpr}, ",
            "\"assets\": {assets}, \"rounds\": {rounds}, \"flash_rounds\": {flash}, ",
            "\"zipf_s_x1000\": {zipf}, \"payload_min\": {pmin}, \"payload_max\": {pmax}, ",
            "\"edge_capacity\": {cap}, \"domains\": {domains}, \"threads_swept\": [1, 4]}},\n",
            "  \"regions\": [\n{regions_json}\n  ],\n",
            "  \"best\": {{\n",
            "    \"leg\": \"{leg}\",\n",
            "    \"wall_ms\": {wall:.3},\n",
            "    \"rpc_bytes_saved_factor\": {reduction:.2},\n",
            "    \"events_per_sec\": {eps:.0},\n",
            "    \"msgs_per_sec\": {mps:.0},\n",
            "    \"bytes_per_sec\": {bps:.0}\n",
            "  }}\n",
            "}}\n",
        ),
        mode = mode,
        meta = artifact_meta(cfg),
        host_cores = host_cores,
        ident = identical_results,
        det = deterministic,
        cb_inline = inline.catalog_bytes,
        cb_bulk = bulk.catalog_bytes,
        reduction = reduction,
        ob_inline = inline.origin_blob_bytes,
        ob_bulk = bulk.origin_blob_bytes,
        hit = bulk.edge_hit_ratio(),
        regions = cfg.regions,
        cpr = cfg.clients_per_region,
        assets = cfg.assets,
        rounds = cfg.rounds,
        flash = cfg.flash_rounds,
        zipf = cfg.zipf_s_x1000,
        pmin = cfg.payload_min,
        pmax = cfg.payload_max,
        cap = cfg.edge_capacity,
        domains = cfg.domains,
        regions_json = regions_json,
        leg = bulk.label,
        wall = bulk.wall.as_secs_f64() * 1e3,
        eps = bulk.events_per_sec(),
        mps = bulk.msgs_per_sec(),
        bps = bulk.bytes_per_sec(),
    )
}

/// Runs E19 and returns its tables and shape checks.
#[allow(clippy::too_many_lines)] // three legs, four tables, nine checks
pub fn run() -> ExperimentOutput {
    let (cfg, mode) = Config::pick();
    let host_cores = std::thread::available_parallelism().map_or(1, std::num::NonZero::get);

    let inline = run_leg(cfg, false, 1);
    let bulk_legs: Vec<Leg> = THREADS.iter().map(|&t| run_leg(cfg, true, t)).collect();
    let bulk = &bulk_legs[0];
    let bulk4 = bulk_legs.last().expect("sweep is non-empty");

    let reduction = inline.catalog_bytes as f64 / (bulk.catalog_bytes.max(1)) as f64;
    let identical_results = inline.checksum == bulk.checksum && inline.checksum != 0;

    let mut divergences = Vec::new();
    if bulk4.summary != bulk.summary {
        divergences.push("summary counters".to_owned());
    }
    if bulk4.trace_jsonl != bulk.trace_jsonl {
        divergences.push("causal trace".to_owned());
    }
    if bulk4.report_json != bulk.report_json {
        divergences.push("RunReport JSON".to_owned());
    }
    if bulk4.checksum != bulk.checksum {
        divergences.push("content checksum".to_owned());
    }
    let deterministic = divergences.is_empty();

    let total_gets = cfg.clients() as u64 * u64::from(cfg.gets_per_client());

    let mut bytes_table = Table::new(
        format!(
            "RPC-path bytes ({mode}) — {} regions x {} clients, {} assets, \
             {} zipf + {} flash rounds",
            cfg.regions, cfg.clients_per_region, cfg.assets, cfg.rounds, cfg.flash_rounds
        ),
        &[
            "leg",
            "catalog bytes",
            "origin-blob bytes",
            "total bytes",
            "wall ms",
        ],
    );
    for l in std::iter::once(&inline).chain(bulk_legs.iter()) {
        bytes_table.add_row(vec![
            l.label.clone(),
            l.catalog_bytes.to_string(),
            l.origin_blob_bytes.to_string(),
            l.bytes.to_string(),
            format!("{:.2}", l.wall.as_secs_f64() * 1e3),
        ]);
    }

    let mut lat_table = Table::new(
        "per-region fetch latency (ms) — inline vs bulk (t1)",
        &[
            "region",
            "phase",
            "inline p50",
            "bulk p50",
            "inline p99",
            "bulk p99",
        ],
    );
    for r in 0..cfg.regions {
        for phase in ["zipf", "flash"] {
            let sel = |l: &RegionLat| {
                if phase == "zipf" {
                    l.zipf.clone()
                } else {
                    l.flash.clone()
                }
            };
            let il = sel(&inline.lat[r]);
            let bl = sel(&bulk.lat[r]);
            lat_table.add_row(vec![
                format!("r{r}"),
                phase.to_owned(),
                format!("{:.2}", pct(&il, 0.50) as f64 / 1e6),
                format!("{:.2}", pct(&bl, 0.50) as f64 / 1e6),
                format!("{:.2}", pct(&il, 0.99) as f64 / 1e6),
                format!("{:.2}", pct(&bl, 0.99) as f64 / 1e6),
            ]);
        }
    }

    let mut edge_table = Table::new(
        "edge-cache hierarchy (bulk t1) — per-edge hits vs origin fetches",
        &["edge", "local hits", "origin calls", "hit ratio"],
    );
    for (owner, hits, remote) in &bulk.edges {
        edge_table.add_row(vec![
            owner.clone(),
            hits.to_string(),
            remote.to_string(),
            format!("{:.3}", *hits as f64 / (*hits + *remote).max(1) as f64),
        ]);
    }
    edge_table.add_row(vec![
        "flight-recorder".into(),
        bulk.ts_cache_hit.to_string(),
        bulk.ts_cache_miss.to_string(),
        format!(
            "{:.3}",
            bulk.ts_cache_hit as f64 / (bulk.ts_cache_hit + bulk.ts_cache_miss).max(1) as f64
        ),
    ]);

    let path = artifact_path();
    let json = artifact_json(
        cfg,
        mode,
        &inline,
        bulk,
        host_cores,
        reduction,
        identical_results,
        deterministic,
    );
    let wrote = std::fs::write(&path, &json);
    let artifact_detail = match &wrote {
        Ok(()) => format!("wrote {}", path.display()),
        Err(e) => format!("write to {} failed: {e}", path.display()),
    };

    // Flash-phase medians: every bulk get still pays the catalog WAN
    // round-trip for the (fixed-size) reference, so the median cannot
    // *beat* inline — the claim is parity: moving the payload off the
    // RPC path costs nothing at the median, because once the crowd's
    // first fetch warms each region's edge the resolve is region-local.
    let flash_p50_parity = (0..cfg.regions).all(|r| {
        pct(&bulk.lat[r].flash, 0.50) as f64 <= pct(&inline.lat[r].flash, 0.50) as f64 * 1.25
    });

    let checks = vec![
        check(
            "by-reference results are identical to inline marshalling",
            identical_results,
            format!(
                "content checksum inline={:016x} bulk={:016x}",
                inline.checksum, bulk.checksum
            ),
        ),
        check(
            ">=5x reduction in RPC-path bytes through the catalog node",
            reduction >= 5.0,
            format!(
                "inline {} B vs bulk {} B — {reduction:.1}x",
                inline.catalog_bytes, bulk.catalog_bytes
            ),
        ),
        check(
            "bulk leg byte-identical across scheduler threads (1 vs 4)",
            deterministic,
            if deterministic {
                "summary + causal trace + RunReport JSON + checksum identical".to_owned()
            } else {
                format!("diverged: {}", divergences.join(", "))
            },
        ),
        check(
            "every client completed every get in every leg",
            std::iter::once(&inline)
                .chain(bulk_legs.iter())
                .all(|l| l.completed == cfg.clients() as u64 && l.ok_gets == total_gets),
            format!(
                "completed/gets per leg: {:?} (want {}/{total_gets})",
                std::iter::once(&inline)
                    .chain(bulk_legs.iter())
                    .map(|l| (l.completed, l.ok_gets))
                    .collect::<Vec<_>>(),
                cfg.clients()
            ),
        ),
        check(
            "edge hierarchy absorbs repeat fetches (hit ratio >= 0.5)",
            bulk.edge_hit_ratio() >= 0.5,
            format!(
                "{:.3} across {} edges ({} payload resolves)",
                bulk.edge_hit_ratio(),
                bulk.edges.len(),
                bulk.bulk_resolves
            ),
        ),
        check(
            "flash crowd served from the edge: bulk flash p50 within 1.25x of inline per region",
            flash_p50_parity,
            (0..cfg.regions)
                .map(|r| {
                    format!(
                        "r{r} {:.1}->{:.1}ms",
                        pct(&inline.lat[r].flash, 0.50) as f64 / 1e6,
                        pct(&bulk.lat[r].flash, 0.50) as f64 / 1e6
                    )
                })
                .collect::<Vec<_>>()
                .join(", "),
        ),
        check(
            "payload crosses the WAN per-region, not per-client: bulk origin bytes < inline/2",
            bulk.origin_blob_bytes * 2 < inline.catalog_bytes,
            format!(
                "bulk origin-blob {} B vs inline catalog {} B",
                bulk.origin_blob_bytes, inline.catalog_bytes
            ),
        ),
        check(
            "every region has an active edge with origin traffic",
            bulk.edges.len() == cfg.regions && bulk.edges.iter().all(|e| e.2 > 0),
            format!("{} edges: {:?}", bulk.edges.len(), bulk.edges),
        ),
        check(
            "BENCH_e19.json artifact written",
            wrote.is_ok(),
            artifact_detail,
        ),
    ];

    let mut traces = Vec::new();
    let mut reports = Vec::new();
    for l in bulk_legs {
        traces.push(l.trace);
        reports.push(l.obs);
    }

    ExperimentOutput {
        id: "E19",
        title: "Out-of-band bulk data plane (pass-by-reference proxies, hierarchical edge caches)",
        tables: vec![bytes_table, lat_table, edge_table],
        checks,
        reports,
        traces,
    }
}
