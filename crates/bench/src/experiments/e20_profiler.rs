//! E20 — Continuous profiler: overhead, conservation, determinism.
//!
//! The profiler (`obs::profile`) folds RAII scope timings into bounded
//! per-lane frame tables and brackets every scheduler round with phase
//! timestamps (`sched;round;{pick,exec,merge}`). This experiment puts
//! the three claims it ships under on the record:
//!
//! * **Overhead** — after a discarded warmup, the E18 workload runs
//!   five interleaved off/on pairs (1 thread, same seed); the gated
//!   statistic is the *median of the per-pair wall ratios*, so slow
//!   host drift cancels within each adjacent pair and drift-poisoned
//!   pairs cannot swing the verdict. Full mode gates at <5%; smoke
//!   mode is too short to time honestly on a shared CI core, so there
//!   the gate loosens to <100% and the measured number is provenance,
//!   not verdict.
//! * **Conservation** — the driver stamps consecutive `Instant`s
//!   around each round's phases, so the phase durations telescope:
//!   pick + exec + merge must equal the round total *exactly*, not
//!   within an epsilon. Same for call counts (one fold per phase per
//!   round).
//! * **Determinism** — frame *paths and call counts* are pure
//!   functions of the simulated execution, so `canonical_frames()`
//!   (paths + calls, wall excluded) must be byte-identical between
//!   repeated 1-thread runs and across 1 vs 4 worker threads; and a
//!   profiled run must leave the causal trace and summary counters of
//!   an unprofiled run untouched. `wall_ns` is host time: reported in
//!   every artifact, judged by none.
//!
//! Artifacts: `BENCH_e20.json` (perfgate contract: `best` holds the
//! fastest leg's wall-clock rates; profile headline fields ride along
//! as provenance) plus `e20-profile.folded` (collapsed flamegraph,
//! validated) and `e20-profile.report.json` (RunReport with the
//! `profile` section, for `tracectl flame`) under the trace dir.
//!
//! Fast smoke mode for CI: set `PROXIDE_E20_SMOKE=1`.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use proxy_core::{AsyncHandle, BindFuture, CallFuture, ProxySpec, ServiceBuilder, SessionCore};
use services::kv::KvStore;
use simnet::{NetworkConfig, NodeId, Poll, ProcCx, Process, Simulation};
use wire::Value;

use crate::{capture_trace, check, obs_report, trace_dir, ExperimentOutput, Table, TraceArtifact};

/// Folded-frame table capacity per writer lane. Generous for this
/// workload (a few dozen distinct paths); evictions are counted, never
/// silent, and the artifact records both numbers.
const MAX_FRAMES: usize = 4096;

/// Timeseries window for the utilization series (1ms of simulated
/// time). Enabled in *both* profiled and unprofiled legs so the only
/// delta the overhead ratio sees is the profiler itself.
const TS_WINDOW_NS: u64 = 1_000_000;
const TS_CAPACITY: usize = 4096;

/// One workload configuration — the E18 shape, reused deliberately so
/// the overhead number is measured on a workload with a committed
/// unprofiled baseline.
#[derive(Debug, Clone, Copy)]
struct Config {
    domains: usize,
    clients: usize,
    calls_per_client: u32,
    shards: usize,
    nodes: u32,
}

impl Config {
    fn full() -> Config {
        Config {
            domains: 8,
            clients: 20_000,
            calls_per_client: 4,
            shards: 8,
            nodes: 32,
        }
    }

    fn smoke() -> Config {
        Config {
            domains: 8,
            clients: 1_000,
            calls_per_client: 4,
            shards: 4,
            nodes: 16,
        }
    }

    fn pick() -> (Config, &'static str) {
        match std::env::var_os("PROXIDE_E20_SMOKE") {
            Some(v) if !v.is_empty() && v != "0" => (Config::smoke(), "smoke"),
            _ => (Config::full(), "full"),
        }
    }

    fn total_calls(&self) -> u64 {
        self.clients as u64 * u64::from(self.calls_per_client)
    }
}

/// Where a poll-driven client is in its lifecycle.
enum ClientState {
    Start,
    Binding(BindFuture),
    Calling(AsyncHandle, CallFuture),
    Done,
}

/// One client: binds to its shard and alternates put/get calls through
/// the non-blocking session surface (same machine as E16/E18).
struct ClientProc {
    core: SessionCore,
    state: ClientState,
    shard: String,
    id: usize,
    calls_target: u32,
    calls_done: u32,
    ok: Arc<AtomicU64>,
    completed: Arc<AtomicU64>,
}

impl ClientProc {
    fn next_call(&mut self, cx: &mut ProcCx, h: AsyncHandle) {
        let key = format!("c{}/k", self.id);
        let f = if self.calls_done.is_multiple_of(2) {
            self.core.invoke_async(
                cx,
                h,
                "put",
                Value::record([
                    ("key", Value::str(key)),
                    ("value", Value::str(format!("v{}", self.calls_done))),
                ]),
            )
        } else {
            self.core
                .invoke_async(cx, h, "get", Value::record([("key", Value::str(key))]))
        };
        self.state = ClientState::Calling(h, f);
    }
}

impl Process for ClientProc {
    fn poll(&mut self, cx: &mut ProcCx) -> Poll<()> {
        loop {
            match self.state {
                ClientState::Start => {
                    let f = self.core.bind_async(cx, &self.shard);
                    self.state = ClientState::Binding(f);
                }
                ClientState::Binding(f) => match self.core.poll_bind(cx, f) {
                    Poll::Pending => return Poll::Pending,
                    Poll::Ready(Ok(h)) => self.next_call(cx, h),
                    Poll::Ready(Err(_)) => {
                        self.state = ClientState::Done;
                    }
                },
                ClientState::Calling(h, f) => match self.core.poll_call(cx, f) {
                    Poll::Pending => return Poll::Pending,
                    Poll::Ready(r) => {
                        if r.is_ok() {
                            self.ok.fetch_add(1, Ordering::Relaxed);
                        }
                        self.calls_done += 1;
                        if self.calls_done < self.calls_target {
                            self.next_call(cx, h);
                        } else {
                            self.state = ClientState::Done;
                        }
                    }
                },
                ClientState::Done => {
                    self.completed.fetch_add(1, Ordering::Relaxed);
                    return Poll::Ready(());
                }
            }
        }
    }
}

/// One leg: the measured numbers, the determinism surfaces, and (when
/// profiled) the folded-stack report.
struct Leg {
    label: &'static str,
    profiled: bool,
    threads: usize,
    wall: Duration,
    sim_us: f64,
    ok: u64,
    completed: u64,
    events: u64,
    msgs: u64,
    bytes: u64,
    summary: String,
    trace_jsonl: String,
    profile: Option<obs::ProfileReport>,
    trace: TraceArtifact,
    obs: crate::ObsReport,
}

impl Leg {
    fn events_per_sec(&self) -> f64 {
        self.events as f64 / self.wall.as_secs_f64()
    }
    fn msgs_per_sec(&self) -> f64 {
        self.msgs as f64 / self.wall.as_secs_f64()
    }
    fn bytes_per_sec(&self) -> f64 {
        self.bytes as f64 / self.wall.as_secs_f64()
    }
}

fn run_leg(cfg: Config, seed: u64, threads: usize, profiled: bool, label: &'static str) -> Leg {
    let mut sim = Simulation::new(NetworkConfig::lan(), seed)
        .with_domains(cfg.domains)
        .with_threads(threads);
    sim.enable_trace(1 << 16);
    sim.obs().enable_timeseries(TS_WINDOW_NS, TS_CAPACITY);
    if profiled {
        sim.obs().enable_profile(MAX_FRAMES);
    }
    let ns = naming::spawn_name_server(&sim, NodeId(0));
    for s in 0..cfg.shards {
        ServiceBuilder::new(format!("kv{s}"))
            .spec(ProxySpec::Stub)
            .object(|| Box::new(KvStore::new()))
            .spawn(&sim, NodeId(1 + s as u32), ns);
    }
    let ok = Arc::new(AtomicU64::new(0));
    let completed = Arc::new(AtomicU64::new(0));
    let first_node = 1 + cfg.shards as u32;
    for c in 0..cfg.clients {
        let node = NodeId(first_node + (c as u32 % cfg.nodes));
        sim.spawn_poll(
            format!("c{c}"),
            node,
            ClientProc {
                core: SessionCore::new(ns),
                state: ClientState::Start,
                shard: format!("kv{}", c % cfg.shards),
                id: c,
                calls_target: cfg.calls_per_client,
                calls_done: 0,
                ok: Arc::clone(&ok),
                completed: Arc::clone(&completed),
            },
        );
    }
    let t0 = Instant::now();
    let report = sim.run();
    let wall = t0.elapsed();

    let profile = sim.obs().profile_report();
    let trace = capture_trace(label, &sim);
    let trace_jsonl = obs::to_jsonl(&trace.trace);
    let obs = obs_report(format!("e20-{label}"), &sim);
    let summary = format!(
        "end={} sent={} delivered={} events={} spawned={} peak={} finished={} alive={}",
        report.end_time.as_nanos(),
        report.metrics.msgs_sent,
        report.metrics.msgs_delivered,
        report.metrics.events_dispatched,
        report.metrics.processes_spawned,
        report.metrics.processes_peak,
        report.finished,
        report.alive
    );
    Leg {
        label,
        profiled,
        threads,
        wall,
        sim_us: report.end_time.as_nanos() as f64 / 1000.0,
        ok: ok.load(Ordering::Relaxed),
        completed: completed.load(Ordering::Relaxed),
        events: report.metrics.events_dispatched,
        msgs: report.metrics.msgs_sent,
        bytes: report.metrics.bytes_sent,
        summary,
        trace_jsonl,
        profile,
        trace,
        obs,
    }
}

/// Where `BENCH_e20.json` lands: `$PROXIDE_BENCH_DIR` or the repo root.
fn artifact_path() -> std::path::PathBuf {
    if let Some(dir) = std::env::var_os("PROXIDE_BENCH_DIR") {
        return std::path::PathBuf::from(dir).join("BENCH_e20.json");
    }
    let manifest = std::path::Path::new(env!("CARGO_MANIFEST_DIR"));
    manifest
        .ancestors()
        .nth(2)
        .unwrap_or(manifest)
        .join("BENCH_e20.json")
}

/// FNV-1a over the workload-shaping fields (perfgate's config
/// fingerprint). The frame-table capacity shapes what the profiler
/// keeps, so it is hashed; `host_cores` is provenance and is not.
fn config_hash(cfg: Config) -> String {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut mix = |v: u64| {
        for b in v.to_le_bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    };
    mix(cfg.domains as u64);
    mix(cfg.clients as u64);
    mix(u64::from(cfg.calls_per_client));
    mix(cfg.shards as u64);
    mix(u64::from(cfg.nodes));
    mix(MAX_FRAMES as u64);
    format!("{h:016x}")
}

fn git_rev() -> Option<String> {
    let out = std::process::Command::new("git")
        .args(["rev-parse", "--short", "HEAD"])
        .output()
        .ok()?;
    if !out.status.success() {
        return None;
    }
    let rev = String::from_utf8(out.stdout).ok()?;
    let rev = rev.trim();
    if rev.is_empty() {
        None
    } else {
        Some(rev.to_owned())
    }
}

fn artifact_meta(cfg: Config) -> String {
    let mut meta = format!(
        "{{\"seed\": 2000, \"config_hash\": \"{}\"",
        config_hash(cfg)
    );
    if let Some(rev) = git_rev() {
        meta.push_str(&format!(", \"git_rev\": \"{rev}\""));
    }
    if let Ok(date) = std::env::var("PROXIDE_RUN_DATE") {
        if !date.is_empty() {
            meta.push_str(&format!(", \"date\": \"{date}\""));
        }
    }
    meta.push('}');
    meta
}

#[allow(clippy::too_many_arguments)]
fn artifact_json(
    cfg: Config,
    mode: &str,
    legs: &[Leg],
    best: &Leg,
    host_cores: usize,
    overhead_pct: f64,
    top_frame: &str,
    top_wall_ns: u64,
    prof: &obs::ProfileReport,
) -> String {
    let mut legs_json = String::new();
    for (i, l) in legs.iter().enumerate() {
        if i > 0 {
            legs_json.push_str(",\n");
        }
        legs_json.push_str(&format!(
            "    {{\"label\": \"{}\", \"profiled\": {}, \"threads\": {}, \"wall_ms\": {:.3}, \"events_per_sec\": {:.0}}}",
            l.label,
            l.profiled,
            l.threads,
            l.wall.as_secs_f64() * 1e3,
            l.events_per_sec()
        ));
    }
    format!(
        concat!(
            "{{\n",
            "  \"experiment\": \"E20\",\n",
            "  \"title\": \"continuous profiler (folded stacks, phase attribution, overhead)\",\n",
            "  \"mode\": \"{mode}\",\n",
            "  \"meta\": {meta},\n",
            "  \"host_cores\": {host_cores},\n",
            "  \"profile\": {{\n",
            "    \"overhead_pct\": {overhead:.2},\n",
            "    \"frames_resident\": {resident},\n",
            "    \"frames_evicted\": {evicted},\n",
            "    \"self_ns\": {self_ns},\n",
            "    \"self_calls\": {self_calls},\n",
            "    \"top_frame\": \"{top_frame}\",\n",
            "    \"top_frame_wall_ms\": {top_wall:.3}\n",
            "  }},\n",
            "  \"config\": {{\"domains\": {domains}, \"clients\": {clients}, ",
            "\"calls_per_client\": {cpc}, \"shards\": {shards}, \"nodes\": {nodes}, ",
            "\"max_frames\": {max_frames}}},\n",
            "  \"legs\": [\n{legs}\n  ],\n",
            "  \"best\": {{\n",
            "    \"threads\": {bt},\n",
            "    \"wall_ms\": {wall:.3},\n",
            "    \"sim_ms\": {sim:.3},\n",
            "    \"ok_calls\": {ok},\n",
            "    \"events_dispatched\": {events},\n",
            "    \"events_per_sec\": {eps:.0},\n",
            "    \"msgs_per_sec\": {mps:.0},\n",
            "    \"bytes_per_sec\": {bps:.0}\n",
            "  }}\n",
            "}}\n",
        ),
        mode = mode,
        meta = artifact_meta(cfg),
        host_cores = host_cores,
        overhead = overhead_pct,
        resident = prof.frames_resident,
        evicted = prof.frames_evicted,
        self_ns = prof.self_ns,
        self_calls = prof.self_calls,
        top_frame = top_frame,
        top_wall = top_wall_ns as f64 / 1e6,
        domains = cfg.domains,
        clients = cfg.clients,
        cpc = cfg.calls_per_client,
        shards = cfg.shards,
        nodes = cfg.nodes,
        max_frames = MAX_FRAMES,
        legs = legs_json,
        bt = best.threads,
        wall = best.wall.as_secs_f64() * 1e3,
        sim = best.sim_us / 1e3,
        ok = best.ok,
        events = best.events,
        eps = best.events_per_sec(),
        mps = best.msgs_per_sec(),
        bps = best.bytes_per_sec(),
    )
}

/// The scheduler phase frames the driver folds once per round.
const PHASE_FRAMES: [&str; 3] = ["sched;round;pick", "sched;round;exec", "sched;round;merge"];

/// Runs E20 and returns its tables and shape checks.
pub fn run() -> ExperimentOutput {
    let (cfg, mode) = Config::pick();
    let host_cores = std::thread::available_parallelism().map_or(1, std::num::NonZero::get);
    let seed = 2000;

    // A discarded warmup leg absorbs cold caches, then off/on legs
    // interleave (three pairs) so slow host drift — CPU steal, thermal
    // throttle — lands on both arms instead of biasing one. The
    // overhead ratio compares the best wall of each arm; a profiled
    // 4-thread leg closes the sweep for the cross-thread frame
    // identity check.
    drop(run_leg(cfg, seed, 1, false, "warmup"));
    let legs = vec![
        run_leg(cfg, seed, 1, false, "off-t1-a"),
        run_leg(cfg, seed, 1, true, "on-t1-a"),
        run_leg(cfg, seed, 1, false, "off-t1-b"),
        run_leg(cfg, seed, 1, true, "on-t1-b"),
        run_leg(cfg, seed, 1, false, "off-t1-c"),
        run_leg(cfg, seed, 1, true, "on-t1-c"),
        run_leg(cfg, seed, 1, false, "off-t1-d"),
        run_leg(cfg, seed, 1, true, "on-t1-d"),
        run_leg(cfg, seed, 1, false, "off-t1-e"),
        run_leg(cfg, seed, 1, true, "on-t1-e"),
        run_leg(cfg, seed, 4, true, "on-t4"),
    ];
    let off_best = legs
        .iter()
        .filter(|l| !l.profiled)
        .min_by_key(|l| l.wall)
        .expect("five off legs");
    let on_t1: Vec<&Leg> = legs
        .iter()
        .filter(|l| l.profiled && l.threads == 1)
        .collect();
    let on_best = *on_t1.iter().min_by_key(|l| l.wall).expect("five on legs");
    let on_a = on_t1[0];
    let on_b = on_t1[1];
    let on_t4 = legs.last().expect("eleven legs");

    // Each on leg is compared to the off leg that ran immediately
    // before it, so slow host drift (CPU steal, thermal throttle)
    // cancels within a pair; the median over the five pairs shrugs
    // off drift-poisoned ones. An unpaired min-vs-min would re-admit
    // exactly the noise the interleaving was built to cancel.
    let off_legs: Vec<&Leg> = legs.iter().filter(|l| !l.profiled).collect();
    let mut pair_ratios: Vec<f64> = off_legs
        .iter()
        .zip(on_t1.iter())
        .map(|(off, on)| on.wall.as_secs_f64() / off.wall.as_secs_f64() - 1.0)
        .collect();
    pair_ratios.sort_by(f64::total_cmp);
    let overhead = pair_ratios[pair_ratios.len() / 2];
    let overhead_pct = overhead * 100.0;
    // Full mode is the committed number and gates at <5%. Smoke legs
    // finish in tens of milliseconds on a shared CI core, where a
    // single scheduling hiccup dwarfs the profiler; the smoke gate only
    // catches catastrophic regressions (2x).
    let max_overhead = if mode == "full" { 0.05 } else { 1.0 };

    let prof = on_a.profile.clone().unwrap_or_default();

    // Phase conservation: the driver stamps t0..t3 consecutively, so
    // Duration subtraction telescopes and the phase sums must equal the
    // round totals exactly — calls and wall both.
    let round = prof.frames.get("sched;round").copied().unwrap_or_default();
    let phase_wall: u64 = PHASE_FRAMES
        .iter()
        .filter_map(|f| prof.frames.get(*f))
        .map(|s| s.wall_ns)
        .sum();
    let phases_present = PHASE_FRAMES.iter().all(|f| prof.frames.contains_key(*f));
    let phase_calls_ok = phases_present
        && PHASE_FRAMES
            .iter()
            .all(|f| prof.frames[*f].calls == round.calls);
    let conserved = phases_present && round.calls > 0 && phase_wall == round.wall_ns;

    // Top frame by attributed wall time.
    let (top_frame, top_stat) = prof
        .frames
        .iter()
        .max_by_key(|(_, s)| s.wall_ns)
        .map(|(p, s)| (p.clone(), *s))
        .unwrap_or_default();
    let rpc_seen = prof.frames.contains_key("rpc;encode") && prof.frames.contains_key("rpc;decode");

    // Determinism: frame paths + call counts byte-identical between
    // repeated 1-thread runs and across 1 vs 4 threads (wall excluded
    // by construction of the canonical form).
    let canon_a = on_a
        .profile
        .as_ref()
        .map(obs::ProfileReport::canonical_frames);
    let canon_b = on_b
        .profile
        .as_ref()
        .map(obs::ProfileReport::canonical_frames);
    let canon_t4 = on_t4
        .profile
        .as_ref()
        .map(obs::ProfileReport::canonical_frames);
    let frames_repeatable = canon_a.is_some() && canon_a == canon_b;
    let frames_thread_invariant = canon_a.is_some() && canon_a == canon_t4;

    // Purity: a profiled run must not perturb the simulation an
    // unprofiled observer sees — same summary counters, same causal
    // trace bytes — and unprofiled runs must carry no profile section.
    let pure = on_a.summary == off_best.summary && on_a.trace_jsonl == off_best.trace_jsonl;
    let off_clean = legs
        .iter()
        .filter(|l| !l.profiled)
        .all(|l| l.profile.is_none());

    // Trace-dir artifacts: the collapsed flamegraph and the RunReport
    // it was derived from (the latter feeds `tracectl flame`).
    let dir = trace_dir();
    let folded = obs::profile_to_folded(&prof);
    let folded_valid = obs::validate_folded(&folded);
    let report_valid = obs::validate_report(&on_a.obs.json);
    let mut export_err: Option<String> = None;
    if let Err(e) = std::fs::create_dir_all(&dir) {
        export_err = Some(format!("create {}: {e}", dir.display()));
    } else {
        if let Err(e) = std::fs::write(dir.join("e20-profile.folded"), &folded) {
            export_err = Some(format!("write e20-profile.folded: {e}"));
        }
        if let Err(e) = std::fs::write(dir.join("e20-profile.report.json"), &on_a.obs.json) {
            export_err = Some(format!("write e20-profile.report.json: {e}"));
        }
    }

    let mut table = Table::new(
        format!(
            "profiler legs ({mode}) — {} clients x {} calls, {} domains on {} nodes",
            cfg.clients, cfg.calls_per_client, cfg.domains, cfg.nodes
        ),
        &[
            "leg",
            "profiled",
            "threads",
            "wall ms",
            "events/s",
            "vs off-best",
        ],
    );
    for l in &legs {
        table.add_row(vec![
            l.label.to_string(),
            if l.profiled {
                "yes".into()
            } else {
                "no".into()
            },
            l.threads.to_string(),
            format!("{:.2}", l.wall.as_secs_f64() * 1e3),
            format!("{:.0}", l.events_per_sec()),
            format!(
                "{:+.2}%",
                (l.wall.as_secs_f64() / off_best.wall.as_secs_f64() - 1.0) * 100.0
            ),
        ]);
    }

    let mut frames_table = Table::new(
        format!(
            "hottest frames (on-t1-a) — {} resident, {} evicted, self {:.1}us/{} folds",
            prof.frames_resident,
            prof.frames_evicted,
            prof.self_ns as f64 / 1e3,
            prof.self_calls
        ),
        &["frame", "calls", "wall ms", "share"],
    );
    let total_wall: u64 = prof.frames.values().map(|s| s.wall_ns).sum();
    let mut hot: Vec<(&String, &obs::FrameStat)> = prof.frames.iter().collect();
    hot.sort_by(|a, b| b.1.wall_ns.cmp(&a.1.wall_ns).then(a.0.cmp(b.0)));
    for (path, st) in hot.iter().take(10) {
        frames_table.add_row(vec![
            (*path).clone(),
            st.calls.to_string(),
            format!("{:.3}", st.wall_ns as f64 / 1e6),
            format!(
                "{:.1}%",
                st.wall_ns as f64 * 100.0 / total_wall.max(1) as f64
            ),
        ]);
    }

    let best = legs
        .iter()
        .max_by(|a, b| a.events_per_sec().total_cmp(&b.events_per_sec()))
        .expect("legs are non-empty");
    let path = artifact_path();
    let json = artifact_json(
        cfg,
        mode,
        &legs,
        best,
        host_cores,
        overhead_pct,
        &top_frame,
        top_stat.wall_ns,
        &prof,
    );
    let wrote = std::fs::write(&path, &json);
    let artifact_detail = match &wrote {
        Ok(()) => format!("wrote {}", path.display()),
        Err(e) => format!("write to {} failed: {e}", path.display()),
    };

    let total = cfg.total_calls();
    let checks = vec![
        check(
            "every client completed every call in every leg",
            legs.iter()
                .all(|l| l.completed == cfg.clients as u64 && l.ok == total),
            format!(
                "ok per leg: {:?} (want {total} each)",
                legs.iter().map(|l| l.ok).collect::<Vec<_>>()
            ),
        ),
        check(
            format!(
                "profile-on wall overhead < {:.0}% vs profile-off (median of 5 interleaved pairs)",
                max_overhead * 100.0
            ),
            overhead < max_overhead,
            format!(
                "pairs {} -> median {overhead_pct:+.2}% (best walls: off {:.2}ms on {:.2}ms; \
                 {mode} gate; wall is host time, ratio judged, magnitudes reported)",
                pair_ratios
                    .iter()
                    .map(|r| format!("{:+.2}%", r * 100.0))
                    .collect::<Vec<_>>()
                    .join(" "),
                off_best.wall.as_secs_f64() * 1e3,
                on_best.wall.as_secs_f64() * 1e3,
            ),
        ),
        check(
            "phase wall times tile the round wall exactly (pick+exec+merge == round)",
            conserved,
            format!(
                "{phase_wall}ns across phases vs {}ns round over {} rounds",
                round.wall_ns, round.calls
            ),
        ),
        check(
            "each phase folded exactly once per round",
            phase_calls_ok,
            format!(
                "round calls {} vs {:?}",
                round.calls,
                PHASE_FRAMES
                    .iter()
                    .map(|f| prof.frames.get(*f).map_or(0, |s| s.calls))
                    .collect::<Vec<_>>()
            ),
        ),
        check(
            "top frame identified with nonzero attribution",
            !top_frame.is_empty() && top_stat.wall_ns > 0 && rpc_seen,
            format!(
                "top {top_frame:?} at {:.3}ms ({} calls); rpc encode/decode frames present: {rpc_seen}",
                top_stat.wall_ns as f64 / 1e6,
                top_stat.calls
            ),
        ),
        check(
            "frame paths+calls byte-identical across repeated runs",
            frames_repeatable,
            format!(
                "canonical frames {} bytes, on-t1-a == on-t1-b: {frames_repeatable}",
                canon_a.as_deref().map_or(0, str::len)
            ),
        ),
        check(
            "frame paths+calls byte-identical at 1 vs 4 worker threads",
            frames_thread_invariant,
            format!("on-t1-a == on-t4: {frames_thread_invariant} (wall_ns excluded by canonical form)"),
        ),
        check(
            "profiling leaves the simulation untouched (trace + counters identical)",
            pure && off_clean,
            format!(
                "on-t1-a vs off-best: summary+trace identical: {pure}; off legs carry no profile \
                 section: {off_clean}"
            ),
        ),
        check(
            "no frames evicted at this table size",
            prof.frames_evicted == 0 && prof.frames_resident > 0,
            format!(
                "{} resident, {} evicted (capacity {MAX_FRAMES} per lane)",
                prof.frames_resident, prof.frames_evicted
            ),
        ),
        check(
            "folded flamegraph export is valid and canonical",
            folded_valid.is_ok() && report_valid.is_ok() && export_err.is_none(),
            match (&folded_valid, &report_valid, &export_err) {
                (Ok(s), Ok(_), None) => format!(
                    "{} stacks ({} roots, max depth {}) -> {}",
                    s.lines,
                    s.roots,
                    s.max_depth,
                    dir.join("e20-profile.folded").display()
                ),
                (Err(e), _, _) => format!("folded invalid: {e}"),
                (_, Err(e), _) => format!("report invalid: {e}"),
                (_, _, Some(e)) => format!("export failed: {e}"),
            },
        ),
        check(
            "BENCH_e20.json artifact written",
            wrote.is_ok(),
            artifact_detail,
        ),
    ];

    let mut traces = Vec::new();
    let mut reports = Vec::new();
    for l in legs {
        if l.label == "off-t1-a" || l.label == "on-t1-a" || l.label == "on-t4" {
            traces.push(l.trace);
            reports.push(l.obs);
        }
    }

    ExperimentOutput {
        id: "E20",
        title: "Continuous profiler (folded stacks, phase attribution, flamegraph export)",
        tables: vec![table, frames_table],
        checks,
        reports,
        traces,
    }
}
