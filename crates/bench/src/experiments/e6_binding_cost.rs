//! E6 — Binding is paid once.
//!
//! The binding protocol (name lookup + proxy installation, possibly a
//! subscription round-trip) happens before the first call. We measure
//! bind-plus-N-calls for growing N.
//!
//! Expected shape: amortized per-call cost converges to the steady
//! per-call cost as N grows; at N=1 the binding overhead dominates.

use naming::spawn_name_server;
use proxy_core::{CachingParams, ClientRuntime, Coherence, ProxySpec, ServiceBuilder};
use services::kv::KvStore;
use simnet::{NetworkConfig, NodeId, Simulation};
use wire::Value;

use crate::{check, obs_report, slot, take, ExperimentOutput, ObsReport, Table};

#[derive(Debug, Clone, Copy)]
struct Point {
    amortized_us: f64,
    bind_us: f64,
    steady_us: f64,
}

fn measure(n: u64, seed: u64) -> (Point, ObsReport) {
    let mut sim = Simulation::new(NetworkConfig::lan(), seed);
    let ns = spawn_name_server(&sim, NodeId(0));
    // A subscribing spec so binding includes a real protocol round-trip.
    ServiceBuilder::new("kv")
        .spec(ProxySpec::Caching(CachingParams {
            coherence: Coherence::Invalidate,
            capacity: 64,
        }))
        .object(|| Box::new(KvStore::new()))
        .spawn(&sim, NodeId(1), ns);
    let (w, r) = slot::<Point>();
    sim.spawn("client", NodeId(2), move |ctx| {
        // Let the service register first so bind latency measures the
        // protocol, not the retry loop.
        ctx.sleep(std::time::Duration::from_millis(5)).unwrap();
        let t_bind = ctx.now();
        let mut rt = ClientRuntime::new(ns);
        let kv = rt.bind(ctx, "kv").unwrap();
        let bind_us = (ctx.now() - t_bind).as_secs_f64() * 1e6;
        let t0 = ctx.now();
        for i in 0..n {
            // Distinct keys: every call goes remote (no cache hits), so
            // the steady cost is the honest per-call price.
            rt.invoke(
                ctx,
                kv,
                "put",
                Value::record([
                    ("key", Value::str(format!("k{i}"))),
                    ("value", Value::str("v")),
                ]),
            )
            .unwrap();
        }
        let elapsed = ctx.now() - t0;
        let total = (ctx.now() - t_bind).as_secs_f64() * 1e6;
        *w.lock().unwrap() = Some(Point {
            amortized_us: total / n as f64,
            bind_us,
            steady_us: elapsed.as_secs_f64() * 1e6 / n as f64,
        });
    });
    sim.run();
    (take(r), obs_report(format!("bind+{n}-calls"), &sim))
}

/// Runs E6 and returns its tables and shape checks.
pub fn run() -> ExperimentOutput {
    let sweep = [1u64, 2, 5, 10, 20, 50, 100];
    let mut table = Table::new(
        "amortized cost of (bind + N calls) — caching spec (bind includes subscribe)".to_string(),
        &["N", "bind us", "steady us/call", "amortized us/call"],
    );
    let mut pts = Vec::new();
    let mut reports = Vec::new();
    for (i, &n) in sweep.iter().enumerate() {
        let (p, obs) = measure(n, 70 + i as u64);
        if n == 100 {
            reports.push(obs);
        }
        table.add_row(vec![
            n.to_string(),
            format!("{:.0}", p.bind_us),
            format!("{:.0}", p.steady_us),
            format!("{:.0}", p.amortized_us),
        ]);
        pts.push(p);
    }
    let first = pts[0];
    let last = *pts.last().unwrap();
    let checks = vec![
        check(
            "binding overhead dominates a single call",
            first.amortized_us > first.steady_us * 2.0,
            format!(
                "N=1: amortized {:.0}us vs steady {:.0}us",
                first.amortized_us, first.steady_us
            ),
        ),
        check(
            "amortized cost converges to the steady cost by N=100",
            last.amortized_us < last.steady_us * 1.2,
            format!(
                "N=100: amortized {:.0}us vs steady {:.0}us",
                last.amortized_us, last.steady_us
            ),
        ),
        check(
            "amortized cost decreases monotonically in N",
            pts.windows(2)
                .all(|w| w[1].amortized_us <= w[0].amortized_us),
            "strictly non-increasing across the sweep".to_string(),
        ),
        check(
            "bind cost itself is a constant (independent of N)",
            {
                let min = pts.iter().map(|p| p.bind_us).fold(f64::MAX, f64::min);
                let max = pts.iter().map(|p| p.bind_us).fold(0.0, f64::max);
                (max - min) / max < 0.05
            },
            "bind latency varies <5% across runs".to_string(),
        ),
    ];

    ExperimentOutput {
        id: "E6",
        title: "Binding cost amortization",
        tables: vec![table],
        checks,
        reports,
        traces: vec![],
    }
}
