//! E17 — The million-span observability plane: full instrumentation
//! left on at 1M-client scale, measured against itself.
//!
//! E16 proved a million poll-driven clients fit in the process table;
//! this experiment proves the *instrumentation* survives the same
//! scale. The workload is E16's sharded-KV fleet pushed to 1M clients,
//! run twice with the same seed:
//!
//! * **obs-on** — the sharded registry with span retirement armed
//!   (closed spans fold into per-`(service, op)` aggregates and leave
//!   the table, every nth kept as a sampled exemplar) and
//!   self-measurement recording the nanoseconds spent inside obs calls.
//! * **obs-off** — the registry master switch off: `open_span` returns
//!   `SpanId::NONE`, every recording call is a no-op. The floor.
//!
//! The delta between the legs *is* the cost of observability, reported
//! as first-class numbers in `BENCH_e17.json` (`obs_overhead` section)
//! and gated by perfgate on the obs-on leg — the configuration we claim
//! production would run.
//!
//! Name lookups go through a replicated name-server cluster
//! ([`naming::spawn_name_cluster`]): the striped shared directory keeps
//! 1M concurrent `bind_async` NotFound-backoff polls from serializing
//! on one server process.
//!
//! Fast smoke mode for CI: set `PROXIDE_E17_SMOKE=1`.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use proxy_core::{AsyncHandle, BindFuture, CallFuture, ProxySpec, ServiceBuilder, SessionCore};
use services::kv::KvStore;
use simnet::{Endpoint, NetworkConfig, NodeId, Poll, ProcCx, Process, Simulation};
use wire::Value;

use crate::{check, obs_report, ExperimentOutput, Table};

/// Keep every nth retired span resident as a sampled exemplar.
const KEEP_EVERY: u64 = 10_000;

/// One workload configuration.
#[derive(Debug, Clone, Copy)]
struct Config {
    clients: usize,
    calls_per_client: u32,
    shards: usize,
    nodes: u32,
    ns_replicas: u32,
}

impl Config {
    fn full() -> Config {
        Config {
            clients: 1_000_000,
            calls_per_client: 2,
            shards: 16,
            nodes: 64,
            ns_replicas: 4,
        }
    }

    fn smoke() -> Config {
        Config {
            clients: 20_000,
            calls_per_client: 2,
            shards: 8,
            nodes: 16,
            ns_replicas: 2,
        }
    }

    fn pick() -> (Config, &'static str) {
        match std::env::var_os("PROXIDE_E17_SMOKE") {
            Some(v) if !v.is_empty() && v != "0" => (Config::smoke(), "smoke"),
            _ => (Config::full(), "full"),
        }
    }

    fn total_calls(&self) -> u64 {
        self.clients as u64 * u64::from(self.calls_per_client)
    }
}

/// Where a poll-driven client is in its lifecycle.
enum ClientState {
    Start,
    Binding(BindFuture),
    Calling(AsyncHandle, CallFuture),
    Done,
}

/// One client: binds to its KV shard through the name cluster, then
/// alternates put/get calls through the non-blocking session surface.
struct ClientProc {
    core: SessionCore,
    state: ClientState,
    shard: String,
    id: usize,
    calls_target: u32,
    calls_done: u32,
    ok: Arc<AtomicU64>,
    completed: Arc<AtomicU64>,
}

impl ClientProc {
    fn next_call(&mut self, cx: &mut ProcCx, h: AsyncHandle) {
        let key = format!("c{}/k", self.id);
        let f = if self.calls_done.is_multiple_of(2) {
            self.core.invoke_async(
                cx,
                h,
                "put",
                Value::record([
                    ("key", Value::str(key)),
                    ("value", Value::str(format!("v{}", self.calls_done))),
                ]),
            )
        } else {
            self.core
                .invoke_async(cx, h, "get", Value::record([("key", Value::str(key))]))
        };
        self.state = ClientState::Calling(h, f);
    }
}

impl Process for ClientProc {
    fn poll(&mut self, cx: &mut ProcCx) -> Poll<()> {
        loop {
            match self.state {
                ClientState::Start => {
                    let f = self.core.bind_async(cx, &self.shard);
                    self.state = ClientState::Binding(f);
                }
                ClientState::Binding(f) => match self.core.poll_bind(cx, f) {
                    Poll::Pending => return Poll::Pending,
                    Poll::Ready(Ok(h)) => self.next_call(cx, h),
                    Poll::Ready(Err(_)) => {
                        self.state = ClientState::Done;
                    }
                },
                ClientState::Calling(h, f) => match self.core.poll_call(cx, f) {
                    Poll::Pending => return Poll::Pending,
                    Poll::Ready(r) => {
                        if r.is_ok() {
                            self.ok.fetch_add(1, Ordering::Relaxed);
                        }
                        self.calls_done += 1;
                        if self.calls_done < self.calls_target {
                            self.next_call(cx, h);
                        } else {
                            self.state = ClientState::Done;
                        }
                    }
                },
                ClientState::Done => {
                    self.completed.fetch_add(1, Ordering::Relaxed);
                    return Poll::Ready(());
                }
            }
        }
    }
}

/// One measured leg (obs-on or obs-off).
#[derive(Debug, Clone, Copy)]
struct Rep {
    wall: Duration,
    sim_us: f64,
    ok: u64,
    completed: u64,
    events: u64,
    msgs: u64,
    bytes: u64,
    procs_peak: u64,
    /// The obs plane's own gauges at run end.
    plane: obs::ObsPlaneReport,
    /// Spans allocated over the run (`started + oneways`), for the
    /// retirement conservation check. 0 on the obs-off leg.
    spans_allocated: u64,
    /// Invoke/dispatch spans still open at run end. 0 on the obs-off
    /// leg.
    spans_open: u64,
}

impl Rep {
    fn events_per_sec(&self) -> f64 {
        self.events as f64 / self.wall.as_secs_f64()
    }
    fn msgs_per_sec(&self) -> f64 {
        self.msgs as f64 / self.wall.as_secs_f64()
    }
    fn bytes_per_sec(&self) -> f64 {
        self.bytes as f64 / self.wall.as_secs_f64()
    }
}

fn run_once(cfg: Config, seed: u64, obs_on: bool) -> (Rep, Option<crate::ObsReport>) {
    let mut sim = Simulation::new(NetworkConfig::lan(), seed);
    if obs_on {
        sim.obs().enable_retirement(KEEP_EVERY);
        sim.obs().enable_self_measure();
    } else {
        sim.obs().set_enabled(false);
    }
    let ns_nodes: Vec<NodeId> = (0..cfg.ns_replicas).map(NodeId).collect();
    let cluster: Vec<Endpoint> = naming::spawn_name_cluster(&sim, &ns_nodes);
    let first_service_node = cfg.ns_replicas;
    for s in 0..cfg.shards {
        let reg_ep = cluster[s % cluster.len()];
        ServiceBuilder::new(format!("kv{s}"))
            .spec(ProxySpec::Stub)
            .object(|| Box::new(KvStore::new()))
            .spawn(&sim, NodeId(first_service_node + s as u32), reg_ep);
    }
    let ok = Arc::new(AtomicU64::new(0));
    let completed = Arc::new(AtomicU64::new(0));
    let first_client_node = first_service_node + cfg.shards as u32;
    for c in 0..cfg.clients {
        let node = NodeId(first_client_node + (c as u32 % cfg.nodes));
        sim.spawn_poll(
            format!("c{c}"),
            node,
            ClientProc {
                core: SessionCore::new(cluster[0]).with_ns_replicas(cluster.clone()),
                state: ClientState::Start,
                shard: format!("kv{}", c % cfg.shards),
                id: c,
                calls_target: cfg.calls_per_client,
                calls_done: 0,
                ok: Arc::clone(&ok),
                completed: Arc::clone(&completed),
            },
        );
    }
    let t0 = Instant::now();
    let report = sim.run();
    let wall = t0.elapsed();
    let run_report = sim.obs_report();
    let rep = Rep {
        wall,
        sim_us: report.end_time.as_nanos() as f64 / 1000.0,
        ok: ok.load(Ordering::Relaxed),
        completed: completed.load(Ordering::Relaxed),
        events: report.metrics.events_dispatched,
        msgs: report.metrics.msgs_sent,
        bytes: report.metrics.bytes_sent,
        procs_peak: report.metrics.processes_peak,
        plane: run_report.obs,
        spans_allocated: run_report.spans.started + run_report.spans.oneways,
        spans_open: run_report.spans.open,
    };
    let obs = obs_on.then(|| obs_report("e17 (obs-on)", &sim));
    (rep, obs)
}

/// Where `BENCH_e17.json` lands: `$PROXIDE_BENCH_DIR` or the repo root.
fn artifact_path() -> std::path::PathBuf {
    if let Some(dir) = std::env::var_os("PROXIDE_BENCH_DIR") {
        return std::path::PathBuf::from(dir).join("BENCH_e17.json");
    }
    let manifest = std::path::Path::new(env!("CARGO_MANIFEST_DIR"));
    manifest
        .ancestors()
        .nth(2)
        .unwrap_or(manifest)
        .join("BENCH_e17.json")
}

/// FNV-1a over the workload-shaping fields (perfgate's config
/// fingerprint).
fn config_hash(cfg: Config) -> String {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for v in [
        cfg.clients as u64,
        u64::from(cfg.calls_per_client),
        cfg.shards as u64,
        u64::from(cfg.nodes),
        u64::from(cfg.ns_replicas),
        KEEP_EVERY,
    ] {
        for b in v.to_le_bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    format!("{h:016x}")
}

fn git_rev() -> Option<String> {
    let out = std::process::Command::new("git")
        .args(["rev-parse", "--short", "HEAD"])
        .output()
        .ok()?;
    if !out.status.success() {
        return None;
    }
    let rev = String::from_utf8(out.stdout).ok()?;
    let rev = rev.trim();
    if rev.is_empty() {
        None
    } else {
        Some(rev.to_owned())
    }
}

fn artifact_meta(cfg: Config) -> String {
    let mut meta = format!(
        "{{\"seed\": 1700, \"config_hash\": \"{}\"",
        config_hash(cfg)
    );
    if let Some(rev) = git_rev() {
        meta.push_str(&format!(", \"git_rev\": \"{rev}\""));
    }
    if let Ok(date) = std::env::var("PROXIDE_RUN_DATE") {
        if !date.is_empty() {
            meta.push_str(&format!(", \"date\": \"{date}\""));
        }
    }
    meta.push('}');
    meta
}

/// The artifact: perfgated `best` numbers come from the obs-ON leg (the
/// configuration we claim production runs), and the `obs_overhead`
/// section carries the on-vs-off delta.
fn artifact_json(cfg: Config, mode: &str, on: &Rep, off: &Rep, host_cores: usize) -> String {
    let overhead_pct = (on.wall.as_secs_f64() / off.wall.as_secs_f64() - 1.0) * 100.0;
    format!(
        concat!(
            "{{\n",
            "  \"experiment\": \"E17\",\n",
            "  \"title\": \"million-span observability plane (obs-on vs obs-off, sharded registry + retirement)\",\n",
            "  \"mode\": \"{mode}\",\n",
            "  \"meta\": {meta},\n",
            "  \"host_cores\": {host_cores},\n",
            "  \"config\": {{\"clients\": {clients}, \"calls_per_client\": {cpc}, ",
            "\"shards\": {shards}, \"nodes\": {nodes}, \"ns_replicas\": {nsr}, ",
            "\"retire_keep_every\": {keep}}},\n",
            "  \"best\": {{\n",
            "    \"wall_ms\": {wall:.3},\n",
            "    \"sim_ms\": {sim:.3},\n",
            "    \"ok_calls\": {ok},\n",
            "    \"clients_completed\": {completed},\n",
            "    \"events_dispatched\": {events},\n",
            "    \"msgs_sent\": {msgs},\n",
            "    \"bytes_sent\": {bytes},\n",
            "    \"processes_peak\": {peak},\n",
            "    \"spans_allocated\": {allocated},\n",
            "    \"spans_retired\": {retired},\n",
            "    \"spans_resident_peak\": {resident_peak},\n",
            "    \"span_table_bytes_peak\": {bytes_peak},\n",
            "    \"events_per_sec\": {eps:.0},\n",
            "    \"msgs_per_sec\": {mps:.0},\n",
            "    \"bytes_per_sec\": {bps:.0}\n",
            "  }},\n",
            "  \"obs_overhead\": {{\n",
            "    \"on_wall_ms\": {on_wall:.3},\n",
            "    \"off_wall_ms\": {off_wall:.3},\n",
            "    \"overhead_pct\": {overhead:.2},\n",
            "    \"self_ns\": {self_ns},\n",
            "    \"self_calls\": {self_calls},\n",
            "    \"spans_resident_final\": {resident_final},\n",
            "    \"span_table_bytes_final\": {bytes_final},\n",
            "    \"table_bytes_peak_per_client\": {bpc:.1}\n",
            "  }}\n",
            "}}\n",
        ),
        mode = mode,
        meta = artifact_meta(cfg),
        host_cores = host_cores,
        clients = cfg.clients,
        cpc = cfg.calls_per_client,
        shards = cfg.shards,
        nodes = cfg.nodes,
        nsr = cfg.ns_replicas,
        keep = KEEP_EVERY,
        wall = on.wall.as_secs_f64() * 1e3,
        sim = on.sim_us / 1e3,
        ok = on.ok,
        completed = on.completed,
        events = on.events,
        msgs = on.msgs,
        bytes = on.bytes,
        peak = on.procs_peak,
        allocated = on.spans_allocated,
        retired = on.plane.spans_retired,
        resident_peak = on.plane.spans_resident_peak,
        bytes_peak = on.plane.span_table_bytes_peak,
        eps = on.events_per_sec(),
        mps = on.msgs_per_sec(),
        bps = on.bytes_per_sec(),
        on_wall = on.wall.as_secs_f64() * 1e3,
        off_wall = off.wall.as_secs_f64() * 1e3,
        overhead = overhead_pct,
        self_ns = on.plane.self_ns,
        self_calls = on.plane.self_calls,
        resident_final = on.plane.spans_resident,
        bytes_final = on.plane.span_table_bytes,
        bpc = on.plane.span_table_bytes_peak as f64 / cfg.clients as f64,
    )
}

/// Runs E17 and returns its tables and shape checks.
pub fn run() -> ExperimentOutput {
    let (cfg, mode) = Config::pick();
    // Same seed both legs: the simulation is deterministic, so the two
    // runs do identical work — the wall-clock delta is pure obs cost.
    let (off, _) = run_once(cfg, 1700, false);
    let (on, obs) = run_once(cfg, 1700, true);

    let mut table = Table::new(
        format!(
            "obs plane at scale ({mode}) — {} clients x {} calls, {} KV shards, {} ns replicas",
            cfg.clients, cfg.calls_per_client, cfg.shards, cfg.ns_replicas
        ),
        &[
            "leg",
            "wall ms",
            "ok",
            "events/s",
            "spans alloc",
            "retired",
            "resident peak",
            "table peak MB",
            "obs self ms",
        ],
    );
    for (label, rep) in [("obs-on", &on), ("obs-off", &off)] {
        table.add_row(vec![
            label.to_string(),
            format!("{:.2}", rep.wall.as_secs_f64() * 1e3),
            rep.ok.to_string(),
            format!("{:.0}", rep.events_per_sec()),
            rep.spans_allocated.to_string(),
            rep.plane.spans_retired.to_string(),
            rep.plane.spans_resident_peak.to_string(),
            format!("{:.2}", rep.plane.span_table_bytes_peak as f64 / 1e6),
            format!("{:.2}", rep.plane.self_ns as f64 / 1e6),
        ]);
    }

    let path = artifact_path();
    let host_cores = std::thread::available_parallelism().map_or(1, std::num::NonZero::get);
    let json = artifact_json(cfg, mode, &on, &off, host_cores);
    let wrote = std::fs::write(&path, &json);
    let artifact_detail = match &wrote {
        Ok(()) => format!("wrote {}", path.display()),
        Err(e) => format!("write to {} failed: {e}", path.display()),
    };

    let total = cfg.total_calls();
    let overhead_pct = (on.wall.as_secs_f64() / off.wall.as_secs_f64() - 1.0) * 100.0;
    let retired_frac = on.plane.spans_retired as f64 / on.spans_allocated.max(1) as f64;
    let checks = vec![
        check(
            "every client completed on both legs",
            on.completed == cfg.clients as u64 && off.completed == cfg.clients as u64,
            format!(
                "obs-on {} / obs-off {} of {} clients",
                on.completed, off.completed, cfg.clients
            ),
        ),
        check(
            "every call succeeded on both legs",
            on.ok == total && off.ok == total,
            format!("obs-on {} / obs-off {} of {total} calls ok", on.ok, off.ok),
        ),
        check(
            "obs-off leg allocated no spans at all",
            off.spans_allocated == 0 && off.plane.span_table_bytes_peak == 0,
            format!(
                "{} spans, {} table bytes on the off leg",
                off.spans_allocated, off.plane.span_table_bytes_peak
            ),
        ),
        // Bytes and hence exact simulated timing are allowed to differ:
        // span ids travel in the wire header, the off leg's id 0
        // varint-encodes shorter, and transmission delay follows size.
        check(
            "the two legs did identical simulated work",
            on.msgs == off.msgs && on.bytes >= off.bytes,
            format!(
                "msgs {} vs {} (bytes {} vs {}: span ids on the wire)",
                on.msgs, off.msgs, on.bytes, off.bytes
            ),
        ),
        check(
            "retirement conserves spans: retired + resident == allocated",
            on.plane.spans_retired + on.plane.spans_resident == on.spans_allocated,
            format!(
                "{} retired + {} resident == {} allocated",
                on.plane.spans_retired, on.plane.spans_resident, on.spans_allocated
            ),
        ),
        check(
            "span table ends O(open + sampled), not O(total calls)",
            retired_frac > 0.99
                && on.plane.spans_resident == on.spans_open + on.plane.spans_sampled,
            format!(
                "{:.2}% retired; {} resident at end = {} open + {} sampled (of {} allocated)",
                retired_frac * 100.0,
                on.plane.spans_resident,
                on.spans_open,
                on.plane.spans_sampled,
                on.spans_allocated
            ),
        ),
        check(
            "self-measurement recorded the plane's own cost",
            on.plane.self_calls > 0 && on.plane.self_ns > 0,
            format!(
                "{} obs calls, {:.2} ms inside the plane ({:.0} ns/call)",
                on.plane.self_calls,
                on.plane.self_ns as f64 / 1e6,
                on.plane.self_ns as f64 / on.plane.self_calls.max(1) as f64
            ),
        ),
        check(
            "full observability costs less than 2x the dark run",
            overhead_pct.is_finite() && overhead_pct < 100.0,
            format!(
                "obs-on {:.2}s vs obs-off {:.2}s wall ({overhead_pct:+.1}%)",
                on.wall.as_secs_f64(),
                off.wall.as_secs_f64()
            ),
        ),
        check(
            "BENCH_e17.json artifact written",
            wrote.is_ok(),
            artifact_detail,
        ),
    ];

    ExperimentOutput {
        id: "E17",
        title: "Million-span observability plane (sharded registry, retirement, self-measured overhead)",
        tables: vec![table],
        checks,
        reports: obs.into_iter().collect(),
        traces: Vec::new(),
    }
}
