//! E11 — Failure transparency: crash recovery behind the proxy.
//!
//! An extension experiment (the SOS system the paper came from treated
//! objects as persistent). A checkpointing service is killed mid-
//! workload and restarted from its node's stable storage; the client —
//! same proxy, no special code — rides through the outage via the
//! binding protocol's re-resolution path.
//!
//! We sweep the checkpoint interval and report the durability cost
//! (writes lost at the crash) against the runtime cost (checkpoints
//! written). Expected shape: lost writes are bounded by the interval;
//! checkpoint count scales inversely with it; the client always
//! reconverges with exactly one rebind.

use std::collections::BTreeMap;
use std::time::Duration;

use naming::spawn_name_server;
use proxy_core::{
    CheckpointPolicy, ClientRuntime, InterfaceDesc, OpDesc, ProxySpec, ServiceBuilder,
    ServiceObject, ServiceServer, StableStore,
};
use rpc::{ErrorCode, RemoteError, RpcError};
use simnet::{Ctx, NetworkConfig, NodeId, Simulation};
use wire::Value;

use crate::{check, obs_report, slot, take, ExperimentOutput, ObsReport, Table};

const WRITES_BEFORE_CRASH: u64 = 23;

#[derive(Debug, Default)]
struct Ledger(BTreeMap<String, String>);

impl Ledger {
    fn from_snapshot(v: &Value) -> Result<Box<dyn ServiceObject>, RemoteError> {
        let mut l = Ledger::default();
        if let Some(fields) = v.as_record() {
            for (k, val) in fields {
                if let Some(s) = val.as_str() {
                    l.0.insert(k.to_string_owned(), s.to_owned());
                }
            }
        }
        Ok(Box::new(l))
    }
}

impl ServiceObject for Ledger {
    fn interface(&self) -> InterfaceDesc {
        InterfaceDesc::new(
            "ledger",
            [OpDesc::read("get", "key"), OpDesc::write("put", "key")],
        )
    }
    fn dispatch(&mut self, _ctx: &mut Ctx, op: &str, args: &Value) -> Result<Value, RemoteError> {
        let key = args
            .get_str("key")
            .map_err(|e| RemoteError::new(ErrorCode::BadArgs, e.to_string()))?;
        match op {
            "get" => Ok(self
                .0
                .get(key)
                .map(|v| Value::str(v.clone()))
                .unwrap_or(Value::Null)),
            "put" => {
                let v = args
                    .get_str("value")
                    .map_err(|e| RemoteError::new(ErrorCode::BadArgs, e.to_string()))?;
                self.0.insert(key.to_owned(), v.to_owned());
                Ok(Value::Null)
            }
            other => Err(RemoteError::new(ErrorCode::NoSuchOp, other.to_owned())),
        }
    }
    fn snapshot(&self) -> Result<Value, RemoteError> {
        Ok(Value::record(
            self.0
                .iter()
                .map(|(k, v)| (k.clone(), Value::str(v.clone()))),
        ))
    }
}

fn factories() -> proxy_core::FactoryRegistry {
    proxy_core::FactoryRegistry::new().register("ledger", Ledger::from_snapshot)
}

#[derive(Debug, Clone, Copy)]
struct Point {
    lost_writes: u64,
    rebinds: u64,
    outage_us: f64,
}

fn measure(interval: u64, seed: u64) -> (Point, ObsReport) {
    let mut sim = Simulation::new(NetworkConfig::lan(), seed);
    let ns = spawn_name_server(&sim, NodeId(0));
    let store = StableStore::new();
    let incarnation = ServiceBuilder::new("ledger")
        .factories(factories())
        .recovered(CheckpointPolicy::every(store.clone(), interval))
        .object(|| Box::<Ledger>::default())
        .spawn(&sim, NodeId(1), ns);
    let (w, r) = slot::<Point>();
    sim.spawn("client", NodeId(2), move |ctx| {
        let mut rt = ClientRuntime::new(ns);
        let h = rt.bind(ctx, "ledger").unwrap();
        for i in 0..WRITES_BEFORE_CRASH {
            rt.invoke(
                ctx,
                h,
                "put",
                Value::record([
                    ("key", Value::str(format!("k{i}"))),
                    ("value", Value::str("v")),
                ]),
            )
            .unwrap();
        }

        // Crash & restart from the checkpoint.
        assert!(ctx.kill(incarnation));
        let t_down = ctx.now();
        let f = factories();
        let policy = CheckpointPolicy::every(store.clone(), interval);
        ctx.spawn("ledger-reborn", NodeId(1), move |sctx| {
            let default: Box<dyn ServiceObject> = Box::new(Ledger::default());
            let object = match policy.store.load(sctx.node(), "ledger") {
                Some(snapshot) => f.create("ledger", &snapshot).unwrap_or(default),
                None => default,
            };
            ServiceServer::new("ledger", object, ProxySpec::Stub)
                .with_factories(f)
                .with_checkpointing(policy)
                .run(sctx, ns);
        });
        ctx.sleep(Duration::from_millis(5)).unwrap();

        // First call after the crash rides through the rebind path.
        let before = rt.stats(h).rebinds;
        let mut lost = 0u64;
        for i in 0..WRITES_BEFORE_CRASH {
            let v = match rt.invoke(
                ctx,
                h,
                "get",
                Value::record([("key", Value::str(format!("k{i}")))]),
            ) {
                Ok(v) => v,
                Err(RpcError::Timeout { .. }) => {
                    // One extra settle round if the re-registration raced.
                    ctx.sleep(Duration::from_millis(5)).unwrap();
                    rt.invoke(
                        ctx,
                        h,
                        "get",
                        Value::record([("key", Value::str(format!("k{i}")))]),
                    )
                    .unwrap()
                }
                Err(e) => panic!("unexpected: {e}"),
            };
            if v == Value::Null {
                lost += 1;
            }
        }
        let outage_us = (ctx.now() - t_down).as_secs_f64() * 1e6;
        *w.lock().unwrap() = Some(Point {
            lost_writes: lost,
            rebinds: rt.stats(h).rebinds - before,
            outage_us,
        });
    });
    sim.run();
    (
        take(r),
        obs_report(format!("checkpoint-every-{interval}"), &sim),
    )
}

/// Runs E11 and returns its tables and shape checks.
pub fn run() -> ExperimentOutput {
    let intervals = [1u64, 2, 5, 10, 25];
    let mut table = Table::new(
        format!(
            "crash after {WRITES_BEFORE_CRASH} writes, restart from checkpoint — interval sweep"
        ),
        &[
            "checkpoint every",
            "writes lost",
            "client rebinds",
            "time to reconverge us",
        ],
    );
    let mut pts = Vec::new();
    let mut reports = Vec::new();
    for (i, &n) in intervals.iter().enumerate() {
        let (p, obs) = measure(n, 130 + i as u64);
        if n == 5 {
            reports.push(obs);
        }
        table.add_row(vec![
            format!("{n} writes"),
            p.lost_writes.to_string(),
            p.rebinds.to_string(),
            format!("{:.0}", p.outage_us),
        ]);
        pts.push((n, p));
    }

    let checks = vec![
        check(
            "lost writes are bounded by the checkpoint interval",
            pts.iter().all(|(n, p)| p.lost_writes < *n),
            format!(
                "lost by interval: {:?}",
                pts.iter()
                    .map(|(n, p)| (*n, p.lost_writes))
                    .collect::<Vec<_>>()
            ),
        ),
        check(
            "checkpoint-every-write loses nothing",
            pts[0].1.lost_writes == 0,
            format!("interval 1: {} lost", pts[0].1.lost_writes),
        ),
        check(
            "durability degrades monotonically with the interval",
            pts.windows(2)
                .all(|w| w[1].1.lost_writes >= w[0].1.lost_writes),
            "lost writes non-decreasing in interval".to_string(),
        ),
        check(
            "the client reconverges with at most one rebind",
            pts.iter().all(|(_, p)| p.rebinds <= 1),
            format!(
                "rebinds: {:?}",
                pts.iter().map(|(_, p)| p.rebinds).collect::<Vec<_>>()
            ),
        ),
    ];

    ExperimentOutput {
        id: "E11",
        title: "Failure transparency: crash recovery behind an unchanged proxy (extension)",
        tables: vec![table],
        checks,
        reports,
        traces: vec![],
    }
}
