//! E15 — Flight recorder: windowed telemetry + slow-call exemplars.
//!
//! The same chaos scenario `tracectl` uses — a kv service behind caching
//! proxies, read-heavy clients, a lossy + duplicating network, and a
//! partition window that cuts every client off mid-run — but with the
//! flight recorder on: windowed time-series of throughput, retransmits,
//! cache hit-rate, queue depths and wire bytes, plus a slow-call
//! watchdog that pins any call breaching the SLO (or `3 × rolling p99`)
//! together with its causal queue/wire/server/retransmit decomposition.
//!
//! The window width is swept to show the recording is a pure
//! re-bucketing of one deterministic run: counter totals are identical
//! at every width. Conservation checks tie the recorder to the
//! first-class counters (wire bytes, retransmissions, cache hits), and
//! the exported CSV/report artifacts must pass their validators.
//!
//! Expected shape: zero evictions or late drops, identical totals
//! across widths, at least one exemplar from the partition window whose
//! breakdown tiles its span exactly, and a structurally-zero scheduler
//! lag (the dispatcher advances the clock *to* each event, never past
//! it — the series is an invariant monitor, not a profiler).

use std::time::Duration;

use naming::spawn_name_server;
use proxy_core::{CachingParams, ClientRuntime, ProxySpec, ServiceBuilder, Session};
use services::kv::{KvClient, KvStore};
use simnet::{NetworkConfig, NodeId, Simulation};

use crate::{check, trace_dir, ExperimentOutput, ObsReport, Table, TraceArtifact};

const SEED: u64 = 1500;
const ROUNDS: u64 = 40;
const CLIENTS: u32 = 2;
const LOSS: f64 = 0.25;
const DUP: f64 = 0.20;
/// Absolute SLO: the clean-network round trip is ~0.2 ms, the partition
/// parks calls for up to 8 ms — 2 ms separates the two regimes cleanly.
const SLO_NS: u64 = 2_000_000;
/// Window widths swept (ns): 250 us, 1 ms, 4 ms.
const WIDTHS: [u64; 3] = [250_000, 1_000_000, 4_000_000];

/// One run of the chaos workload with the flight recorder on.
struct FlightRun {
    report: obs::RunReport,
    trace: obs::CausalTrace,
    attached: usize,
}

fn run_flight(width_ns: u64) -> FlightRun {
    let cfg = NetworkConfig::lan().with_loss(LOSS).with_duplicate(DUP);
    let mut sim = Simulation::new(cfg, SEED);
    sim.enable_trace(1 << 18);
    sim.obs().enable_timeseries(width_ns, 4096);
    sim.obs().enable_watchdog(obs::WatchdogConfig {
        multiplier: 3.0,
        slo_ns: Some(SLO_NS),
        min_samples: 16,
        max_exemplars: 16,
    });
    sim.obs().set_run_meta(obs::RunMeta {
        mode: Some("e15".into()),
        ..Default::default()
    });

    let ns = spawn_name_server(&sim, NodeId(0));
    ServiceBuilder::new("kv")
        .spec(ProxySpec::Caching(CachingParams::default()))
        .object(|| Box::new(KvStore::new()))
        .spawn(&sim, NodeId(1), ns);

    for c in 0..CLIENTS {
        let node = NodeId(2 + c);
        sim.spawn(format!("client-{c}"), node, move |ctx| {
            let mut rt = ClientRuntime::new(ns);
            let mut s = Session::new(&mut rt, ctx);
            let kv = match KvClient::bind(&mut s, "kv") {
                Ok(kv) => kv,
                Err(_) => return,
            };
            for round in 0..ROUNDS {
                if round % 5 == u64::from(c) % 5 {
                    let _ = kv.put(&mut s, &format!("k{}", round % 3), &format!("v{round}"));
                }
                let _ = kv.get(&mut s, &format!("k{}", round % 3));
                if s.ctx().sleep(Duration::from_millis(1)).is_err() {
                    return;
                }
            }
        });
    }

    // The saboteur: partition every client off the server mid-run. The
    // calls parked behind the partition are the watchdog's prey.
    sim.spawn("saboteur", NodeId(99), move |ctx| {
        if ctx.sleep(Duration::from_millis(10)).is_err() {
            return;
        }
        for c in 0..CLIENTS {
            ctx.net().partition(NodeId(2 + c), NodeId(1));
        }
        if ctx.sleep(Duration::from_millis(8)).is_err() {
            return;
        }
        for c in 0..CLIENTS {
            ctx.net().heal(NodeId(2 + c), NodeId(1));
        }
    });

    sim.run();
    let trace = sim.causal_trace();
    let mut report = sim.obs_report();
    let attached = report.attach_exemplars(&trace);
    FlightRun {
        report,
        trace,
        attached,
    }
}

/// Totals that must be invariant under re-bucketing.
#[derive(Debug, Clone, PartialEq, Eq)]
struct Totals {
    calls_ok: u64,
    calls_err: u64,
    retx: u64,
    cache_hit: u64,
    cache_miss: u64,
    link_bytes: u64,
}

fn totals(ts: &obs::TimeSeriesReport) -> Totals {
    let series_total = |prefix: &str| {
        ts.series_names()
            .iter()
            .filter(|n| n.starts_with(prefix))
            .map(|n| ts.counter_total(n))
            .sum()
    };
    Totals {
        calls_ok: ts.counter_total("calls_ok@kv"),
        calls_err: ts.counter_total("calls_err@kv"),
        retx: series_total("retx@"),
        cache_hit: ts.counter_total("cache_hit@kv"),
        cache_miss: ts.counter_total("cache_miss@kv"),
        link_bytes: series_total("link_bytes@"),
    }
}

fn gauge_max(ts: &obs::TimeSeriesReport, series: &str) -> u64 {
    ts.windows
        .iter()
        .filter_map(|w| w.gauges.get(series))
        .map(|g| g.max)
        .max()
        .unwrap_or(0)
}

/// Runs E15 and returns its tables and shape checks.
pub fn run() -> ExperimentOutput {
    let mut table = Table::new(
        format!(
            "flight recorder under chaos — loss {:.0}%, dup {:.0}%, partition 10-18ms, \
             {CLIENTS} clients x {ROUNDS} rounds, window-width sweep",
            LOSS * 100.0,
            DUP * 100.0
        ),
        &[
            "width",
            "windows",
            "ok",
            "err",
            "retx",
            "hit",
            "miss",
            "bytes",
            "depth max",
            "exemplars",
        ],
    );

    let mut runs = Vec::new();
    for &width in &WIDTHS {
        let run = run_flight(width);
        let ts = run.report.timeseries.as_ref().expect("recorder was on");
        let t = totals(ts);
        table.add_row(vec![
            format!("{}us", width / 1_000),
            ts.windows.len().to_string(),
            t.calls_ok.to_string(),
            t.calls_err.to_string(),
            t.retx.to_string(),
            t.cache_hit.to_string(),
            t.cache_miss.to_string(),
            t.link_bytes.to_string(),
            gauge_max(ts, "sched_depth").to_string(),
            run.report.exemplars.len().to_string(),
        ]);
        runs.push(run);
    }

    // The 1 ms run is the exemplar-bearing artifact we export and judge.
    let mid = &runs[1];
    let ts_mid = mid.report.timeseries.as_ref().expect("recorder was on");
    let t_mid = totals(ts_mid);

    let mut exemplar_table = Table::new(
        "slow-call exemplars (1ms windows) — causal decomposition in us".to_string(),
        &[
            "span", "op", "trigger", "latency", "thresh", "queue", "wire", "server", "retx",
        ],
    );
    let us = |ns: u64| format!("{:.0}", ns as f64 / 1_000.0);
    for e in &mid.report.exemplars {
        let b = e.breakdown;
        exemplar_table.add_row(vec![
            format!("{:?}", e.span),
            e.op.clone(),
            e.trigger.to_string(),
            us(e.latency_ns),
            us(e.threshold_ns),
            b.map_or("-".into(), |b| us(b.queue_ns)),
            b.map_or("-".into(), |b| us(b.wire_ns)),
            b.map_or("-".into(), |b| us(b.server_ns)),
            b.map_or("-".into(), |b| us(b.retransmit_ns)),
        ]);
    }

    // Export the windowed recording and the exemplar-bearing report so
    // `tracectl check` can validate them as standalone artifacts.
    let csv = obs::timeseries_to_csv(ts_mid);
    let report_json = mid.report.to_json();
    let dir = trace_dir();
    let mut export_ok = true;
    if let Err(e) = std::fs::create_dir_all(&dir).and_then(|()| {
        std::fs::write(dir.join("e15-flight.timeseries.csv"), &csv)?;
        std::fs::write(dir.join("e15-flight.report.json"), &report_json)
    }) {
        eprintln!("E15: artifact export failed: {e}");
        export_ok = false;
    }

    let all_totals: Vec<Totals> = runs
        .iter()
        .map(|r| totals(r.report.timeseries.as_ref().unwrap()))
        .collect();
    let complete = runs.iter().all(|r| {
        let ts = r.report.timeseries.as_ref().unwrap();
        ts.windows_evicted == 0 && ts.late_dropped == 0
    });
    let hits: u64 = mid
        .report
        .proxies
        .iter()
        .filter(|(k, _)| k.starts_with("kv@"))
        .map(|(_, p)| p.local_hits)
        .sum();
    let remote: u64 = mid
        .report
        .proxies
        .iter()
        .filter(|(k, _)| k.starts_with("kv@"))
        .map(|(_, p)| p.remote_calls)
        .sum();
    let tiled = mid
        .report
        .exemplars
        .iter()
        .filter_map(|e| e.breakdown.as_ref().map(|b| (e, b)))
        .all(|(e, b)| b.queue_ns + b.wire_ns + b.server_ns + b.retransmit_ns == e.latency_ns);
    let csv_check = obs::validate_timeseries_csv(&csv);
    let report_check = obs::validate_report(&report_json);

    let checks = vec![
        check(
            "re-bucketing invariance: counter totals identical at every window width",
            all_totals.windows(2).all(|w| w[0] == w[1]),
            format!("{all_totals:?}"),
        ),
        check(
            "recording complete: no windows evicted, no late-dropped samples",
            complete,
            format!(
                "evicted/late per width: {:?}",
                runs.iter()
                    .map(|r| {
                        let ts = r.report.timeseries.as_ref().unwrap();
                        (ts.windows_evicted, ts.late_dropped)
                    })
                    .collect::<Vec<_>>()
            ),
        ),
        check(
            "conservation: link-bytes windows sum to net.bytes_sent, retx \
             windows sum to span retransmissions, cache hits match proxy stats",
            t_mid.link_bytes == mid.report.net.bytes_sent
                && t_mid.retx == mid.report.spans.retransmissions
                && t_mid.cache_hit == hits
                && t_mid.cache_miss <= remote
                && t_mid.cache_miss > 0,
            format!(
                "bytes {}/{}, retx {}/{}, hits {}/{}, miss {} (remote {})",
                t_mid.link_bytes,
                mid.report.net.bytes_sent,
                t_mid.retx,
                mid.report.spans.retransmissions,
                t_mid.cache_hit,
                hits,
                t_mid.cache_miss,
                remote
            ),
        ),
        check(
            "watchdog: partition pins >=1 exemplar; every breakdown tiles its span exactly",
            !mid.report.exemplars.is_empty()
                && mid.attached >= 1
                && tiled
                && mid
                    .report
                    .exemplars
                    .iter()
                    .all(|e| e.latency_ns > e.threshold_ns),
            format!(
                "{} exemplars, {} with breakdown, {} suppressed, tiling exact: {}",
                mid.report.exemplars.len(),
                mid.attached,
                mid.report.exemplars_suppressed,
                tiled
            ),
        ),
        check(
            "scheduler honesty: dispatch lag structurally zero while heap depth varies",
            ts_mid.hist_max("sched_lag") == 0 && gauge_max(ts_mid, "sched_depth") > 0,
            format!(
                "lag max {}ns, depth max {}",
                ts_mid.hist_max("sched_lag"),
                gauge_max(ts_mid, "sched_depth")
            ),
        ),
        check(
            "exported artifacts pass their validators (timeseries CSV + run report)",
            export_ok && csv_check.is_ok() && report_check.is_ok(),
            format!("csv: {csv_check:?}, report: {report_check:?}"),
        ),
    ];

    ExperimentOutput {
        id: "E15",
        title: "Flight recorder: windowed telemetry + slow-call exemplars",
        tables: vec![table, exemplar_table],
        checks,
        reports: vec![ObsReport {
            label: "flight-1ms".into(),
            json: report_json,
        }],
        traces: vec![TraceArtifact {
            label: "flight".into(),
            trace: mid.trace.clone(),
        }],
    }
}
