//! E9 — Adaptive proxies track the workload.
//!
//! A phase-shifting workload (read-heavy → write-heavy → read-heavy)
//! runs against the same service under three specs: stub, always-caching
//! and adaptive — with several clients, so invalidation traffic matters.
//!
//! Expected shape: the adaptive proxy approaches the caching proxy's
//! latency in the read phases (it turns caching on), and sheds the
//! caching proxy's invalidation storm in the write phase (it
//! unsubscribes) — beating the stub overall while sending fewer
//! messages than always-caching in write-heavy conditions.

use std::time::Duration;

use naming::spawn_name_server;
use proxy_core::{
    AdaptiveParams, CachingParams, ClientRuntime, Coherence, ProxySpec, ServiceBuilder,
};
use services::kv::KvStore;
use simnet::{Ctx, NetworkConfig, NodeId, Simulation};
use wire::Value;

use crate::{check, obs_report, slot, take, ExperimentOutput, ObsReport, Table};

const CLIENTS: u32 = 4;
const PHASE_OPS: u64 = 150;
const KEYS: u64 = 8;

#[derive(Debug, Clone, Copy)]
struct Point {
    total_ms: f64,
    msgs: u64,
    switches: u64,
}

fn phase_read_pct(phase: usize) -> u64 {
    match phase {
        0 => 95,
        1 => 10,
        _ => 95,
    }
}

fn run_workload(rt: &mut ClientRuntime, ctx: &mut Ctx, handle: proxy_core::ProxyHandle) {
    for phase in 0..3 {
        let read_pct = phase_read_pct(phase);
        for i in 0..PHASE_OPS {
            let is_read = ctx.with_rng(|r| rand::Rng::gen_range(r, 0..100)) < read_pct;
            let key = format!("k{}", i % KEYS);
            if is_read {
                rt.invoke(
                    ctx,
                    handle,
                    "get",
                    Value::record([("key", Value::str(key))]),
                )
                .unwrap();
            } else {
                rt.invoke(
                    ctx,
                    handle,
                    "put",
                    Value::record([("key", Value::str(key)), ("value", Value::str("v"))]),
                )
                .unwrap();
            }
        }
    }
}

fn measure(label: &str, spec: ProxySpec, seed: u64) -> (Point, ObsReport) {
    let mut sim = Simulation::new(NetworkConfig::lan(), seed);
    let ns = spawn_name_server(&sim, NodeId(0));
    ServiceBuilder::new("kv")
        .spec(spec)
        .object(|| Box::new(KvStore::new()))
        .spawn(&sim, NodeId(1), ns);
    let mut slots = Vec::new();
    for c in 0..CLIENTS {
        let (w, r) = slot::<(f64, u64)>();
        slots.push(r);
        sim.spawn(format!("client{c}"), NodeId(2 + c), move |ctx| {
            // Stagger starts slightly so clients interleave.
            ctx.sleep(Duration::from_micros(200 * c as u64)).unwrap();
            let mut rt = ClientRuntime::new(ns);
            let kv = rt.bind(ctx, "kv").unwrap();
            let t0 = ctx.now();
            run_workload(&mut rt, ctx, kv);
            let stats = rt.stats(kv);
            *w.lock().unwrap() = Some((
                (ctx.now() - t0).as_secs_f64() * 1e3,
                stats.strategy_switches,
            ));
        });
    }
    let report = sim.run();
    let mut total = 0.0f64;
    let mut switches = 0;
    for s in slots {
        let (ms, sw) = take(s);
        total = total.max(ms);
        switches += sw;
    }
    (
        Point {
            total_ms: total,
            msgs: report.metrics.msgs_sent,
            switches,
        },
        obs_report(label, &sim),
    )
}

/// Runs E9 and returns its tables and shape checks.
pub fn run() -> ExperimentOutput {
    let (stub, stub_obs) = measure("stub", ProxySpec::Stub, 100);
    let (caching, caching_obs) = measure(
        "always-caching",
        ProxySpec::Caching(CachingParams {
            coherence: Coherence::Invalidate,
            capacity: 256,
        }),
        100,
    );
    let (adaptive, adaptive_obs) = measure(
        "adaptive",
        ProxySpec::Adaptive(AdaptiveParams {
            window: 40,
            enable_at: 0.8,
            disable_at: 0.4,
            caching: CachingParams {
                coherence: Coherence::Invalidate,
                capacity: 256,
            },
        }),
        100,
    );

    let mut table = Table::new(
        format!(
            "phase-shifting workload — {CLIENTS} clients x 3 phases x {PHASE_OPS} ops (95%/10%/95% reads)"
        ),
        &["strategy", "makespan ms", "total msgs", "switches"],
    );
    for (name, p) in [
        ("stub", &stub),
        ("always-caching", &caching),
        ("adaptive", &adaptive),
    ] {
        table.add_row(vec![
            name.into(),
            format!("{:.1}", p.total_ms),
            p.msgs.to_string(),
            p.switches.to_string(),
        ]);
    }

    let checks = vec![
        check(
            "adaptive beats the stub overall",
            adaptive.total_ms < stub.total_ms * 0.8,
            format!(
                "adaptive {:.1}ms vs stub {:.1}ms",
                adaptive.total_ms, stub.total_ms
            ),
        ),
        check(
            "adaptive stays within 25% of always-caching latency",
            adaptive.total_ms < caching.total_ms * 1.25,
            format!(
                "adaptive {:.1}ms vs caching {:.1}ms",
                adaptive.total_ms, caching.total_ms
            ),
        ),
        check(
            "adaptive sends fewer messages than always-caching (sheds the invalidation storm)",
            adaptive.msgs < caching.msgs,
            format!(
                "adaptive {} msgs vs caching {} msgs",
                adaptive.msgs, caching.msgs
            ),
        ),
        check(
            "every adaptive client switched strategy at least twice (on and off)",
            adaptive.switches >= (CLIENTS as u64) * 2,
            format!("{} switches across {} clients", adaptive.switches, CLIENTS),
        ),
    ];

    ExperimentOutput {
        id: "E9",
        title: "Adaptive proxies under a phase-shifting workload",
        tables: vec![table],
        checks,
        reports: vec![stub_obs, caching_obs, adaptive_obs],
        traces: vec![],
    }
}
