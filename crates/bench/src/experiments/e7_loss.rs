//! E7 — At-most-once execution under loss and duplication.
//!
//! The proxy encapsulates failure handling: retransmission plus
//! server-side duplicate suppression give at-most-once execution no
//! matter how hostile the network. We sweep the drop probability with a
//! deliberately non-idempotent counter and count *over-executions* —
//! increments the server performed beyond what the client could account
//! for. The retransmission-policy ablation (fixed vs exponential
//! backoff) shows the latency/traffic trade.
//!
//! Expected shape: zero over-executions at every loss rate; latency and
//! message cost rise with loss; exponential backoff trades extra latency
//! for fewer retransmissions at high loss.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use rpc::{ErrorCode, RemoteError, RetryPolicy, RpcClient, RpcError, RpcServer};
use simnet::{NetworkConfig, NodeId, PortId, Simulation};
use wire::Value;

use crate::{
    capture_trace, check, obs_report, slot, take, ExperimentOutput, ObsReport, Table, TraceArtifact,
};

const CALLS: u64 = 150;

#[derive(Debug, Clone, Copy)]
struct Point {
    successes: u64,
    timeouts: u64,
    executions: u64,
    over_executions: u64,
    retries: u64,
    mean_latency_us: f64,
    msgs: u64,
}

fn measure(
    loss: f64,
    duplicate: f64,
    policy: RetryPolicy,
    seed: u64,
) -> (Point, ObsReport, TraceArtifact) {
    let cfg = NetworkConfig::lan()
        .with_loss(loss)
        .with_duplicate(duplicate);
    let mut sim = Simulation::new(cfg, seed);
    sim.enable_trace(1 << 16);
    let execs = Arc::new(AtomicU64::new(0));
    let e2 = Arc::clone(&execs);
    let server = sim.spawn_at("counter", NodeId(0), PortId(1), move |ctx| {
        let mut srv = RpcServer::new();
        srv.serve(
            ctx,
            |_ctx, req| match req.op.as_str() {
                "inc" => Ok(Value::U64(e2.fetch_add(1, Ordering::SeqCst) + 1)),
                other => Err(RemoteError::new(ErrorCode::NoSuchOp, other.to_owned())),
            },
            |_, _| {},
        );
    });
    let (w, r) = slot::<(u64, u64, u64, f64)>();
    sim.spawn("client", NodeId(1), move |ctx| {
        let mut c = RpcClient::with_policy(server, policy);
        let mut ok = 0u64;
        let mut latency_sum = 0.0;
        for _ in 0..CALLS {
            let t0 = ctx.now();
            // Each call gets a root invoke span so the causal trace has
            // per-request groups for `tracectl` to analyze.
            let span = ctx.obs().open_span(
                obs::SpanKind::Invoke,
                obs::SpanId::NONE,
                "counter",
                "inc",
                ctx.now().as_nanos(),
            );
            let prev = ctx.set_current_span(span);
            let res = c.call(ctx, "inc", Value::Null);
            ctx.set_current_span(prev);
            ctx.obs()
                .close_span(span, ctx.now().as_nanos(), res.is_ok());
            match res {
                Ok(_) => {
                    ok += 1;
                    latency_sum += (ctx.now() - t0).as_secs_f64() * 1e6;
                }
                Err(RpcError::Timeout { .. }) => {}
                Err(e) => panic!("unexpected error: {e}"),
            }
        }
        *w.lock().unwrap() = Some((ok, c.stats.timeouts, c.stats.retries, latency_sum));
    });
    let report = sim.run();
    let (successes, timeouts, retries, latency_sum) = take(r);
    let executions = execs.load(Ordering::SeqCst);
    // A timed-out call may or may not have executed (its reply may have
    // been the lost message) — that ambiguity is inherent to at-most-once.
    // An over-execution is anything beyond successes + timeouts.
    let over = executions.saturating_sub(successes + timeouts);
    (
        Point {
            successes,
            timeouts,
            executions,
            over_executions: over,
            retries,
            mean_latency_us: if successes > 0 {
                latency_sum / successes as f64
            } else {
                0.0
            },
            msgs: report.metrics.msgs_sent,
        },
        obs_report(format!("loss={loss:.2}"), &sim),
        capture_trace(format!("loss-{:02.0}", loss * 100.0), &sim),
    )
}

/// Runs E7 and returns its tables and shape checks.
pub fn run() -> ExperimentOutput {
    let losses = [0.0, 0.05, 0.10, 0.20, 0.30];
    let policy = RetryPolicy::exponential(Duration::from_millis(4), 10);

    let mut table = Table::new(
        format!(
            "at-most-once under loss — {CALLS} non-idempotent calls, 30% duplication, exp backoff"
        ),
        &[
            "loss %",
            "ok",
            "timeout",
            "server execs",
            "OVER-EXEC",
            "retries",
            "mean us",
            "msgs",
        ],
    );
    let mut pts = Vec::new();
    let mut reports = Vec::new();
    let mut traces = Vec::new();
    for (i, &loss) in losses.iter().enumerate() {
        let (p, obs, trace) = measure(loss, 0.30, policy.clone(), 80 + i as u64);
        if loss >= 0.29 {
            reports.push(obs);
            traces.push(trace);
        }
        table.add_row(vec![
            format!("{:.0}", loss * 100.0),
            p.successes.to_string(),
            p.timeouts.to_string(),
            p.executions.to_string(),
            p.over_executions.to_string(),
            p.retries.to_string(),
            format!("{:.0}", p.mean_latency_us),
            p.msgs.to_string(),
        ]);
        pts.push(p);
    }

    // Retransmission ablation at 20% loss.
    let (fixed, _, _) = measure(
        0.20,
        0.0,
        RetryPolicy::fixed(Duration::from_millis(4), 10),
        90,
    );
    let (expo, _, _) = measure(
        0.20,
        0.0,
        RetryPolicy::exponential(Duration::from_millis(4), 10),
        90,
    );
    let mut ab = Table::new(
        "retransmission ablation at 20% loss".to_string(),
        &["policy", "ok", "retries", "mean us", "msgs"],
    );
    ab.add_row(vec![
        "fixed 4ms".into(),
        fixed.successes.to_string(),
        fixed.retries.to_string(),
        format!("{:.0}", fixed.mean_latency_us),
        fixed.msgs.to_string(),
    ]);
    ab.add_row(vec![
        "exponential 4ms*2^k".into(),
        expo.successes.to_string(),
        expo.retries.to_string(),
        format!("{:.0}", expo.mean_latency_us),
        expo.msgs.to_string(),
    ]);

    let checks = vec![
        check(
            "zero over-executions at every loss rate",
            pts.iter().all(|p| p.over_executions == 0),
            format!(
                "over-exec by loss: {:?}",
                pts.iter().map(|p| p.over_executions).collect::<Vec<_>>()
            ),
        ),
        check(
            "clean network: every call succeeds with no retries",
            pts[0].successes == CALLS && pts[0].retries == 0,
            format!("{}/{} ok, {} retries", pts[0].successes, CALLS, pts[0].retries),
        ),
        check(
            "retries rise with loss",
            pts.windows(2).all(|w| w[1].retries >= w[0].retries),
            format!(
                "retries: {:?}",
                pts.iter().map(|p| p.retries).collect::<Vec<_>>()
            ),
        ),
        check(
            "mean latency rises with loss",
            pts.last().unwrap().mean_latency_us > pts[0].mean_latency_us * 1.3,
            format!(
                "{:.0}us at 0% -> {:.0}us at 30%",
                pts[0].mean_latency_us,
                pts.last().unwrap().mean_latency_us
            ),
        ),
        check(
            "retry ablation: when retransmissions are loss-driven (timeout >> RTT),              fixed intervals give lower latency at no extra message cost",
            fixed.mean_latency_us <= expo.mean_latency_us && expo.msgs >= fixed.msgs.saturating_sub(5),
            format!(
                "fixed {:.0}us/{} msgs vs exponential {:.0}us/{} msgs",
                fixed.mean_latency_us, fixed.msgs, expo.mean_latency_us, expo.msgs
            ),
        ),
    ];

    ExperimentOutput {
        id: "E7",
        title: "At-most-once semantics under loss/duplication (+ retry ablation)",
        tables: vec![table, ab],
        checks,
        reports,
        traces,
    }
}
