//! E16 — Million-process scale: poll-driven clients against sharded KV
//! services.
//!
//! The thread-backed process model tops out at a few thousand
//! concurrent processes — each one costs an OS thread stack and two
//! channel handoffs per scheduling decision. This experiment exercises
//! the other process kind: every client is a [`simnet::Process`] state
//! machine driven through [`SessionCore`]'s non-blocking surface
//! (`bind_async` → `poll_bind` → `invoke_async` → `poll_call`), so a
//! parked client costs one registry entry holding its own state struct
//! — no stack, no thread.
//!
//! The workload: `clients` poll-driven clients spread over `nodes`
//! simulated nodes, each binding to one of `shards` stub-grade KV
//! services through the name server, then running `calls_per_client`
//! alternating put/get calls. All clients are alive *simultaneously* —
//! the process-table high-water mark (`processes_peak`) must cover
//! every one of them, which is the point: the same shape with threads
//! would need ~8 GiB of stacks at the full 100k-client scale, while
//! here the whole fleet parks in `clients × size_of::<ClientProc>()`
//! bytes of machine state (reported as `rss_proxy_bytes`).
//!
//! Each run writes a `BENCH_e16.json` artifact (same contract as
//! `BENCH_e14.json`: wall-clock events/s, msgs/s, bytes/s plus the
//! memory-proxy numbers) wired into the perf gate warn-only.
//!
//! Fast smoke mode for CI: set `PROXIDE_E16_SMOKE=1` to shrink the
//! fleet to ~2k clients.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use proxy_core::{AsyncHandle, BindFuture, CallFuture, ProxySpec, ServiceBuilder, SessionCore};
use services::kv::KvStore;
use simnet::{NetworkConfig, NodeId, Poll, ProcCx, Process, Simulation};
use wire::Value;

use crate::{check, obs_report, ExperimentOutput, Table};

/// One workload configuration.
#[derive(Debug, Clone, Copy)]
struct Config {
    clients: usize,
    calls_per_client: u32,
    shards: usize,
    nodes: u32,
}

impl Config {
    fn full() -> Config {
        Config {
            clients: 100_000,
            calls_per_client: 4,
            shards: 8,
            nodes: 32,
        }
    }

    fn smoke() -> Config {
        Config {
            clients: 2_000,
            calls_per_client: 4,
            shards: 4,
            nodes: 8,
        }
    }

    fn pick() -> (Config, &'static str) {
        match std::env::var_os("PROXIDE_E16_SMOKE") {
            Some(v) if !v.is_empty() && v != "0" => (Config::smoke(), "smoke"),
            _ => (Config::full(), "full"),
        }
    }

    fn total_calls(&self) -> u64 {
        self.clients as u64 * u64::from(self.calls_per_client)
    }
}

/// Where a poll-driven client is in its lifecycle.
enum ClientState {
    Start,
    Binding(BindFuture),
    Calling(AsyncHandle, CallFuture),
    Done,
}

/// One client: a state machine that binds to its shard and alternates
/// put/get calls through the non-blocking session surface. Everything
/// the client *is* lives in this struct — its size is the per-process
/// memory cost the experiment reports.
struct ClientProc {
    core: SessionCore,
    state: ClientState,
    shard: String,
    id: usize,
    calls_target: u32,
    calls_done: u32,
    ok: Arc<AtomicU64>,
    completed: Arc<AtomicU64>,
}

impl ClientProc {
    fn next_call(&mut self, cx: &mut ProcCx, h: AsyncHandle) {
        let key = format!("c{}/k", self.id);
        let f = if self.calls_done.is_multiple_of(2) {
            self.core.invoke_async(
                cx,
                h,
                "put",
                Value::record([
                    ("key", Value::str(key)),
                    ("value", Value::str(format!("v{}", self.calls_done))),
                ]),
            )
        } else {
            self.core
                .invoke_async(cx, h, "get", Value::record([("key", Value::str(key))]))
        };
        self.state = ClientState::Calling(h, f);
    }
}

impl Process for ClientProc {
    fn poll(&mut self, cx: &mut ProcCx) -> Poll<()> {
        loop {
            match self.state {
                ClientState::Start => {
                    let f = self.core.bind_async(cx, &self.shard);
                    self.state = ClientState::Binding(f);
                }
                ClientState::Binding(f) => match self.core.poll_bind(cx, f) {
                    Poll::Pending => return Poll::Pending,
                    Poll::Ready(Ok(h)) => self.next_call(cx, h),
                    Poll::Ready(Err(_)) => {
                        self.state = ClientState::Done;
                    }
                },
                ClientState::Calling(h, f) => match self.core.poll_call(cx, f) {
                    Poll::Pending => return Poll::Pending,
                    Poll::Ready(r) => {
                        if r.is_ok() {
                            self.ok.fetch_add(1, Ordering::Relaxed);
                        }
                        self.calls_done += 1;
                        if self.calls_done < self.calls_target {
                            self.next_call(cx, h);
                        } else {
                            self.state = ClientState::Done;
                        }
                    }
                },
                ClientState::Done => {
                    self.completed.fetch_add(1, Ordering::Relaxed);
                    return Poll::Ready(());
                }
            }
        }
    }
}

/// One measured repetition.
#[derive(Debug, Clone, Copy)]
struct Rep {
    wall: Duration,
    sim_us: f64,
    ok: u64,
    completed: u64,
    events: u64,
    msgs: u64,
    bytes: u64,
    procs_peak: u64,
}

impl Rep {
    fn events_per_sec(&self) -> f64 {
        self.events as f64 / self.wall.as_secs_f64()
    }
    fn msgs_per_sec(&self) -> f64 {
        self.msgs as f64 / self.wall.as_secs_f64()
    }
    fn bytes_per_sec(&self) -> f64 {
        self.bytes as f64 / self.wall.as_secs_f64()
    }
}

fn run_once(cfg: Config, seed: u64) -> (Rep, Option<crate::ObsReport>) {
    let mut sim = Simulation::new(NetworkConfig::lan(), seed);
    let ns = naming::spawn_name_server(&sim, NodeId(0));
    for s in 0..cfg.shards {
        ServiceBuilder::new(format!("kv{s}"))
            .spec(ProxySpec::Stub)
            .object(|| Box::new(KvStore::new()))
            .spawn(&sim, NodeId(1 + s as u32), ns);
    }
    let ok = Arc::new(AtomicU64::new(0));
    let completed = Arc::new(AtomicU64::new(0));
    let first_node = 1 + cfg.shards as u32;
    for c in 0..cfg.clients {
        let node = NodeId(first_node + (c as u32 % cfg.nodes));
        sim.spawn_poll(
            format!("c{c}"),
            node,
            ClientProc {
                core: SessionCore::new(ns),
                state: ClientState::Start,
                shard: format!("kv{}", c % cfg.shards),
                id: c,
                calls_target: cfg.calls_per_client,
                calls_done: 0,
                ok: Arc::clone(&ok),
                completed: Arc::clone(&completed),
            },
        );
    }
    let t0 = Instant::now();
    let report = sim.run();
    let wall = t0.elapsed();
    let rep = Rep {
        wall,
        sim_us: report.end_time.as_nanos() as f64 / 1000.0,
        ok: ok.load(Ordering::Relaxed),
        completed: completed.load(Ordering::Relaxed),
        events: report.metrics.events_dispatched,
        msgs: report.metrics.msgs_sent,
        bytes: report.metrics.bytes_sent,
        procs_peak: report.metrics.processes_peak,
    };
    let obs = obs_report("e16", &sim);
    (rep, Some(obs))
}

/// Where `BENCH_e16.json` lands: `$PROXIDE_BENCH_DIR` or the repo root.
fn artifact_path() -> std::path::PathBuf {
    if let Some(dir) = std::env::var_os("PROXIDE_BENCH_DIR") {
        return std::path::PathBuf::from(dir).join("BENCH_e16.json");
    }
    let manifest = std::path::Path::new(env!("CARGO_MANIFEST_DIR"));
    manifest
        .ancestors()
        .nth(2)
        .unwrap_or(manifest)
        .join("BENCH_e16.json")
}

/// FNV-1a over the workload-shaping fields (perfgate's config
/// fingerprint).
fn config_hash(cfg: Config) -> String {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for v in [
        cfg.clients as u64,
        u64::from(cfg.calls_per_client),
        cfg.shards as u64,
        u64::from(cfg.nodes),
    ] {
        for b in v.to_le_bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    format!("{h:016x}")
}

fn git_rev() -> Option<String> {
    let out = std::process::Command::new("git")
        .args(["rev-parse", "--short", "HEAD"])
        .output()
        .ok()?;
    if !out.status.success() {
        return None;
    }
    let rev = String::from_utf8(out.stdout).ok()?;
    let rev = rev.trim();
    if rev.is_empty() {
        None
    } else {
        Some(rev.to_owned())
    }
}

fn artifact_meta(cfg: Config) -> String {
    let mut meta = format!(
        "{{\"seed\": 1600, \"config_hash\": \"{}\"",
        config_hash(cfg)
    );
    if let Some(rev) = git_rev() {
        meta.push_str(&format!(", \"git_rev\": \"{rev}\""));
    }
    if let Ok(date) = std::env::var("PROXIDE_RUN_DATE") {
        if !date.is_empty() {
            meta.push_str(&format!(", \"date\": \"{date}\""));
        }
    }
    meta.push('}');
    meta
}

fn artifact_json(
    cfg: Config,
    mode: &str,
    rep: &Rep,
    state_bytes: usize,
    host_cores: usize,
) -> String {
    let rss_proxy = rep.procs_peak * state_bytes as u64;
    format!(
        concat!(
            "{{\n",
            "  \"experiment\": \"E16\",\n",
            "  \"title\": \"million-process scale (poll-driven clients, sharded KV, wall-clock)\",\n",
            "  \"mode\": \"{mode}\",\n",
            "  \"meta\": {meta},\n",
            "  \"host_cores\": {host_cores},\n",
            "  \"config\": {{\"clients\": {clients}, \"calls_per_client\": {cpc}, ",
            "\"shards\": {shards}, \"nodes\": {nodes}}},\n",
            "  \"best\": {{\n",
            "    \"wall_ms\": {wall:.3},\n",
            "    \"sim_ms\": {sim:.3},\n",
            "    \"ok_calls\": {ok},\n",
            "    \"clients_completed\": {completed},\n",
            "    \"events_dispatched\": {events},\n",
            "    \"msgs_sent\": {msgs},\n",
            "    \"bytes_sent\": {bytes},\n",
            "    \"processes_peak\": {peak},\n",
            "    \"state_bytes_per_client\": {state},\n",
            "    \"rss_proxy_bytes\": {rss},\n",
            "    \"events_per_sec\": {eps:.0},\n",
            "    \"msgs_per_sec\": {mps:.0},\n",
            "    \"bytes_per_sec\": {bps:.0}\n",
            "  }}\n",
            "}}\n",
        ),
        mode = mode,
        meta = artifact_meta(cfg),
        host_cores = host_cores,
        clients = cfg.clients,
        cpc = cfg.calls_per_client,
        shards = cfg.shards,
        nodes = cfg.nodes,
        wall = rep.wall.as_secs_f64() * 1e3,
        sim = rep.sim_us / 1e3,
        ok = rep.ok,
        completed = rep.completed,
        events = rep.events,
        msgs = rep.msgs,
        bytes = rep.bytes,
        peak = rep.procs_peak,
        state = state_bytes,
        rss = rss_proxy,
        eps = rep.events_per_sec(),
        mps = rep.msgs_per_sec(),
        bps = rep.bytes_per_sec(),
    )
}

/// Runs E16 and returns its tables and shape checks.
pub fn run() -> ExperimentOutput {
    let (cfg, mode) = Config::pick();
    let (rep, obs) = run_once(cfg, 1600);
    let state_bytes = std::mem::size_of::<ClientProc>();
    let rss_proxy = rep.procs_peak * state_bytes as u64;

    let mut table = Table::new(
        format!(
            "poll-driven fleet ({mode}) — {} clients x {} calls over {} shards on {} nodes",
            cfg.clients, cfg.calls_per_client, cfg.shards, cfg.nodes
        ),
        &[
            "clients",
            "wall ms",
            "sim ms",
            "ok",
            "events",
            "events/s",
            "peak procs",
            "state B",
            "rss proxy MB",
        ],
    );
    table.add_row(vec![
        cfg.clients.to_string(),
        format!("{:.2}", rep.wall.as_secs_f64() * 1e3),
        format!("{:.2}", rep.sim_us / 1e3),
        rep.ok.to_string(),
        rep.events.to_string(),
        format!("{:.0}", rep.events_per_sec()),
        rep.procs_peak.to_string(),
        state_bytes.to_string(),
        format!("{:.2}", rss_proxy as f64 / 1e6),
    ]);

    let path = artifact_path();
    let host_cores = std::thread::available_parallelism().map_or(1, std::num::NonZero::get);
    let json = artifact_json(cfg, mode, &rep, state_bytes, host_cores);
    let wrote = std::fs::write(&path, &json);
    let artifact_detail = match &wrote {
        Ok(()) => format!("wrote {}", path.display()),
        Err(e) => format!("write to {} failed: {e}", path.display()),
    };

    let total = cfg.total_calls();
    // Thread stacks default to 8 MiB of address space on Linux; even the
    // committed-page floor is ~8-16 KiB each. The whole point of the
    // poll runtime is that a parked client costs 2-3 orders of magnitude
    // less than that.
    let bytes_per_client = rss_proxy as f64 / cfg.clients as f64;
    let checks = vec![
        check(
            "every client ran to completion",
            rep.completed == cfg.clients as u64,
            format!("{} of {} clients completed", rep.completed, cfg.clients),
        ),
        check(
            "every call succeeded on the clean network",
            rep.ok == total,
            format!("{} of {total} calls ok", rep.ok),
        ),
        check(
            "the whole fleet was concurrently parked",
            rep.procs_peak >= cfg.clients as u64,
            format!(
                "processes_peak {} >= {} clients (plus {} services + ns)",
                rep.procs_peak,
                cfg.clients,
                cfg.shards
            ),
        ),
        check(
            "process table stays bounded: well under a thread stack per client",
            bytes_per_client < 4096.0,
            format!(
                "{bytes_per_client:.0} B/client ({} peak procs x {state_bytes} B state = {:.2} MB total)",
                rep.procs_peak,
                rss_proxy as f64 / 1e6
            ),
        ),
        check(
            "host sustains a sane event rate",
            rep.events_per_sec() > 1_000.0 && rep.events_per_sec().is_finite(),
            format!(
                "{:.0} events/s, {:.0} msgs/s, {:.2} MB/s over {:.2}s wall",
                rep.events_per_sec(),
                rep.msgs_per_sec(),
                rep.bytes_per_sec() / 1e6,
                rep.wall.as_secs_f64()
            ),
        ),
        check(
            "BENCH_e16.json artifact written",
            wrote.is_ok(),
            artifact_detail,
        ),
    ];

    ExperimentOutput {
        id: "E16",
        title: "Million-process scale (poll-driven clients, non-blocking session API)",
        tables: vec![table],
        checks,
        reports: obs.into_iter().collect(),
        traces: Vec::new(),
    }
}
