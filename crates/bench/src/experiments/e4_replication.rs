//! E4 — Replica-reading proxies scale reads.
//!
//! A directory service with a 200µs per-op compute cost is replicated
//! across 1..5 nodes. Six clients, each placed near one replica
//! (100µs link) and far from the rest (5ms links), hammer it with reads.
//!
//! Expected shape: with one replica every client pays the far RTT *and*
//! queues behind everyone else at the single server; adding replicas
//! both shortens the path (nearest-read placement) and divides the
//! service load, so mean latency falls and aggregate throughput scales.
//! The sync-vs-async ablation shows the write-latency price of keeping
//! backups always-current.

use std::time::Duration;

use naming::spawn_name_server;
use proxy_core::ReadTarget;
use replication::{client_runtime, spawn_replica_group, Propagation, ReplicaGroupConfig};
use services::directory::Directory;
use simnet::{NetworkConfig, NodeId, Simulation};
use wire::Value;

use crate::{check, obs_report, slot, take, ExperimentOutput, ObsReport, Table};

const CLIENTS: u32 = 6;
const READS_PER_CLIENT: u64 = 100;
const SERVICE_TIME: Duration = Duration::from_micros(200);

#[derive(Debug, Clone, Copy)]
struct Point {
    mean_read_us: f64,
    throughput_kops: f64,
}

/// Client node ids start at 100; replica nodes at 1.
fn measure_reads(replicas: u32, seed: u64) -> (Point, ObsReport) {
    let mut sim = Simulation::new(NetworkConfig::lan(), seed);
    {
        let mut net = sim.net();
        for c in 0..CLIENTS {
            let client = NodeId(100 + c);
            for r in 0..replicas {
                let replica = NodeId(1 + r);
                let near = c % replicas == r;
                net.set_link_latency(
                    client,
                    replica,
                    if near {
                        Duration::from_micros(100)
                    } else {
                        Duration::from_millis(5)
                    },
                );
            }
        }
    }
    let ns = spawn_name_server(&sim, NodeId(0));
    spawn_replica_group(
        &sim,
        ns,
        ReplicaGroupConfig {
            service: "dir".into(),
            nodes: (0..replicas).map(|r| NodeId(1 + r)).collect(),
            propagation: Propagation::Sync,
            read_target: ReadTarget::Nearest,
        },
        || Box::new(Directory::new().with_service_time(SERVICE_TIME)),
    );

    let mut slots = Vec::new();
    for c in 0..CLIENTS {
        let (w, r) = slot::<(f64, f64)>(); // (elapsed_us, ops)
        slots.push(r);
        sim.spawn(format!("client{c}"), NodeId(100 + c), move |ctx| {
            let mut rt = client_runtime(ns);
            let dir = rt.bind(ctx, "dir").unwrap();
            // Seed one entry so lookups return data (only client 0).
            if c == 0 {
                rt.invoke(
                    ctx,
                    dir,
                    "insert",
                    Value::record([("path", Value::str("/x")), ("value", Value::str("v"))]),
                )
                .unwrap();
            }
            let t0 = ctx.now();
            for _ in 0..READS_PER_CLIENT {
                rt.invoke(
                    ctx,
                    dir,
                    "lookup",
                    Value::record([("path", Value::str("/x"))]),
                )
                .unwrap();
            }
            let elapsed = (ctx.now() - t0).as_secs_f64() * 1e6;
            *w.lock().unwrap() = Some((elapsed, READS_PER_CLIENT as f64));
        });
    }
    sim.run();
    let mut total_ops = 0.0;
    let mut max_elapsed = 0.0f64;
    let mut sum_elapsed = 0.0;
    for s in slots {
        let (elapsed, ops) = take(s);
        total_ops += ops;
        sum_elapsed += elapsed;
        max_elapsed = max_elapsed.max(elapsed);
    }
    (
        Point {
            mean_read_us: sum_elapsed / total_ops,
            // Aggregate rate over the slowest client's window, in kops/s.
            throughput_kops: total_ops / max_elapsed * 1e3,
        },
        obs_report(format!("{replicas}-replicas"), &sim),
    )
}

/// Mean write latency for one client against a 3-replica group.
fn measure_writes(propagation: Propagation, seed: u64) -> f64 {
    let mut sim = Simulation::new(NetworkConfig::lan(), seed);
    let ns = spawn_name_server(&sim, NodeId(0));
    spawn_replica_group(
        &sim,
        ns,
        ReplicaGroupConfig {
            service: "dir".into(),
            nodes: vec![NodeId(1), NodeId(2), NodeId(3)],
            propagation,
            read_target: ReadTarget::Primary,
        },
        || Box::new(Directory::new()),
    );
    let (w, r) = slot::<f64>();
    sim.spawn("writer", NodeId(9), move |ctx| {
        let mut rt = client_runtime(ns);
        let dir = rt.bind(ctx, "dir").unwrap();
        let t0 = ctx.now();
        for i in 0..50u64 {
            rt.invoke(
                ctx,
                dir,
                "insert",
                Value::record([
                    ("path", Value::str(format!("/p{i}"))),
                    ("value", Value::str("v")),
                ]),
            )
            .unwrap();
        }
        *w.lock().unwrap() = Some((ctx.now() - t0).as_secs_f64() * 1e6 / 50.0);
    });
    sim.run();
    take(r)
}

/// Runs E4 and returns its tables and shape checks.
pub fn run() -> ExperimentOutput {
    let sweep = [1u32, 2, 3, 5];
    let mut table = Table::new(
        format!(
            "read scaling — {CLIENTS} clients x {READS_PER_CLIENT} lookups, 200us service time, near=100us far=5ms"
        ),
        &["replicas", "mean read us", "aggregate kops/s"],
    );
    let mut pts = Vec::new();
    let mut reports = Vec::new();
    for (i, &n) in sweep.iter().enumerate() {
        let (p, obs) = measure_reads(n, 40 + i as u64);
        if n == 3 {
            reports.push(obs);
        }
        table.add_row(vec![
            n.to_string(),
            format!("{:.0}", p.mean_read_us),
            format!("{:.2}", p.throughput_kops),
        ]);
        pts.push(p);
    }

    let sync_us = measure_writes(Propagation::Sync, 50);
    let async_us = measure_writes(Propagation::Async, 51);
    let mut wtable = Table::new(
        "write latency ablation — 3 replicas, primary reads".to_string(),
        &["propagation", "mean write us"],
    );
    wtable.add_row(vec![
        "sync (gated on backups)".into(),
        format!("{sync_us:.0}"),
    ]);
    wtable.add_row(vec![
        "async (fire-and-forget)".into(),
        format!("{async_us:.0}"),
    ]);

    let checks = vec![
        check(
            "read latency falls as replicas are added",
            pts.last().unwrap().mean_read_us < pts[0].mean_read_us * 0.5,
            format!(
                "1 replica {:.0}us -> {} replicas {:.0}us",
                pts[0].mean_read_us,
                sweep.last().unwrap(),
                pts.last().unwrap().mean_read_us
            ),
        ),
        check(
            "aggregate throughput scales with replicas (>=2x from 1 to 3)",
            pts[2].throughput_kops > pts[0].throughput_kops * 2.0,
            format!(
                "1 replica {:.2} kops/s -> 3 replicas {:.2} kops/s",
                pts[0].throughput_kops, pts[2].throughput_kops
            ),
        ),
        check(
            "throughput is monotonic in replica count",
            // 10% tolerance: six clients cannot map evenly onto five
            // replicas, so the last point carries placement imbalance.
            pts.windows(2)
                .all(|w| w[1].throughput_kops >= w[0].throughput_kops * 0.90),
            "non-decreasing across the sweep (10% tolerance)".to_string(),
        ),
        check(
            "async propagation makes writes cheaper than sync",
            async_us < sync_us * 0.7,
            format!("sync {sync_us:.0}us vs async {async_us:.0}us"),
        ),
    ];

    ExperimentOutput {
        id: "E4",
        title: "Replica-reading proxies: read scaling and propagation ablation",
        tables: vec![table, wtable],
        checks,
        reports,
        traces: vec![],
    }
}
