//! E13 — Pipelined and batched RPC: throughput vs depth, messages vs
//! batch size, and at-most-once under chaos.
//!
//! The synchronous stub pays one RTT per call. The [`rpc::Channel`]
//! encapsulates a different channel protocol behind the same call
//! interface — up to `pipeline_depth` calls in flight, replies matched
//! by id, and staged requests coalesced into shared datagrams — which is
//! exactly the paper's point that the proxy (and the channel object
//! beneath it) may pick its protocol freely as long as the interface
//! contract survives. We sweep the depth, sweep the batch size, and then
//! turn the network hostile to confirm the at-most-once guarantee
//! survives out-of-order completion and whole-batch duplication.
//!
//! Expected shape: throughput scales near-linearly with depth until the
//! server saturates; batching divides messages/op by nearly the batch
//! size; over-executions stay at zero under 30% loss + 30% duplication.
//! The honest negative: batching *raises* per-call latency — a call's
//! reply waits for its batch-mates — so it buys message economy, not
//! speed.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use rpc::{Channel, ChannelConfig, ErrorCode, RemoteError, RetryPolicy, RpcError, RpcServer};
use simnet::{NetworkConfig, NodeId, PortId, Simulation};
use wire::Value;

use crate::{
    capture_trace, check, obs_report, slot, take, ExperimentOutput, ObsReport, Table, TraceArtifact,
};

const CALLS: u64 = 256;
/// Per-op service time: gives the pipeline a server-side bottleneck so
/// the depth sweep shows saturation, not just RTT-hiding.
const SERVICE_US: u64 = 50;

#[derive(Debug, Clone, Copy)]
struct Point {
    ok: u64,
    elapsed_us: f64,
    ops_per_sec: f64,
    mean_latency_us: f64,
    msgs: u64,
    msgs_per_op: f64,
    batches: u64,
}

fn spawn_service(sim: &Simulation, execs: &Arc<AtomicU64>) -> simnet::Endpoint {
    let e2 = Arc::clone(execs);
    sim.spawn_at("pipesvc", NodeId(0), PortId(1), move |ctx| {
        let mut srv = RpcServer::new();
        srv.serve(
            ctx,
            |ctx, req| match req.op.as_str() {
                "work" => {
                    let _ = ctx.sleep(Duration::from_micros(SERVICE_US));
                    Ok(Value::U64(e2.fetch_add(1, Ordering::SeqCst) + 1))
                }
                other => Err(RemoteError::new(ErrorCode::NoSuchOp, other.to_owned())),
            },
            |_, _| {},
        );
    })
}

fn measure(
    depth: usize,
    max_batch: usize,
    calls: u64,
    seed: u64,
    trace: bool,
) -> (Point, Simulation) {
    let mut sim = Simulation::new(NetworkConfig::lan(), seed);
    if trace {
        sim.enable_trace(1 << 16);
    }
    let execs = Arc::new(AtomicU64::new(0));
    let server = spawn_service(&sim, &execs);
    let (w, r) = slot::<(u64, f64, u64)>();
    sim.spawn("client", NodeId(1), move |ctx| {
        let cfg = ChannelConfig::with_depth(depth).batched(max_batch);
        let mut ch = Channel::new("pipesvc", server, cfg);
        let t0 = ctx.now();
        let handles: Vec<_> = (0..calls)
            .map(|_| ch.begin_call(ctx, "work", Value::Null))
            .collect();
        let mut ok = 0u64;
        for h in handles {
            if ch.wait(ctx, h).is_ok() {
                ok += 1;
            }
        }
        let elapsed = (ctx.now() - t0).as_secs_f64() * 1e6;
        *w.lock().unwrap() = Some((ok, elapsed, ch.stats.batches_sent));
    });
    let report = sim.run();
    let (ok, elapsed_us, batches) = take(r);
    // Per-call latency comes from the channel's own invoke spans
    // (begin→reply, including window queueing), via the obs registry.
    let mean_latency_us = sim
        .obs_report()
        .ops
        .get("pipesvc/work")
        .map(|l| l.mean_ns as f64 / 1000.0)
        .unwrap_or(0.0);
    (
        Point {
            ok,
            elapsed_us,
            ops_per_sec: ok as f64 / (elapsed_us / 1e6),
            mean_latency_us,
            msgs: report.metrics.msgs_sent,
            msgs_per_op: report.metrics.msgs_sent as f64 / calls as f64,
            batches,
        },
        sim,
    )
}

fn chaos_leg(seed: u64) -> (u64, u64, u64, u64) {
    let cfg = NetworkConfig::lan().with_loss(0.30).with_duplicate(0.30);
    let mut sim = Simulation::new(cfg, seed);
    let execs = Arc::new(AtomicU64::new(0));
    let server = spawn_service(&sim, &execs);
    let (w, r) = slot::<(u64, u64)>();
    sim.spawn("client", NodeId(1), move |ctx| {
        let cfg = ChannelConfig::with_depth(8)
            .batched(4)
            .with_policy(RetryPolicy::exponential(Duration::from_millis(4), 10));
        let mut ch = Channel::new("pipesvc", server, cfg);
        let handles: Vec<_> = (0..CALLS)
            .map(|_| ch.begin_call(ctx, "work", Value::Null))
            .collect();
        let mut ok = 0u64;
        for h in handles {
            match ch.wait(ctx, h) {
                Ok(_) => ok += 1,
                Err(RpcError::Timeout { .. }) => {}
                Err(_) => return,
            }
        }
        *w.lock().unwrap() = Some((ok, ch.stats.timeouts));
    });
    sim.run();
    let (ok, timeouts) = take(r);
    let e = execs.load(Ordering::SeqCst);
    (ok, timeouts, e, e.saturating_sub(ok + timeouts))
}

/// Runs E13 and returns its tables and shape checks.
pub fn run() -> ExperimentOutput {
    // ---- depth sweep (no batching) ----
    let depths = [1usize, 2, 4, 8, 16, 32];
    let mut depth_table = Table::new(
        format!("pipeline depth sweep — {CALLS} calls, {SERVICE_US}us service time, LAN"),
        &["depth", "ok", "elapsed ms", "ops/s", "msgs"],
    );
    let mut depth_pts = Vec::new();
    let mut reports: Vec<ObsReport> = Vec::new();
    let mut traces: Vec<TraceArtifact> = Vec::new();
    for (i, &d) in depths.iter().enumerate() {
        let trace = d == 8;
        let (p, sim) = measure(d, 1, CALLS, 130 + i as u64, trace);
        if trace {
            reports.push(obs_report(format!("depth={d}"), &sim));
            traces.push(capture_trace(format!("depth-{d}"), &sim));
        }
        depth_table.add_row(vec![
            d.to_string(),
            p.ok.to_string(),
            format!("{:.2}", p.elapsed_us / 1000.0),
            format!("{:.0}", p.ops_per_sec),
            p.msgs.to_string(),
        ]);
        depth_pts.push(p);
    }

    // ---- batch sweep (depth 32 fixed) ----
    let batches = [1usize, 2, 4, 8];
    let mut batch_table = Table::new(
        format!("batch size sweep — depth 32, {CALLS} calls"),
        &["batch", "msgs", "msgs/op", "batch frames", "mean call us"],
    );
    let mut batch_pts = Vec::new();
    let mut batch_lat = Vec::new();
    for (i, &b) in batches.iter().enumerate() {
        let (p, _) = measure(32, b, CALLS, 140 + i as u64, false);
        // The latency probe uses one pipeline window's worth of calls so
        // per-call latency is not dominated by window queueing: the cost
        // of waiting for batch-mates stands out.
        let (probe, _) = measure(8, b, 8, 240 + i as u64, false);
        batch_table.add_row(vec![
            b.to_string(),
            p.msgs.to_string(),
            format!("{:.2}", p.msgs_per_op),
            p.batches.to_string(),
            format!("{:.0}", probe.mean_latency_us),
        ]);
        batch_pts.push(p);
        batch_lat.push(probe.mean_latency_us);
    }

    // ---- chaos leg ----
    let (ok, timeouts, execs, over) = chaos_leg(150);
    let mut chaos_table = Table::new(
        "at-most-once under chaos — depth 8, batch 4, 30% loss + 30% duplication".to_string(),
        &["ok", "timeout", "server execs", "OVER-EXEC"],
    );
    chaos_table.add_row(vec![
        ok.to_string(),
        timeouts.to_string(),
        execs.to_string(),
        over.to_string(),
    ]);

    let d1 = &depth_pts[0];
    let d8 = &depth_pts[3];
    let checks = vec![
        check(
            "depth 8 achieves >=4x the throughput of depth 1",
            d8.ops_per_sec >= d1.ops_per_sec * 4.0,
            format!(
                "{:.0} ops/s at depth 8 vs {:.0} at depth 1 ({:.1}x)",
                d8.ops_per_sec,
                d1.ops_per_sec,
                d8.ops_per_sec / d1.ops_per_sec
            ),
        ),
        check(
            "throughput never degrades as depth grows",
            depth_pts
                .windows(2)
                .all(|w| w[1].ops_per_sec >= w[0].ops_per_sec * 0.95),
            format!(
                "ops/s by depth: {:?}",
                depth_pts
                    .iter()
                    .map(|p| p.ops_per_sec.round())
                    .collect::<Vec<_>>()
            ),
        ),
        check(
            "every pipelined call completes on the clean network",
            depth_pts.iter().all(|p| p.ok == CALLS),
            format!(
                "ok by depth: {:?}",
                depth_pts.iter().map(|p| p.ok).collect::<Vec<_>>()
            ),
        ),
        check(
            "batch 8 reduces messages/op by >=2x vs unbatched",
            batch_pts[0].msgs_per_op >= batch_pts[3].msgs_per_op * 2.0,
            format!(
                "{:.2} msgs/op unbatched vs {:.2} at batch 8 ({:.1}x)",
                batch_pts[0].msgs_per_op,
                batch_pts[3].msgs_per_op,
                batch_pts[0].msgs_per_op / batch_pts[3].msgs_per_op
            ),
        ),
        check(
            "honest negative: batching raises per-call latency (replies wait for batch-mates)",
            batch_lat[3] > batch_lat[0],
            format!(
                "mean call latency {:.0}us at batch 8 vs {:.0}us unbatched",
                batch_lat[3], batch_lat[0]
            ),
        ),
        check(
            "zero over-executions at 30% loss + 30% duplication with pipelining + batching",
            over == 0 && ok + timeouts == CALLS,
            format!("{execs} execs for {ok} ok + {timeouts} timeouts (over = {over})"),
        ),
    ];

    ExperimentOutput {
        id: "E13",
        title: "Pipelined + batched RPC channel (multi-outstanding calls)",
        tables: vec![depth_table, batch_table, chaos_table],
        checks,
        reports,
        traces,
    }
}
