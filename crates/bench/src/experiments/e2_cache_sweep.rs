//! E2 — Caching proxy vs stub across the read/write mix.
//!
//! The file-cache claim: a service whose reads dominate should hand its
//! clients caching proxies. We sweep the read ratio from 0% to 100% and
//! compare a stub against caching proxies under both coherence modes
//! (the lease-vs-invalidation ablation from `DESIGN.md` §4).
//!
//! Expected shape: at the write-heavy end the strategies tie (writes are
//! write-through everywhere); as reads dominate, the caching proxies'
//! per-op cost collapses toward the local-hit cost while the stub stays
//! flat at one RTT per op.

use std::time::Duration;

use naming::spawn_name_server;
use proxy_core::{CachingParams, ClientRuntime, Coherence, ProxySpec, ServiceBuilder};
use services::file::{block_addr, BlockFile};
use simnet::{NetworkConfig, NodeId, Simulation};
use wire::Value;

use crate::{check, obs_report, slot, take, us_per_op_f, ExperimentOutput, ObsReport, Table};

const OPS: u64 = 300;
const BLOCKS: u64 = 10;

#[derive(Debug, Clone, Copy)]
struct Point {
    per_op_us: f64,
    remote: u64,
    hits: u64,
}

fn measure(label: &str, spec: ProxySpec, read_pct: u64, seed: u64) -> (Point, ObsReport) {
    let mut sim = Simulation::new(NetworkConfig::lan(), seed);
    let ns = spawn_name_server(&sim, NodeId(0));
    ServiceBuilder::new("fs")
        .spec(spec)
        .object(|| Box::new(BlockFile::new().with_disk_time(Duration::from_micros(50))))
        .spawn(&sim, NodeId(1), ns);
    let (w, r) = slot::<Point>();
    sim.spawn("client", NodeId(2), move |ctx| {
        let mut rt = ClientRuntime::new(ns);
        let fs = rt.bind(ctx, "fs").unwrap();
        // Seed every block (unmeasured).
        for b in 0..BLOCKS {
            rt.invoke(
                ctx,
                fs,
                "write",
                Value::record([
                    ("addr", Value::str(block_addr("data", b))),
                    ("data", Value::blob(vec![0u8; 256])),
                ]),
            )
            .unwrap();
        }
        let base = rt.stats(fs);
        let t0 = ctx.now();
        for i in 0..OPS {
            let is_read = ctx.with_rng(|r| rand::Rng::gen_range(r, 0..100)) < read_pct;
            let addr = block_addr("data", i % BLOCKS);
            if is_read {
                rt.invoke(ctx, fs, "read", Value::record([("addr", Value::str(addr))]))
                    .unwrap();
            } else {
                rt.invoke(
                    ctx,
                    fs,
                    "write",
                    Value::record([
                        ("addr", Value::str(addr)),
                        ("data", Value::blob(vec![1u8; 256])),
                    ]),
                )
                .unwrap();
            }
        }
        let s = rt.stats(fs);
        *w.lock().unwrap() = Some(Point {
            per_op_us: us_per_op_f(ctx.now() - t0, OPS),
            remote: s.remote_calls - base.remote_calls,
            hits: s.local_hits - base.local_hits,
        });
    });
    sim.run();
    (
        take(r),
        obs_report(format!("{label}@{read_pct}%reads"), &sim),
    )
}

/// Runs E2 and returns its tables and shape checks.
pub fn run() -> ExperimentOutput {
    let ratios = [0u64, 20, 40, 60, 80, 90, 95, 100];
    let mut table = Table::new(
        format!("per-op cost (us, simulated) vs read ratio — {OPS} ops over {BLOCKS} blocks, 50us disk, LAN"),
        &["reads %", "stub us/op", "cache(inv) us/op", "cache(lease 20ms) us/op", "inv hits", "lease hits"],
    );

    let mut stub_pts = Vec::new();
    let mut inv_pts = Vec::new();
    let mut lease_pts = Vec::new();
    let mut reports = Vec::new();
    for (i, &pct) in ratios.iter().enumerate() {
        let seed = 10 + i as u64;
        let (stub, stub_obs) = measure("stub", ProxySpec::Stub, pct, seed);
        let (inv, inv_obs) = measure(
            "cache-inv",
            ProxySpec::Caching(CachingParams {
                coherence: Coherence::Invalidate,
                capacity: 1024,
            }),
            pct,
            seed,
        );
        let (lease, _) = measure(
            "cache-lease",
            ProxySpec::Caching(CachingParams {
                coherence: Coherence::Lease(Duration::from_millis(20)),
                capacity: 1024,
            }),
            pct,
            seed,
        );
        // Keep one representative report pair (the 90%-reads point).
        if pct == 90 {
            reports.push(stub_obs);
            reports.push(inv_obs);
        }
        table.add_row(vec![
            pct.to_string(),
            format!("{:.1}", stub.per_op_us),
            format!("{:.1}", inv.per_op_us),
            format!("{:.1}", lease.per_op_us),
            inv.hits.to_string(),
            lease.hits.to_string(),
        ]);
        stub_pts.push(stub);
        inv_pts.push(inv);
        lease_pts.push(lease);
    }

    let first = 0;
    let last = ratios.len() - 1;
    let checks = vec![
        check(
            "all-writes: caching ties with stub (no benefit, no penalty)",
            (inv_pts[first].per_op_us - stub_pts[first].per_op_us).abs()
                / stub_pts[first].per_op_us
                < 0.10,
            format!(
                "at 0% reads: stub {:.1}us, caching {:.1}us",
                stub_pts[first].per_op_us, inv_pts[first].per_op_us
            ),
        ),
        check(
            "all-reads: invalidation-coherent cache ≥5x cheaper than stub",
            inv_pts[last].per_op_us * 5.0 < stub_pts[last].per_op_us,
            format!(
                "at 100% reads: stub {:.1}us, caching {:.1}us",
                stub_pts[last].per_op_us, inv_pts[last].per_op_us
            ),
        ),
        check(
            "stub is flat across the sweep (every op pays the RTT)",
            {
                let min = stub_pts
                    .iter()
                    .map(|p| p.per_op_us)
                    .fold(f64::MAX, f64::min);
                let max = stub_pts.iter().map(|p| p.per_op_us).fold(0.0, f64::max);
                (max - min) / max < 0.15
            },
            "stub cost varies <15% over the sweep".to_string(),
        ),
        check(
            "caching cost decreases monotonically as reads grow",
            inv_pts
                .windows(2)
                .all(|w| w[1].per_op_us <= w[0].per_op_us * 1.05),
            "per-op cost non-increasing (5% tolerance)".to_string(),
        ),
        check(
            "leases trade hits for staleness bounds (fewer hits than invalidation)",
            lease_pts[last].hits > 0 && lease_pts[last].hits <= inv_pts[last].hits,
            format!(
                "at 100% reads: lease hits {}, invalidation hits {}",
                lease_pts[last].hits, inv_pts[last].hits
            ),
        ),
        check(
            "remote traffic shrinks with read ratio under caching",
            inv_pts[last].remote < inv_pts[first].remote,
            format!(
                "remote calls: {} (0% reads) -> {} (100% reads)",
                inv_pts[first].remote, inv_pts[last].remote
            ),
        ),
    ];

    ExperimentOutput {
        id: "E2",
        title: "Caching proxy vs stub across the read/write mix (+ coherence ablation)",
        tables: vec![table],
        checks,
        reports,
        traces: vec![],
    }
}
