//! E12 — Proxies vs distributed shared memory.
//!
//! The third column of the classic access-method table: instead of
//! invoking a remote object, map its page and use memory operations.
//! The era's argument, reproduced quantitatively:
//!
//! * **Locality**: a single dominant user wins big with DSM — after one
//!   fault, every access is a free local memory op (like the migratory
//!   proxy, minus marshalling).
//! * **Fine-grained sharing**: two contexts alternately writing the
//!   same page *ping-pong* it; each access pays a 3-hop ownership
//!   transfer, which is worse than simply RPCing the operation to a
//!   stationary server (the stub column wins).
//!
//! This is exactly why the proxy principle keeps the *choice* of
//! mechanism behind the interface: no single access method wins
//! everywhere.

use std::time::Duration;

use dsm::{spawn_dsm_manager, DsmClient, PageId};
use naming::spawn_name_server;
use proxy_core::{ClientRuntime, ProxySpec, ServiceBuilder};
use services::counter::Counter;
use simnet::{NetworkConfig, NodeId, Simulation};
use wire::Value;

use crate::{check, obs_report, slot, take, us_per_op_f, ExperimentOutput, ObsReport, Table};

const OPS: u64 = 200;

/// Scenario A: one client hammers one object (90% reads).
fn locality_dsm(seed: u64) -> (f64, u64, ObsReport) {
    let mut sim = Simulation::new(NetworkConfig::lan(), seed);
    let manager = spawn_dsm_manager(&sim, NodeId(0), 64);
    let (w, r) = slot::<f64>();
    sim.spawn("client", NodeId(1), move |ctx| {
        let mut mem = DsmClient::attach(ctx, manager);
        // Warm nothing: the first access faults, as in real DSM.
        let t0 = ctx.now();
        for i in 0..OPS {
            let is_read = ctx.with_rng(|r| rand::Rng::gen_bool(r, 0.9));
            if is_read {
                let _ = mem.read(ctx, PageId(0), 0, 8).unwrap();
            } else {
                mem.write(ctx, PageId(0), 0, &i.to_le_bytes()).unwrap();
            }
        }
        *w.lock().unwrap() = Some(us_per_op_f(ctx.now() - t0, OPS));
    });
    let report = sim.run();
    (take(r), report.metrics.msgs_sent, obs_report("dsm", &sim))
}

fn locality_proxy(label: &str, spec: ProxySpec, seed: u64) -> (f64, u64, ObsReport) {
    let mut sim = Simulation::new(NetworkConfig::lan(), seed);
    let ns = spawn_name_server(&sim, NodeId(0));
    ServiceBuilder::new("ctr")
        .spec(spec)
        .factories(services::all_factories())
        .object(|| Box::new(Counter::new()))
        .spawn(&sim, NodeId(0), ns);
    let (w, r) = slot::<f64>();
    sim.spawn("client", NodeId(1), move |ctx| {
        let mut rt = ClientRuntime::new(ns).with_factories(services::all_factories());
        let ctr = rt.bind(ctx, "ctr").unwrap();
        let t0 = ctx.now();
        for _ in 0..OPS {
            let is_read = ctx.with_rng(|r| rand::Rng::gen_bool(r, 0.9));
            let op = if is_read { "get" } else { "inc" };
            rt.invoke(ctx, ctr, op, Value::Null).unwrap();
        }
        *w.lock().unwrap() = Some(us_per_op_f(ctx.now() - t0, OPS));
    });
    let report = sim.run();
    (take(r), report.metrics.msgs_sent, obs_report(label, &sim))
}

/// Scenario B: two contexts alternately write fields in the same page
/// (DSM) or the same object (stub RPC). Returns mean µs per write.
fn pingpong_dsm(seed: u64) -> f64 {
    let mut sim = Simulation::new(NetworkConfig::lan(), seed);
    let manager = spawn_dsm_manager(&sim, NodeId(0), 64);
    let mut slots = Vec::new();
    for c in 0..2u32 {
        let (w, r) = slot::<f64>();
        slots.push(r);
        sim.spawn(format!("writer{c}"), NodeId(1 + c), move |ctx| {
            let mut mem = DsmClient::attach(ctx, manager);
            let t0 = ctx.now();
            for i in 0..50u64 {
                // Each writer touches its own offset — *false sharing*:
                // the page, not the datum, is the coherence unit.
                mem.write(ctx, PageId(0), (c as usize) * 8, &i.to_le_bytes())
                    .unwrap();
                ctx.sleep(Duration::from_micros(200)).unwrap();
            }
            *w.lock().unwrap() = Some(((ctx.now() - t0).as_secs_f64() * 1e6 - 50.0 * 200.0) / 50.0);
        });
    }
    sim.run();
    let mut worst = 0.0f64;
    for s in slots {
        worst = worst.max(take(s));
    }
    worst
}

fn pingpong_stub(seed: u64) -> f64 {
    let mut sim = Simulation::new(NetworkConfig::lan(), seed);
    let ns = spawn_name_server(&sim, NodeId(0));
    ServiceBuilder::new("ctr")
        .factories(services::all_factories())
        .object(|| Box::new(Counter::new()))
        .spawn(&sim, NodeId(0), ns);
    let mut slots = Vec::new();
    for c in 0..2u32 {
        let (w, r) = slot::<f64>();
        slots.push(r);
        sim.spawn(format!("writer{c}"), NodeId(1 + c), move |ctx| {
            let mut rt = ClientRuntime::new(ns);
            let ctr = rt.bind(ctx, "ctr").unwrap();
            let t0 = ctx.now();
            for _ in 0..50 {
                rt.invoke(ctx, ctr, "inc", Value::Null).unwrap();
                ctx.sleep(Duration::from_micros(200)).unwrap();
            }
            *w.lock().unwrap() = Some(((ctx.now() - t0).as_secs_f64() * 1e6 - 50.0 * 200.0) / 50.0);
        });
    }
    sim.run();
    let mut worst = 0.0f64;
    for s in slots {
        worst = worst.max(take(s));
    }
    worst
}

/// Runs E12 and returns its tables and shape checks.
pub fn run() -> ExperimentOutput {
    let (dsm_us, dsm_msgs, dsm_obs) = locality_dsm(140);
    let (stub_us, stub_msgs, stub_obs) = locality_proxy("stub", ProxySpec::Stub, 141);
    let (mig_us, mig_msgs, mig_obs) =
        locality_proxy("migratory", ProxySpec::Migratory { threshold: 10 }, 142);

    let mut t1 = Table::new(
        format!("scenario A — one dominant user, {OPS} ops (90% reads) on one object"),
        &["access method", "us/op", "total msgs"],
    );
    t1.add_row(vec![
        "RPC stub proxy".into(),
        format!("{stub_us:.1}"),
        stub_msgs.to_string(),
    ]);
    t1.add_row(vec![
        "migratory proxy".into(),
        format!("{mig_us:.1}"),
        mig_msgs.to_string(),
    ]);
    t1.add_row(vec![
        "DSM (map on fault)".into(),
        format!("{dsm_us:.1}"),
        dsm_msgs.to_string(),
    ]);

    let pp_dsm = pingpong_dsm(143);
    let pp_stub = pingpong_stub(144);
    let mut t2 = Table::new(
        "scenario B — two contexts alternately writing the same page/object (fine-grained sharing)"
            .to_string(),
        &["access method", "us/write (excl. think time)"],
    );
    t2.add_row(vec!["RPC stub proxy".into(), format!("{pp_stub:.0}")]);
    t2.add_row(vec!["DSM (page ping-pong)".into(), format!("{pp_dsm:.0}")]);

    let checks = vec![
        check(
            "locality: DSM beats the stub by >=10x (accesses become memory ops)",
            dsm_us * 10.0 < stub_us,
            format!("dsm {dsm_us:.1}us vs stub {stub_us:.1}us"),
        ),
        check(
            "locality: DSM ≈ migratory proxy (same idea, different mechanism)",
            dsm_us < mig_us * 1.5,
            format!("dsm {dsm_us:.1}us vs migratory {mig_us:.1}us"),
        ),
        check(
            "locality: DSM sends fewer messages than the stub",
            dsm_msgs < stub_msgs / 4,
            format!("dsm {dsm_msgs} msgs vs stub {stub_msgs}"),
        ),
        check(
            "fine-grained sharing: the page ping-pong makes DSM *worse* than RPC",
            pp_dsm > pp_stub * 1.5,
            format!("dsm {pp_dsm:.0}us/write vs stub {pp_stub:.0}us/write"),
        ),
    ];

    ExperimentOutput {
        id: "E12",
        title: "Proxies vs distributed shared memory (locality vs fine-grained sharing)",
        tables: vec![t1, t2],
        checks,
        reports: vec![dsm_obs, stub_obs, mig_obs],
        traces: vec![],
    }
}
