//! E18 — Multi-core scheduler scaling: one workload, swept over worker
//! threads, with determinism proven between every pair of legs.
//!
//! The sharded scheduler partitions nodes into domains, each with its
//! own clock and event heap, and advances them in parallel under
//! conservative lookahead; a deterministic `(time, src_domain, seq)`
//! merge decides every cross-domain ordering question before any
//! thread gets to race. This experiment puts the claim on the record
//! both ways:
//!
//! * **Determinism** — the same seed at 1, 2 and 4 worker threads must
//!   produce byte-identical summary counters, causal-trace JSONL and
//!   `RunReport` JSON. Not hash-equal: byte-equal, checked here and
//!   re-checked by `ci.sh` with `cmp` on the exported trace artifacts.
//! * **Scaling** — events/s per leg, with the 4-thread/1-thread
//!   speedup recorded in the artifact. The ≥3x gate only *arms* when
//!   the host actually has ≥4 cores (`host_cores` is stamped into the
//!   artifact); on smaller hosts the speedup is reported but
//!   informational — a 1-core container cannot honestly claim 3x, and
//!   pretending otherwise would poison the committed baseline.
//!
//! The workload is E16-shaped — poll-driven KV clients over sharded
//! stub services — but spread over 8 scheduler domains so every
//! request/reply crosses a domain boundary through the outbox merge.
//!
//! Each run writes a `BENCH_e18.json` artifact (perfgate contract:
//! `best` holds wall-clock events/s, msgs/s, bytes/s of the fastest
//! leg) and exports the 1-thread and 4-thread causal traces for
//! `tracectl check` + `cmp`.
//!
//! Fast smoke mode for CI: set `PROXIDE_E18_SMOKE=1`.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use proxy_core::{AsyncHandle, BindFuture, CallFuture, ProxySpec, ServiceBuilder, SessionCore};
use services::kv::KvStore;
use simnet::{NetworkConfig, NodeId, Poll, ProcCx, Process, Simulation};
use wire::Value;

use crate::{capture_trace, check, obs_report, ExperimentOutput, Table, TraceArtifact};

/// The thread counts every leg of the sweep runs at.
const THREADS: [usize; 3] = [1, 2, 4];

/// One workload configuration. The domain count is part of the
/// workload — it shapes event order — while the thread count is swept
/// and must not shape anything but wall-clock time.
#[derive(Debug, Clone, Copy)]
struct Config {
    domains: usize,
    clients: usize,
    calls_per_client: u32,
    shards: usize,
    nodes: u32,
}

impl Config {
    fn full() -> Config {
        Config {
            domains: 8,
            clients: 20_000,
            calls_per_client: 4,
            shards: 8,
            nodes: 32,
        }
    }

    fn smoke() -> Config {
        Config {
            domains: 8,
            clients: 1_000,
            calls_per_client: 4,
            shards: 4,
            nodes: 16,
        }
    }

    fn pick() -> (Config, &'static str) {
        match std::env::var_os("PROXIDE_E18_SMOKE") {
            Some(v) if !v.is_empty() && v != "0" => (Config::smoke(), "smoke"),
            _ => (Config::full(), "full"),
        }
    }

    fn total_calls(&self) -> u64 {
        self.clients as u64 * u64::from(self.calls_per_client)
    }
}

/// Where a poll-driven client is in its lifecycle.
enum ClientState {
    Start,
    Binding(BindFuture),
    Calling(AsyncHandle, CallFuture),
    Done,
}

/// One client: binds to its shard and alternates put/get calls through
/// the non-blocking session surface (same machine as E16).
struct ClientProc {
    core: SessionCore,
    state: ClientState,
    shard: String,
    id: usize,
    calls_target: u32,
    calls_done: u32,
    ok: Arc<AtomicU64>,
    completed: Arc<AtomicU64>,
}

impl ClientProc {
    fn next_call(&mut self, cx: &mut ProcCx, h: AsyncHandle) {
        let key = format!("c{}/k", self.id);
        let f = if self.calls_done.is_multiple_of(2) {
            self.core.invoke_async(
                cx,
                h,
                "put",
                Value::record([
                    ("key", Value::str(key)),
                    ("value", Value::str(format!("v{}", self.calls_done))),
                ]),
            )
        } else {
            self.core
                .invoke_async(cx, h, "get", Value::record([("key", Value::str(key))]))
        };
        self.state = ClientState::Calling(h, f);
    }
}

impl Process for ClientProc {
    fn poll(&mut self, cx: &mut ProcCx) -> Poll<()> {
        loop {
            match self.state {
                ClientState::Start => {
                    let f = self.core.bind_async(cx, &self.shard);
                    self.state = ClientState::Binding(f);
                }
                ClientState::Binding(f) => match self.core.poll_bind(cx, f) {
                    Poll::Pending => return Poll::Pending,
                    Poll::Ready(Ok(h)) => self.next_call(cx, h),
                    Poll::Ready(Err(_)) => {
                        self.state = ClientState::Done;
                    }
                },
                ClientState::Calling(h, f) => match self.core.poll_call(cx, f) {
                    Poll::Pending => return Poll::Pending,
                    Poll::Ready(r) => {
                        if r.is_ok() {
                            self.ok.fetch_add(1, Ordering::Relaxed);
                        }
                        self.calls_done += 1;
                        if self.calls_done < self.calls_target {
                            self.next_call(cx, h);
                        } else {
                            self.state = ClientState::Done;
                        }
                    }
                },
                ClientState::Done => {
                    self.completed.fetch_add(1, Ordering::Relaxed);
                    return Poll::Ready(());
                }
            }
        }
    }
}

/// One leg of the thread sweep: the measured numbers plus every byte
/// an outside observer can compare between legs.
struct Leg {
    threads: usize,
    wall: Duration,
    sim_us: f64,
    ok: u64,
    completed: u64,
    events: u64,
    msgs: u64,
    bytes: u64,
    inversions: u64,
    /// Determinism fingerprint material: summary counters, the causal
    /// trace JSONL, and the `RunReport` JSON.
    summary: String,
    trace_jsonl: String,
    report_json: String,
    trace: TraceArtifact,
    obs: crate::ObsReport,
}

impl Leg {
    fn events_per_sec(&self) -> f64 {
        self.events as f64 / self.wall.as_secs_f64()
    }
    fn msgs_per_sec(&self) -> f64 {
        self.msgs as f64 / self.wall.as_secs_f64()
    }
    fn bytes_per_sec(&self) -> f64 {
        self.bytes as f64 / self.wall.as_secs_f64()
    }
}

fn run_leg(cfg: Config, seed: u64, threads: usize) -> Leg {
    let mut sim = Simulation::new(NetworkConfig::lan(), seed)
        .with_domains(cfg.domains)
        .with_threads(threads);
    sim.enable_trace(1 << 16);
    let ns = naming::spawn_name_server(&sim, NodeId(0));
    for s in 0..cfg.shards {
        ServiceBuilder::new(format!("kv{s}"))
            .spec(ProxySpec::Stub)
            .object(|| Box::new(KvStore::new()))
            .spawn(&sim, NodeId(1 + s as u32), ns);
    }
    let ok = Arc::new(AtomicU64::new(0));
    let completed = Arc::new(AtomicU64::new(0));
    let first_node = 1 + cfg.shards as u32;
    for c in 0..cfg.clients {
        let node = NodeId(first_node + (c as u32 % cfg.nodes));
        sim.spawn_poll(
            format!("c{c}"),
            node,
            ClientProc {
                core: SessionCore::new(ns),
                state: ClientState::Start,
                shard: format!("kv{}", c % cfg.shards),
                id: c,
                calls_target: cfg.calls_per_client,
                calls_done: 0,
                ok: Arc::clone(&ok),
                completed: Arc::clone(&completed),
            },
        );
    }
    let t0 = Instant::now();
    let report = sim.run();
    let wall = t0.elapsed();

    let trace = capture_trace(format!("t{threads}"), &sim);
    let trace_jsonl = obs::to_jsonl(&trace.trace);
    let obs = obs_report(format!("e18-t{threads}"), &sim);
    let report_json = obs.json.clone();
    let summary = format!(
        "end={} sent={} delivered={} events={} spawned={} peak={} finished={} alive={}",
        report.end_time.as_nanos(),
        report.metrics.msgs_sent,
        report.metrics.msgs_delivered,
        report.metrics.events_dispatched,
        report.metrics.processes_spawned,
        report.metrics.processes_peak,
        report.finished,
        report.alive
    );
    Leg {
        threads,
        wall,
        sim_us: report.end_time.as_nanos() as f64 / 1000.0,
        ok: ok.load(Ordering::Relaxed),
        completed: completed.load(Ordering::Relaxed),
        events: report.metrics.events_dispatched,
        msgs: report.metrics.msgs_sent,
        bytes: report.metrics.bytes_sent,
        inversions: report.metrics.sched_time_inversions,
        summary,
        trace_jsonl,
        report_json,
        trace,
        obs,
    }
}

/// Where `BENCH_e18.json` lands: `$PROXIDE_BENCH_DIR` or the repo root.
fn artifact_path() -> std::path::PathBuf {
    if let Some(dir) = std::env::var_os("PROXIDE_BENCH_DIR") {
        return std::path::PathBuf::from(dir).join("BENCH_e18.json");
    }
    let manifest = std::path::Path::new(env!("CARGO_MANIFEST_DIR"));
    manifest
        .ancestors()
        .nth(2)
        .unwrap_or(manifest)
        .join("BENCH_e18.json")
}

/// FNV-1a over the workload-shaping fields (perfgate's config
/// fingerprint). Thread counts are swept, not workload-shaping — every
/// leg runs the same events — but the sweep set is fixed, so it is
/// hashed too; `host_cores` is provenance and deliberately is not.
fn config_hash(cfg: Config) -> String {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut mix = |v: u64| {
        for b in v.to_le_bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    };
    mix(cfg.domains as u64);
    mix(cfg.clients as u64);
    mix(u64::from(cfg.calls_per_client));
    mix(cfg.shards as u64);
    mix(u64::from(cfg.nodes));
    for t in THREADS {
        mix(t as u64);
    }
    format!("{h:016x}")
}

fn git_rev() -> Option<String> {
    let out = std::process::Command::new("git")
        .args(["rev-parse", "--short", "HEAD"])
        .output()
        .ok()?;
    if !out.status.success() {
        return None;
    }
    let rev = String::from_utf8(out.stdout).ok()?;
    let rev = rev.trim();
    if rev.is_empty() {
        None
    } else {
        Some(rev.to_owned())
    }
}

fn artifact_meta(cfg: Config) -> String {
    let mut meta = format!(
        "{{\"seed\": 1800, \"config_hash\": \"{}\"",
        config_hash(cfg)
    );
    if let Some(rev) = git_rev() {
        meta.push_str(&format!(", \"git_rev\": \"{rev}\""));
    }
    if let Ok(date) = std::env::var("PROXIDE_RUN_DATE") {
        if !date.is_empty() {
            meta.push_str(&format!(", \"date\": \"{date}\""));
        }
    }
    meta.push('}');
    meta
}

fn artifact_json(
    cfg: Config,
    mode: &str,
    legs: &[Leg],
    best: &Leg,
    host_cores: usize,
    speedup_4t: f64,
    deterministic: bool,
) -> String {
    let mut legs_json = String::new();
    for (i, l) in legs.iter().enumerate() {
        if i > 0 {
            legs_json.push_str(",\n");
        }
        legs_json.push_str(&format!(
            "    {{\"threads\": {}, \"wall_ms\": {:.3}, \"events_per_sec\": {:.0}}}",
            l.threads,
            l.wall.as_secs_f64() * 1e3,
            l.events_per_sec()
        ));
    }
    format!(
        concat!(
            "{{\n",
            "  \"experiment\": \"E18\",\n",
            "  \"title\": \"multi-core scheduler scaling (per-domain queues, thread sweep, wall-clock)\",\n",
            "  \"mode\": \"{mode}\",\n",
            "  \"meta\": {meta},\n",
            "  \"host_cores\": {host_cores},\n",
            "  \"deterministic_across_threads\": {det},\n",
            "  \"speedup_4t_over_1t\": {speedup:.3},\n",
            "  \"config\": {{\"domains\": {domains}, \"clients\": {clients}, ",
            "\"calls_per_client\": {cpc}, \"shards\": {shards}, \"nodes\": {nodes}, ",
            "\"threads_swept\": [1, 2, 4]}},\n",
            "  \"legs\": [\n{legs}\n  ],\n",
            "  \"best\": {{\n",
            "    \"threads\": {bt},\n",
            "    \"wall_ms\": {wall:.3},\n",
            "    \"sim_ms\": {sim:.3},\n",
            "    \"ok_calls\": {ok},\n",
            "    \"events_dispatched\": {events},\n",
            "    \"sched_time_inversions\": {inv},\n",
            "    \"events_per_sec\": {eps:.0},\n",
            "    \"msgs_per_sec\": {mps:.0},\n",
            "    \"bytes_per_sec\": {bps:.0}\n",
            "  }}\n",
            "}}\n",
        ),
        mode = mode,
        meta = artifact_meta(cfg),
        host_cores = host_cores,
        det = deterministic,
        speedup = speedup_4t,
        domains = cfg.domains,
        clients = cfg.clients,
        cpc = cfg.calls_per_client,
        shards = cfg.shards,
        nodes = cfg.nodes,
        legs = legs_json,
        bt = best.threads,
        wall = best.wall.as_secs_f64() * 1e3,
        sim = best.sim_us / 1e3,
        ok = best.ok,
        events = best.events,
        inv = best.inversions,
        eps = best.events_per_sec(),
        mps = best.msgs_per_sec(),
        bps = best.bytes_per_sec(),
    )
}

/// Runs E18 and returns its tables and shape checks.
pub fn run() -> ExperimentOutput {
    let (cfg, mode) = Config::pick();
    let host_cores = std::thread::available_parallelism().map_or(1, std::num::NonZero::get);

    let legs: Vec<Leg> = THREADS.iter().map(|&t| run_leg(cfg, 1800, t)).collect();
    let base = &legs[0];
    let four = legs.last().expect("sweep is non-empty");
    let speedup_4t = four.events_per_sec() / base.events_per_sec();

    // Byte-identity between every leg and the 1-thread baseline, on all
    // three surfaces an observer has.
    let mut divergences = Vec::new();
    for l in &legs[1..] {
        if l.summary != base.summary {
            divergences.push(format!("t{}: summary counters", l.threads));
        }
        if l.trace_jsonl != base.trace_jsonl {
            divergences.push(format!("t{}: causal trace", l.threads));
        }
        if l.report_json != base.report_json {
            divergences.push(format!("t{}: RunReport JSON", l.threads));
        }
    }
    let deterministic = divergences.is_empty();
    let total_inversions: u64 = legs.iter().map(|l| l.inversions).sum();

    let mut table = Table::new(
        format!(
            "thread sweep ({mode}) — {} clients x {} calls, {} domains on {} nodes",
            cfg.clients, cfg.calls_per_client, cfg.domains, cfg.nodes
        ),
        &[
            "threads",
            "wall ms",
            "sim ms",
            "ok",
            "events",
            "events/s",
            "speedup",
            "identical",
        ],
    );
    for l in &legs {
        table.add_row(vec![
            l.threads.to_string(),
            format!("{:.2}", l.wall.as_secs_f64() * 1e3),
            format!("{:.2}", l.sim_us / 1e3),
            l.ok.to_string(),
            l.events.to_string(),
            format!("{:.0}", l.events_per_sec()),
            format!("{:.2}x", l.events_per_sec() / base.events_per_sec()),
            if l.summary == base.summary
                && l.trace_jsonl == base.trace_jsonl
                && l.report_json == base.report_json
            {
                "yes".into()
            } else {
                "NO".into()
            },
        ]);
    }

    let best = legs
        .iter()
        .max_by(|a, b| a.events_per_sec().total_cmp(&b.events_per_sec()))
        .expect("sweep is non-empty");
    let path = artifact_path();
    let json = artifact_json(
        cfg,
        mode,
        &legs,
        best,
        host_cores,
        speedup_4t,
        deterministic,
    );
    let wrote = std::fs::write(&path, &json);
    let artifact_detail = match &wrote {
        Ok(()) => format!("wrote {}", path.display()),
        Err(e) => format!("write to {} failed: {e}", path.display()),
    };

    let total = cfg.total_calls();
    // A 1-core host runs the worker pool as a time-slice of one CPU and
    // cannot speed anything up; demanding 3x there would force either a
    // dishonest baseline or a permanently red gate. The artifact stamps
    // `host_cores` so readers (and future hosts) know which case this
    // number was measured under.
    let speedup_armed = host_cores >= 4;
    let speedup_ok = !speedup_armed || speedup_4t >= 3.0;
    let checks = vec![
        check(
            "every leg is byte-identical to the 1-thread run",
            deterministic,
            if deterministic {
                format!(
                    "summary + causal trace + RunReport JSON identical across threads {THREADS:?}"
                )
            } else {
                format!("diverged: {}", divergences.join(", "))
            },
        ),
        check(
            "no leg counted a scheduler time inversion",
            total_inversions == 0,
            format!("{total_inversions} inversions across {} legs", legs.len()),
        ),
        check(
            "every client ran to completion in every leg",
            legs.iter().all(|l| l.completed == cfg.clients as u64),
            format!(
                "completed per leg: {:?} (want {} each)",
                legs.iter().map(|l| l.completed).collect::<Vec<_>>(),
                cfg.clients
            ),
        ),
        check(
            "every call succeeded on the clean network",
            legs.iter().all(|l| l.ok == total),
            format!(
                "ok per leg: {:?} (want {total} each)",
                legs.iter().map(|l| l.ok).collect::<Vec<_>>()
            ),
        ),
        check(
            "4-thread speedup >= 3x (armed only on hosts with >= 4 cores)",
            speedup_ok,
            format!(
                "{speedup_4t:.2}x at 4 threads on a {host_cores}-core host ({})",
                if speedup_armed {
                    "gate armed"
                } else {
                    "informational: host too small to arm the gate"
                }
            ),
        ),
        check(
            "BENCH_e18.json artifact written",
            wrote.is_ok(),
            artifact_detail,
        ),
    ];

    let mut traces = Vec::new();
    let mut reports = Vec::new();
    for l in legs {
        if l.threads == 1 || l.threads == 4 {
            traces.push(l.trace);
            reports.push(l.obs);
        }
    }

    ExperimentOutput {
        id: "E18",
        title: "Multi-core scheduler scaling (per-domain event queues, deterministic merge)",
        tables: vec![table],
        checks,
        reports,
        traces,
    }
}
