//! E1 — Access-method comparison.
//!
//! The paper's core comparison (summarized by the stubs/proxies table in
//! later surveys): the same key-value workload executed through
//!
//! * direct message passing (no binding, no retry machinery),
//! * an RPC stub (the degenerate proxy),
//! * a caching proxy, and
//! * a migratory proxy.
//!
//! Expected shape: stub ≈ direct (the proxy abstraction costs nothing);
//! the caching proxy wins on re-reads; the migratory proxy wins once the
//! object moves in.

use std::time::Duration;

use naming::spawn_name_server;
use proxy_core::{CachingParams, ClientRuntime, Coherence, ProxySpec, ServiceBuilder};
use rpc::{RetryPolicy, RpcClient};
use services::kv::KvStore;
use simnet::{Ctx, NetworkConfig, NodeId, SimTime, Simulation};
use wire::Value;

use crate::{check, obs_report, slot, take, us_per_op_f, ExperimentOutput, ObsReport, Table};

const OPS: u64 = 200;
const KEYS: u64 = 20;
const READ_RATIO: f64 = 0.9;

#[derive(Debug, Clone, Copy)]
struct Row {
    per_op_us: f64,
    remote_calls: u64,
    local_hits: u64,
    msgs: u64,
}

fn key_for(i: u64) -> String {
    format!("k{}", i % KEYS)
}

/// The measured client loop: seeded mixed read/write workload over the
/// already-bound invoke closure.
fn workload(ctx: &mut Ctx, mut call: impl FnMut(&mut Ctx, bool, &str)) {
    for i in 0..OPS {
        let is_read = ctx.with_rng(|r| rand::Rng::gen_bool(r, READ_RATIO));
        let key = key_for(i);
        call(ctx, is_read, &key);
    }
}

fn measure(label: &str, spec: Option<ProxySpec>, seed: u64) -> (Row, ObsReport) {
    let mut sim = Simulation::new(NetworkConfig::lan(), seed);
    let ns = spawn_name_server(&sim, NodeId(0));
    let factories = services::all_factories();

    // Direct mode still needs a listening service; clients skip the
    // binding protocol and hit the endpoint raw.
    let mut builder = ServiceBuilder::new("kv").object(|| Box::new(KvStore::new()));
    if let Some(s) = &spec {
        builder = builder.spec(s.clone());
        if matches!(s, ProxySpec::Migratory { .. }) {
            builder = builder.factories(factories.clone());
        }
    }
    let server = builder.spawn(&sim, NodeId(1), ns);

    let (w, r) = slot::<Row>();
    sim.spawn("client", NodeId(2), move |ctx| {
        // Seed the keys (unmeasured).
        let mut seed_rpc = RpcClient::new(server);
        for k in 0..KEYS {
            seed_rpc
                .call(
                    ctx,
                    "put",
                    Value::record([
                        ("key", Value::str(key_for(k))),
                        ("value", Value::str("seed")),
                    ]),
                )
                .unwrap();
        }

        let run = |ctx: &mut Ctx| -> (SimTime, Row) {
            match &spec {
                None => {
                    // Direct message passing: one-shot request/response
                    // without retries, dedup windows or binding.
                    let mut raw = RpcClient::with_policy(
                        server,
                        RetryPolicy::no_retry(Duration::from_secs(1)),
                    );
                    let t0 = ctx.now();
                    workload(ctx, |ctx, is_read, key| {
                        let (op, args) = op_args(is_read, key);
                        raw.call(ctx, op, args).unwrap();
                    });
                    (
                        t0,
                        Row {
                            per_op_us: 0.0,
                            remote_calls: raw.stats.calls,
                            local_hits: 0,
                            msgs: 0,
                        },
                    )
                }
                Some(_) => {
                    let mut rt = ClientRuntime::new(ns).with_factories(services::all_factories());
                    let kv = rt.bind(ctx, "kv").unwrap();
                    let t0 = ctx.now();
                    workload(ctx, |ctx, is_read, key| {
                        let (op, args) = op_args(is_read, key);
                        rt.invoke(ctx, kv, op, args).unwrap();
                    });
                    let s = rt.stats(kv);
                    (
                        t0,
                        Row {
                            per_op_us: 0.0,
                            remote_calls: s.remote_calls,
                            local_hits: s.local_hits,
                            msgs: 0,
                        },
                    )
                }
            }
        };
        let (t0, mut row) = run(ctx);
        row.per_op_us = us_per_op_f(ctx.now() - t0, OPS);
        *w.lock().unwrap() = Some(row);
    });
    let report = sim.run();
    let mut row = take(r);
    row.msgs = report.metrics.msgs_sent;
    (row, obs_report(label, &sim))
}

fn op_args(is_read: bool, key: &str) -> (&'static str, Value) {
    if is_read {
        ("get", Value::record([("key", Value::str(key))]))
    } else {
        (
            "put",
            Value::record([("key", Value::str(key)), ("value", Value::str("v"))]),
        )
    }
}

/// Runs E1 and returns its tables and shape checks.
pub fn run() -> ExperimentOutput {
    let (direct, direct_obs) = measure("direct", None, 1);
    let (stub, stub_obs) = measure("stub", Some(ProxySpec::Stub), 1);
    let (caching, caching_obs) = measure(
        "caching",
        Some(ProxySpec::Caching(CachingParams {
            coherence: Coherence::Invalidate,
            capacity: 1024,
        })),
        1,
    );
    let (migratory, migratory_obs) =
        measure("migratory", Some(ProxySpec::Migratory { threshold: 10 }), 1);

    let mut t = Table::new(
        format!(
            "mean invocation cost, {OPS} ops, {:.0}% reads over {KEYS} keys (LAN: 500us one-way)",
            READ_RATIO * 100.0
        ),
        &[
            "access method",
            "us/op",
            "remote calls",
            "local",
            "total msgs",
        ],
    );
    for (name, row) in [
        ("direct messages", &direct),
        ("RPC stub proxy", &stub),
        ("caching proxy", &caching),
        ("migratory proxy", &migratory),
    ] {
        t.add_row(vec![
            name.into(),
            format!("{:.1}", row.per_op_us),
            row.remote_calls.to_string(),
            row.local_hits.to_string(),
            row.msgs.to_string(),
        ]);
    }

    let checks = vec![
        check(
            "stub ≈ direct (proxy indirection is free on the wire)",
            (stub.per_op_us - direct.per_op_us).abs() / direct.per_op_us < 0.05,
            format!(
                "stub {:.1}us vs direct {:.1}us",
                stub.per_op_us, direct.per_op_us
            ),
        ),
        check(
            "caching proxy beats stub on a read-heavy mix",
            caching.per_op_us < stub.per_op_us * 0.5,
            format!(
                "caching {:.1}us vs stub {:.1}us",
                caching.per_op_us, stub.per_op_us
            ),
        ),
        check(
            "migratory proxy beats stub once the object moves in",
            migratory.per_op_us < stub.per_op_us * 0.5,
            format!(
                "migratory {:.1}us vs stub {:.1}us ({} local)",
                migratory.per_op_us, stub.per_op_us, migratory.local_hits
            ),
        ),
        check(
            "smart proxies cut network traffic",
            caching.msgs < stub.msgs && migratory.msgs < stub.msgs,
            format!(
                "msgs: stub {} / caching {} / migratory {}",
                stub.msgs, caching.msgs, migratory.msgs
            ),
        ),
    ];

    ExperimentOutput {
        id: "E1",
        title: "Access-method comparison (direct vs stub vs smart proxies)",
        tables: vec![t],
        checks,
        reports: vec![direct_obs, stub_obs, caching_obs, migratory_obs],
        traces: vec![],
    }
}
