//! E10 — Forwarding chains and path compression.
//!
//! An object migrates k times without updating the name service, leaving
//! a chain of forwarders. A client that bound before any move makes its
//! next call: with next-hop forwarders it follows the whole chain (one
//! redirect per hop); with resolving forwarders the first stale host
//! walks the chain server-side and redirects straight to the home. In
//! both modes the proxy caches the discovered home, so the second call
//! pays a single hop.

use migration::{request_migration, spawn_migratable, ForwardMode, MigratableConfig};
use naming::spawn_name_server;
use proxy_core::ClientRuntime;
use services::counter::Counter;
use simnet::{NetworkConfig, NodeId, Simulation};
use wire::Value;

use crate::{check, obs_report, slot, take, ExperimentOutput, ObsReport, Table};

#[derive(Debug, Clone, Copy)]
struct Point {
    first_call_us: f64,
    first_redirects: u64,
    second_call_us: f64,
    second_redirects: u64,
    /// First call of a *later* client that binds the (stale) name after
    /// the chain exists — where server-side resolution pays off.
    fresh_first_us: f64,
    fresh_redirects: u64,
}

fn measure(mode: ForwardMode, hops: u32, seed: u64) -> (Point, ObsReport) {
    let mut sim = Simulation::new(NetworkConfig::lan(), seed);
    let ns = spawn_name_server(&sim, NodeId(0));
    let home = spawn_migratable(
        &sim,
        NodeId(1),
        ns,
        MigratableConfig::new("ctr").with_forward_mode(mode),
        services::all_factories(),
        || Box::new(Counter::new()),
    );
    let (w, r) = slot::<Point>();
    sim.spawn("client", NodeId(50), move |ctx| {
        let mut rt = ClientRuntime::new(ns);
        let ctr = rt.bind(ctx, "ctr").unwrap();
        rt.invoke(ctx, ctr, "get", Value::Null).unwrap(); // warm bind

        let mut host = home;
        for i in 0..hops {
            host = request_migration(ctx, host, NodeId(2 + i)).unwrap();
        }

        let s0 = rt.stats(ctr);
        let t0 = ctx.now();
        rt.invoke(ctx, ctr, "get", Value::Null).unwrap();
        let first_call_us = (ctx.now() - t0).as_secs_f64() * 1e6;
        let s1 = rt.stats(ctr);
        let t1 = ctx.now();
        rt.invoke(ctx, ctr, "get", Value::Null).unwrap();
        let second_call_us = (ctx.now() - t1).as_secs_f64() * 1e6;
        let s2 = rt.stats(ctr);
        *w.lock().unwrap() = Some(Point {
            first_call_us,
            first_redirects: s1.rebinds - s0.rebinds,
            second_call_us,
            second_redirects: s2.rebinds - s1.rebinds,
            fresh_first_us: 0.0,
            fresh_redirects: 0,
        });
    });
    // A later client binds the stale name after everything above settled
    // (resolve-mode forwarders have cached the chain walk by then).
    let (fw, fr) = slot::<(f64, u64)>();
    sim.spawn("fresh-client", NodeId(51), move |ctx| {
        ctx.sleep(std::time::Duration::from_millis(200)).unwrap();
        let mut rt = ClientRuntime::new(ns);
        let ctr = rt.bind(ctx, "ctr").unwrap();
        let t0 = ctx.now();
        rt.invoke(ctx, ctr, "get", Value::Null).unwrap();
        *fw.lock().unwrap() = Some(((ctx.now() - t0).as_secs_f64() * 1e6, rt.stats(ctr).rebinds));
    });
    sim.run();
    let mut p = take(r);
    let (fresh_us, fresh_redirects) = take(fr);
    p.fresh_first_us = fresh_us;
    p.fresh_redirects = fresh_redirects;
    (p, obs_report(format!("{mode:?}@k={hops}"), &sim))
}

/// Runs E10 and returns its tables and shape checks.
pub fn run() -> ExperimentOutput {
    let sweep = [0u32, 1, 2, 4, 8];
    let mut table = Table::new(
        "cost of the first call after k migrations (no naming updates) — LAN, 500us one-way"
            .to_string(),
        &[
            "k",
            "mode",
            "1st call us",
            "1st redirects",
            "2nd call us",
            "2nd redirects",
            "later-client 1st us",
            "its redirects",
        ],
    );
    let mut nexthop = Vec::new();
    let mut resolve = Vec::new();
    let mut reports = Vec::new();
    for (i, &k) in sweep.iter().enumerate() {
        let (nh, nh_obs) = measure(ForwardMode::NextHop, k, 110 + i as u64);
        let (rs, rs_obs) = measure(ForwardMode::Resolve, k, 120 + i as u64);
        if k == 8 {
            reports.push(nh_obs);
            reports.push(rs_obs);
        }
        for (mode, p) in [("next-hop", &nh), ("resolve", &rs)] {
            table.add_row(vec![
                k.to_string(),
                mode.into(),
                format!("{:.0}", p.first_call_us),
                p.first_redirects.to_string(),
                format!("{:.0}", p.second_call_us),
                p.second_redirects.to_string(),
                format!("{:.0}", p.fresh_first_us),
                p.fresh_redirects.to_string(),
            ]);
        }
        nexthop.push((k, nh));
        resolve.push((k, rs));
    }

    let checks = vec![
        check(
            "next-hop: first call pays exactly one redirect per hop",
            nexthop.iter().all(|(k, p)| p.first_redirects == *k as u64),
            format!(
                "redirects: {:?}",
                nexthop.iter().map(|(k, p)| (*k, p.first_redirects)).collect::<Vec<_>>()
            ),
        ),
        check(
            "resolve: first call pays at most one redirect regardless of k",
            resolve.iter().all(|(k, p)| p.first_redirects <= 1 || *k == 0),
            format!(
                "redirects: {:?}",
                resolve.iter().map(|(k, p)| (*k, p.first_redirects)).collect::<Vec<_>>()
            ),
        ),
        check(
            "path compression: the second call never redirects",
            nexthop.iter().chain(resolve.iter()).all(|(_, p)| p.second_redirects == 0),
            "0 redirects on every second call".to_string(),
        ),
        check(
            "next-hop first-call latency grows with k; second-call stays flat",
            {
                let growing = nexthop.windows(2).all(|w| w[1].1.first_call_us > w[0].1.first_call_us);
                let flat = nexthop
                    .iter()
                    .all(|(_, p)| (p.second_call_us - nexthop[0].1.second_call_us).abs() < 100.0);
                growing && flat
            },
            format!(
                "first-call us: {:?}",
                nexthop.iter().map(|(k, p)| (*k, p.first_call_us as u64)).collect::<Vec<_>>()
            ),
        ),
        check(
            "eager (resolve) compression amortizes: later clients' first calls beat next-hop on long chains",
            {
                // The first traverser pays the chain walk either way; the
                // win is for every client after it.
                let nh = nexthop.last().unwrap().1;
                let rs = resolve.last().unwrap().1;
                rs.fresh_first_us < nh.fresh_first_us && rs.fresh_redirects <= 1
            },
            format!(
                "later client at k=8: resolve {:.0}us/{} redirects vs next-hop {:.0}us/{} redirects",
                resolve.last().unwrap().1.fresh_first_us,
                resolve.last().unwrap().1.fresh_redirects,
                nexthop.last().unwrap().1.fresh_first_us,
                nexthop.last().unwrap().1.fresh_redirects
            ),
        ),
    ];

    ExperimentOutput {
        id: "E10",
        title: "Forwarding chains after migration (+ compression-mode ablation)",
        tables: vec![table],
        checks,
        reports,
        traces: vec![],
    }
}
