//! E3 — Migration amortization.
//!
//! The migratory proxy pays one checkout (an extra RTT carrying the
//! object state) to turn every later invocation into a local call. We
//! sweep the number of accesses a client makes and compare total elapsed
//! time against a stub.
//!
//! Expected shape: below the threshold nothing migrates and the two are
//! identical; past it the migratory curve flattens (local calls are
//! free) while the stub grows linearly, with the crossover shortly after
//! the threshold.

use naming::spawn_name_server;
use proxy_core::{ClientRuntime, ProxySpec, ServiceBuilder};
use services::counter::Counter;
use simnet::{NetworkConfig, NodeId, Simulation};
use wire::Value;

use crate::{
    capture_trace, check, obs_report, slot, take, ExperimentOutput, ObsReport, Table, TraceArtifact,
};

const THRESHOLD: u64 = 10;

#[derive(Debug, Clone, Copy)]
struct Point {
    total_us: f64,
    migrations: u64,
}

fn measure(migratory: bool, n: u64, seed: u64) -> (Point, ObsReport, TraceArtifact) {
    let mut sim = Simulation::new(NetworkConfig::lan(), seed);
    sim.enable_trace(1 << 16);
    let ns = spawn_name_server(&sim, NodeId(0));
    let factories = services::all_factories();
    let mut builder = ServiceBuilder::new("ctr").object(|| Box::new(Counter::new()));
    if migratory {
        builder = builder
            .spec(ProxySpec::Migratory {
                threshold: THRESHOLD,
            })
            .factories(factories.clone());
    }
    builder.spawn(&sim, NodeId(1), ns);
    let (w, r) = slot::<Point>();
    sim.spawn("client", NodeId(2), move |ctx| {
        let mut rt = ClientRuntime::new(ns).with_factories(factories);
        let ctr = rt.bind(ctx, "ctr").unwrap();
        let t0 = ctx.now();
        for _ in 0..n {
            rt.invoke(ctx, ctr, "inc", Value::Null).unwrap();
        }
        *w.lock().unwrap() = Some(Point {
            total_us: (ctx.now() - t0).as_secs_f64() * 1e6,
            migrations: rt.stats(ctr).migrations,
        });
    });
    sim.run();
    let label = if migratory { "migratory" } else { "stub" };
    (
        take(r),
        obs_report(format!("{label}@N={n}"), &sim),
        capture_trace(format!("{label}-n{n}"), &sim),
    )
}

/// Runs E3 and returns its tables and shape checks.
pub fn run() -> ExperimentOutput {
    let sweep = [1u64, 2, 5, 10, 20, 50, 100, 200];
    let mut table = Table::new(
        format!(
            "total time for N increments (us, simulated) — migration threshold {THRESHOLD}, LAN"
        ),
        &["N", "stub total", "migratory total", "migrated?", "winner"],
    );
    let mut stub_pts = Vec::new();
    let mut mig_pts = Vec::new();
    let mut reports = Vec::new();
    let mut traces = Vec::new();
    let mut crossover: Option<u64> = None;
    for (i, &n) in sweep.iter().enumerate() {
        let seed = 30 + i as u64;
        let (stub, stub_obs, _) = measure(false, n, seed);
        let (mig, mig_obs, mig_trace) = measure(true, n, seed);
        if n == 200 {
            reports.push(stub_obs);
            reports.push(mig_obs);
            traces.push(mig_trace);
        }
        let winner = if mig.total_us < stub.total_us * 0.95 {
            "migratory"
        } else if stub.total_us < mig.total_us * 0.95 {
            "stub"
        } else {
            "tie"
        };
        if winner == "migratory" && crossover.is_none() {
            crossover = Some(n);
        }
        table.add_row(vec![
            n.to_string(),
            format!("{:.0}", stub.total_us),
            format!("{:.0}", mig.total_us),
            if mig.migrations > 0 { "yes" } else { "no" }.into(),
            winner.into(),
        ]);
        stub_pts.push(stub);
        mig_pts.push(mig);
    }

    let below = sweep.iter().position(|&n| n == 5).unwrap();
    let top = sweep.len() - 1;
    let checks = vec![
        check(
            "below the threshold the strategies are identical",
            (mig_pts[below].total_us - stub_pts[below].total_us).abs() / stub_pts[below].total_us
                < 0.05
                && mig_pts[below].migrations == 0,
            format!(
                "N=5: stub {:.0}us vs migratory {:.0}us",
                stub_pts[below].total_us, mig_pts[below].total_us
            ),
        ),
        check(
            "the object migrates once past the threshold",
            mig_pts[top].migrations == 1,
            format!("N=200: {} migration(s)", mig_pts[top].migrations),
        ),
        check(
            "at N=200 migration wins by >=4x",
            mig_pts[top].total_us * 4.0 < stub_pts[top].total_us,
            format!(
                "stub {:.0}us vs migratory {:.0}us",
                stub_pts[top].total_us, mig_pts[top].total_us
            ),
        ),
        check(
            "crossover appears shortly after the threshold",
            matches!(crossover, Some(n) if n <= THRESHOLD * 2),
            format!("first migratory win at N={crossover:?} (threshold {THRESHOLD})"),
        ),
    ];

    ExperimentOutput {
        id: "E3",
        title: "Migration amortization (stub vs migratory proxy, access-count sweep)",
        tables: vec![table],
        checks,
        reports,
        traces,
    }
}
