//! E5 — The same-context fast path.
//!
//! Encapsulation must not tax co-located callers: when client and object
//! share a context, invocation through the proxy must collapse to a
//! procedure call; on the same node, to IPC. We place the *same* object
//! at three distances and invoke it identically through the runtime.
//!
//! Expected shape: same-context ≈ 0 (no messages at all); same-node pays
//! only IPC; remote pays the full network RTT — orders of magnitude
//! apart, with client code identical in all three cases.

use naming::spawn_name_server;
use proxy_core::{ClientRuntime, ServiceBuilder};
use services::counter::Counter;
use simnet::{NetworkConfig, NodeId, Simulation};
use wire::Value;

use crate::{check, obs_report, slot, take, us_per_op_f, ExperimentOutput, ObsReport, Table};

const OPS: u64 = 100;

#[derive(Debug, Clone, Copy)]
struct Point {
    per_op_us: f64,
    msgs: u64,
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum Placement {
    SameContext,
    SameNode,
    Remote,
}

fn measure(label: &str, placement: Placement, seed: u64) -> (Point, ObsReport) {
    let mut sim = Simulation::new(NetworkConfig::lan(), seed);
    let ns = spawn_name_server(&sim, NodeId(0));
    if placement != Placement::SameContext {
        let node = match placement {
            Placement::SameNode => NodeId(2), // same node as the client
            _ => NodeId(1),
        };
        ServiceBuilder::new("ctr")
            .object(|| Box::new(Counter::new()))
            .spawn(&sim, node, ns);
    }
    let (w, r) = slot::<Point>();
    sim.spawn("client", NodeId(2), move |ctx| {
        let mut rt = ClientRuntime::new(ns);
        let ctr = match placement {
            Placement::SameContext => rt.host_local("ctr", Box::new(Counter::new())),
            _ => rt.bind(ctx, "ctr").unwrap(),
        };
        let before = ctx.now();
        for _ in 0..OPS {
            rt.invoke(ctx, ctr, "inc", Value::Null).unwrap();
        }
        *w.lock().unwrap() = Some(Point {
            per_op_us: us_per_op_f(ctx.now() - before, OPS),
            msgs: 0,
        });
    });
    let report = sim.run();
    let mut p = take(r);
    p.msgs = report.metrics.msgs_sent;
    (p, obs_report(label, &sim))
}

/// Runs E5 and returns its tables and shape checks.
pub fn run() -> ExperimentOutput {
    let (local, local_obs) = measure("same-context", Placement::SameContext, 60);
    let (node, node_obs) = measure("same-node", Placement::SameNode, 61);
    let (remote, remote_obs) = measure("remote", Placement::Remote, 62);

    let mut table = Table::new(
        format!("invocation cost by placement — {OPS} increments, identical client code"),
        &["placement", "us/op", "total msgs (incl. binding)"],
    );
    table.add_row(vec![
        "same context (procedure call)".into(),
        format!("{:.2}", local.per_op_us),
        local.msgs.to_string(),
    ]);
    table.add_row(vec![
        "same node (IPC)".into(),
        format!("{:.2}", node.per_op_us),
        node.msgs.to_string(),
    ]);
    table.add_row(vec![
        "remote node (network)".into(),
        format!("{:.2}", remote.per_op_us),
        remote.msgs.to_string(),
    ]);

    let checks = vec![
        check(
            "same-context calls cost zero simulated time and zero messages",
            local.per_op_us == 0.0 && local.msgs == 0,
            format!("{:.2}us/op, {} msgs", local.per_op_us, local.msgs),
        ),
        check(
            "same-node calls pay only IPC (~20us RTT)",
            node.per_op_us < 25.0 && node.per_op_us > 15.0,
            format!("{:.2}us/op", node.per_op_us),
        ),
        check(
            "remote calls pay the network RTT (~1000us)",
            remote.per_op_us > 900.0,
            format!("{:.2}us/op", remote.per_op_us),
        ),
        check(
            "placement spread spans >=40x between IPC and network",
            remote.per_op_us / node.per_op_us >= 40.0,
            format!("ratio {:.0}x", remote.per_op_us / node.per_op_us),
        ),
    ];

    ExperimentOutput {
        id: "E5",
        title: "Same-context fast path: procedure call vs IPC vs network",
        tables: vec![table],
        checks,
        reports: vec![local_obs, node_obs, remote_obs],
        traces: vec![],
    }
}
