//! Runs experiment e7 standalone.
fn main() {
    let ok = bench::experiments::e7_loss::run().print();
    std::process::exit(if ok { 0 } else { 1 });
}
