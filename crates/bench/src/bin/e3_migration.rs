//! Runs experiment e3 standalone.
fn main() {
    let ok = bench::experiments::e3_migration::run().print();
    std::process::exit(if ok { 0 } else { 1 });
}
