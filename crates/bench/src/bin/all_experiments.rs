//! Runs the full experiment suite (E1–E7, E9–E12) and exits nonzero if
//! any shape check fails. E8 (real-time overheads) runs under Criterion.
fn main() {
    let ok = bench::experiments::run_all();
    std::process::exit(if ok { 0 } else { 1 });
}
