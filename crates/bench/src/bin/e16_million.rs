//! Runs experiment e16 standalone.
fn main() {
    let ok = bench::experiments::e16_million::run().print();
    std::process::exit(if ok { 0 } else { 1 });
}
