//! Runs experiment E12 standalone.
fn main() {
    let ok = bench::experiments::e12_dsm::run().print();
    std::process::exit(if ok { 0 } else { 1 });
}
