//! Runs experiment e4 standalone.
fn main() {
    let ok = bench::experiments::e4_replication::run().print();
    std::process::exit(if ok { 0 } else { 1 });
}
