//! Runs experiment e14 standalone.
fn main() {
    let ok = bench::experiments::e14_hotpath::run().print();
    std::process::exit(if ok { 0 } else { 1 });
}
