//! Runs experiment e19 standalone. Set `PROXIDE_E19_SMOKE=1` for the
//! fast CI configuration.
fn main() {
    let ok = bench::experiments::e19_bulkplane::run().print();
    std::process::exit(if ok { 0 } else { 1 });
}
