//! Runs experiment e5 standalone.
fn main() {
    let ok = bench::experiments::e5_local_fastpath::run().print();
    std::process::exit(if ok { 0 } else { 1 });
}
