//! Runs experiment e20 standalone. Set `PROXIDE_E20_SMOKE=1` for the
//! fast CI configuration.
fn main() {
    let ok = bench::experiments::e20_profiler::run().print();
    std::process::exit(if ok { 0 } else { 1 });
}
