//! perfgate — CLI for the perf-regression gate.
//!
//! ```text
//! perfgate [--tolerance PCT] [--warn-only] <current.json> <baseline.json>
//! ```
//!
//! Diffs a freshly produced `BENCH_*.json` artifact against a committed
//! baseline and prints a per-metric verdict table.
//!
//! Exit codes:
//! * `0` — comparable and within tolerance (or `--warn-only`),
//! * `1` — at least one metric regressed beyond tolerance,
//! * `2` — artifacts are malformed or incomparable (different
//!   experiment/mode/config), or a file could not be read.
//!
//! With `--warn-only` every outcome exits 0: regressions and
//! incomparable pairs are reported but do not fail the build. `ci.sh`
//! uses this for the smoke-mode artifact (whose config legitimately
//! differs from the committed full-mode baseline) while keeping the
//! strict gate on the baseline itself.

use bench::perfgate::{compare, GateConfig, GateError};

fn usage() -> ! {
    eprintln!("usage: perfgate [--tolerance PCT] [--warn-only] <current.json> <baseline.json>");
    std::process::exit(2);
}

fn main() {
    let mut tolerance = None;
    let mut warn_only = false;
    let mut files = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--warn-only" => warn_only = true,
            "--tolerance" => {
                let pct: f64 = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage());
                tolerance = Some(pct / 100.0);
            }
            "--help" | "-h" => usage(),
            _ => files.push(arg),
        }
    }
    let [current_path, baseline_path] = files.as_slice() else {
        usage()
    };

    let read = |path: &str| match std::fs::read_to_string(path) {
        Ok(text) => text,
        Err(e) => {
            eprintln!("perfgate: cannot read {path}: {e}");
            std::process::exit(if warn_only { 0 } else { 2 });
        }
    };
    let current = read(current_path);
    let baseline = read(baseline_path);

    let mut cfg = GateConfig::default();
    if let Some(t) = tolerance {
        cfg.tolerance = t;
    }
    match compare(&baseline, &current, &cfg) {
        Ok(outcome) => {
            print!("{}", outcome.render());
            if outcome.regressed() {
                if warn_only {
                    println!("perfgate: regression beyond tolerance (warn-only, not failing)");
                } else {
                    println!("perfgate: FAIL — regression beyond tolerance");
                    std::process::exit(1);
                }
            } else {
                println!(
                    "perfgate: ok ({}% tolerance)",
                    (cfg.tolerance * 100.0).round()
                );
            }
        }
        Err(e @ GateError::Incomparable(_)) if warn_only => {
            println!("perfgate: {e} (warn-only, skipping comparison)");
        }
        Err(e) => {
            eprintln!("perfgate: {e}");
            std::process::exit(if warn_only { 0 } else { 2 });
        }
    }
}
