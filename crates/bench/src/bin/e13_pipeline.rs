//! Runs experiment e13 standalone.
fn main() {
    let ok = bench::experiments::e13_pipeline::run().print();
    std::process::exit(if ok { 0 } else { 1 });
}
