//! Runs experiment e15 standalone.
fn main() {
    let ok = bench::experiments::e15_flight::run().print();
    std::process::exit(if ok { 0 } else { 1 });
}
