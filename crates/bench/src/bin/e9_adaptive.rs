//! Runs experiment e9 standalone.
fn main() {
    let ok = bench::experiments::e9_adaptive::run().print();
    std::process::exit(if ok { 0 } else { 1 });
}
