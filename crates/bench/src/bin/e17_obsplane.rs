//! Standalone runner for E17 (million-span observability plane).
//!
//! `PROXIDE_E17_SMOKE=1` for the fast CI configuration.

fn main() {
    let ok = bench::experiments::e17_obsplane::run().print();
    std::process::exit(if ok { 0 } else { 1 });
}
