//! `tracectl` — run, export, validate, and analyze causal traces.
//!
//! The trace pipeline's command-line face. `run` drives a chaos
//! scenario (lossy network plus a partition window) through the full
//! proxy stack, exports the merged span + network-event trace in both
//! JSONL and Chrome Trace Format, and prints the critical-path
//! analysis. `analyze` and `check` work offline on exported files, and
//! `smoke` is the self-checking variant CI runs: it fails the process
//! unless the trace round-trips, the Chrome export validates, at least
//! one complete critical path reconstructs with components summing to
//! the span's measured duration within 1%, and the causality checker
//! reports no violations.
//!
//! ```text
//! tracectl run [--loss P] [--dup P] [--seed N] [--rounds N] [--clients N]
//!              [--top K] [--sample N] [--out DIR]
//! tracectl analyze <trace.jsonl> [--top K]
//! tracectl check <artifact>     # Chrome trace, run report, timeseries CSV, or folded flamegraph
//! tracectl flame <report.json> [--out=FILE]
//! tracectl smoke
//! ```

use std::process::ExitCode;
use std::time::Duration;

use bench::Table;
use naming::spawn_name_server;
use proxy_core::{CachingParams, ClientRuntime, ProxySpec, ServiceBuilder, Session};
use services::kv::{KvClient, KvStore};
use simnet::{NetworkConfig, NodeId, PortId, Simulation};

/// Components must sum to the measured span duration within this
/// fraction (the acceptance bar for the reconstruction).
const SUM_TOLERANCE: f64 = 0.01;

#[derive(Debug, Clone)]
struct RunOpts {
    loss: f64,
    dup: f64,
    seed: u64,
    rounds: u64,
    clients: u32,
    top: usize,
    sample: u64,
    out: Option<String>,
}

impl Default for RunOpts {
    fn default() -> RunOpts {
        RunOpts {
            loss: 0.25,
            dup: 0.20,
            seed: 7,
            rounds: 40,
            clients: 2,
            top: 5,
            sample: 1,
            out: None,
        }
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cmd = args.first().map(String::as_str);
    match cmd {
        Some("run") => match parse_run_opts(&args[1..]) {
            Ok(opts) => cmd_run(&opts, false),
            Err(e) => usage_error(&e),
        },
        Some("analyze") => {
            let (files, flags): (Vec<&String>, Vec<&String>) =
                args[1..].iter().partition(|a| !a.starts_with("--"));
            let top = match parse_top(&flags) {
                Ok(t) => t,
                Err(e) => return usage_error(&e),
            };
            match files.as_slice() {
                [path] => cmd_analyze(path, top),
                _ => usage_error("analyze takes exactly one <trace.jsonl> path"),
            }
        }
        Some("check") => match args[1..] {
            [ref path] => cmd_check(path),
            _ => usage_error("check takes exactly one artifact path"),
        },
        Some("flame") => {
            let (files, flags): (Vec<&String>, Vec<&String>) =
                args[1..].iter().partition(|a| !a.starts_with("--"));
            let mut out = None;
            for f in &flags {
                match f.strip_prefix("--out=") {
                    Some(v) => out = Some(v.to_string()),
                    None => return usage_error(&format!("flame: unknown flag {f}")),
                }
            }
            match files.as_slice() {
                [path] => cmd_flame(path, out.as_deref()),
                _ => usage_error("flame takes exactly one <report.json> path"),
            }
        }
        Some("smoke") => cmd_run(&RunOpts::default(), true),
        _ => {
            eprintln!(
                "usage: tracectl <run|analyze|check|flame|smoke> [options]\n\
                 \n\
                 run     [--loss P] [--dup P] [--seed N] [--rounds N] [--clients N]\n\
                 \x20       [--top K] [--sample N] [--out DIR]   drive a chaos run, export + analyze\n\
                 analyze <trace.jsonl> [--top K]                analyze an exported trace\n\
                 check   <artifact>                             validate an exported artifact\n\
                 \x20                                           (Chrome trace, run report, timeseries CSV,\n\
                 \x20                                           or folded flamegraph)\n\
                 flame   <report.json> [--out=FILE]             export a report's profile section as a\n\
                 \x20                                           collapsed flamegraph\n\
                 smoke                                          self-checking run for CI"
            );
            ExitCode::from(2)
        }
    }
}

fn usage_error(msg: &str) -> ExitCode {
    eprintln!("tracectl: {msg}");
    ExitCode::from(2)
}

fn parse_top(flags: &[&String]) -> Result<usize, String> {
    let mut top = 5usize;
    for f in flags {
        match f.split_once('=') {
            Some(("--top", v)) => top = v.parse().map_err(|_| format!("bad --top value {v}"))?,
            _ => return Err(format!("unknown flag {f} (use --top=K)")),
        }
    }
    Ok(top)
}

fn parse_run_opts(args: &[String]) -> Result<RunOpts, String> {
    let mut o = RunOpts::default();
    for a in args {
        let (k, v) = a
            .split_once('=')
            .ok_or_else(|| format!("expected --flag=value, got {a}"))?;
        fn num<T: std::str::FromStr>(k: &str, v: &str) -> Result<T, String> {
            v.parse().map_err(|_| format!("bad value for {k}: {v}"))
        }
        match k {
            "--loss" => o.loss = num(k, v)?,
            "--dup" => o.dup = num(k, v)?,
            "--seed" => o.seed = num(k, v)?,
            "--rounds" => o.rounds = num(k, v)?,
            "--clients" => o.clients = num(k, v)?,
            "--top" => o.top = num(k, v)?,
            "--sample" => o.sample = num(k, v)?,
            "--out" => o.out = Some(v.to_owned()),
            _ => return Err(format!("unknown flag {k}")),
        }
    }
    if !(0.0..1.0).contains(&o.loss) || !(0.0..1.0).contains(&o.dup) {
        return Err("--loss and --dup must be in [0, 1)".into());
    }
    Ok(o)
}

/// The chaos scenario: a kv service behind caching proxies, several
/// clients doing read-heavy rounds, a lossy + duplicating network, and
/// a partition window that cuts every client off mid-run.
fn chaos_run(opts: &RunOpts) -> (Simulation, obs::CausalTrace) {
    let cfg = NetworkConfig::lan()
        .with_loss(opts.loss)
        .with_duplicate(opts.dup);
    let mut sim = Simulation::new(cfg, opts.seed);
    sim.enable_trace(1 << 18);
    let ns = spawn_name_server(&sim, NodeId(0));
    ServiceBuilder::new("kv")
        .spec(ProxySpec::Caching(CachingParams::default()))
        .object(|| Box::new(KvStore::new()))
        .spawn(&sim, NodeId(1), ns);

    let rounds = opts.rounds;
    for c in 0..opts.clients {
        let node = NodeId(2 + c);
        sim.spawn(format!("client-{c}"), node, move |ctx| {
            let mut rt = ClientRuntime::new(ns);
            let mut s = Session::new(&mut rt, ctx);
            let kv = match KvClient::bind(&mut s, "kv") {
                Ok(kv) => kv,
                Err(_) => return,
            };
            for round in 0..rounds {
                // Write occasionally, read mostly — cache hits, misses,
                // invalidations, and (under loss) retransmissions all
                // show up on the trace.
                if round % 5 == c as u64 % 5 {
                    let _ = kv.put(&mut s, &format!("k{}", round % 3), &format!("v{round}"));
                }
                let _ = kv.get(&mut s, &format!("k{}", round % 3));
                if s.ctx().sleep(Duration::from_millis(1)).is_err() {
                    return;
                }
            }
        });
    }

    // The saboteur: a partition window cutting every client off from
    // the server mid-run, forcing timeouts and retransmit waits.
    let clients = opts.clients;
    sim.spawn("saboteur", NodeId(99), move |ctx| {
        if ctx.sleep(Duration::from_millis(10)).is_err() {
            return;
        }
        for c in 0..clients {
            ctx.net().partition(NodeId(2 + c), NodeId(1));
        }
        if ctx.sleep(Duration::from_millis(8)).is_err() {
            return;
        }
        for c in 0..clients {
            ctx.net().heal(NodeId(2 + c), NodeId(1));
        }
    });

    sim.run();
    let trace = if opts.sample > 1 {
        sim.causal_trace_with(obs::TraceSink::new().sample_every(opts.sample))
    } else {
        sim.causal_trace()
    };
    (sim, trace)
}

fn cmd_run(opts: &RunOpts, smoke: bool) -> ExitCode {
    let (sim, trace) = chaos_run(opts);
    println!(
        "chaos run: loss={:.0}% dup={:.0}% seed={} rounds={} clients={} (partition window 10-18ms)",
        opts.loss * 100.0,
        opts.dup * 100.0,
        opts.seed,
        opts.rounds,
        opts.clients
    );

    // Export both formats.
    let dir = opts
        .out
        .as_ref()
        .map(std::path::PathBuf::from)
        .unwrap_or_else(bench::trace_dir);
    if let Err(e) = std::fs::create_dir_all(&dir) {
        eprintln!("tracectl: cannot create {}: {e}", dir.display());
        return ExitCode::FAILURE;
    }
    let jsonl_path = dir.join("tracectl.trace.jsonl");
    let chrome_path = dir.join("tracectl.chrome.json");
    let jsonl = obs::to_jsonl(&trace);
    let chrome = obs::to_chrome_json(&trace);
    if let Err(e) =
        std::fs::write(&jsonl_path, &jsonl).and_then(|()| std::fs::write(&chrome_path, &chrome))
    {
        eprintln!("tracectl: export failed: {e}");
        return ExitCode::FAILURE;
    }
    println!(
        "exported {} and {}",
        jsonl_path.display(),
        chrome_path.display()
    );

    let mut failures: Vec<String> = Vec::new();

    // The Chrome export must validate.
    match obs::validate_chrome(&chrome) {
        Ok(s) => println!(
            "chrome export: {} events ({} spans, {} instants, {} flow arrows) on {} tracks — valid",
            s.events, s.spans, s.instants, s.flows, s.tracks
        ),
        Err(e) => failures.push(format!("chrome export invalid: {e}")),
    }

    // The JSONL export must round-trip.
    match obs::from_jsonl(&jsonl) {
        Ok(re) if re.events.len() == trace.events.len() => {}
        Ok(re) => failures.push(format!(
            "jsonl round-trip lost events: {} exported, {} re-imported",
            trace.events.len(),
            re.events.len()
        )),
        Err(e) => failures.push(format!("jsonl re-import failed: {e}")),
    }

    let complete = print_analysis(&trace, opts.top, &mut failures);

    if smoke {
        if complete == 0 {
            failures.push("no complete critical path reconstructed".into());
        }
        let violations = sim.obs().verify_causality();
        if violations.is_empty() {
            println!("causality: no violations");
        } else {
            for v in &violations {
                failures.push(format!("causality violation: {v}"));
            }
        }
        smoke_pipelined(&mut failures);
    }

    finish(&failures)
}

/// Smoke phase 2: a pipelined [`rpc::Channel`] run (depth 8, unbatched
/// so every datagram carries its call's span) over a lossy network.
/// Eight calls in flight complete out of order, yet every per-call
/// invoke span must still reconstruct a complete critical path whose
/// components tile its duration, round-trip through JSONL, and leave
/// the span graph causally well-formed.
fn smoke_pipelined(failures: &mut Vec<String>) {
    let cfg = NetworkConfig::lan().with_loss(0.15).with_duplicate(0.10);
    let mut sim = Simulation::new(cfg, 23);
    sim.enable_trace(1 << 16);
    let server = sim.spawn_at("pipesvc", NodeId(1), PortId(5), |ctx| {
        let mut srv = rpc::RpcServer::new();
        srv.serve(ctx, |_ctx, req| Ok(req.args.clone()), |_, _| {});
    });
    sim.spawn("pipeliner", NodeId(2), move |ctx| {
        let cfg = rpc::ChannelConfig::with_depth(8)
            .with_policy(rpc::RetryPolicy::exponential(Duration::from_millis(4), 8));
        let mut ch = rpc::Channel::new("pipesvc", server, cfg);
        let handles: Vec<_> = (0..48u64)
            .map(|i| ch.begin_call(ctx, "echo", wire::Value::U64(i)))
            .collect();
        for h in handles {
            let _ = ch.wait(ctx, h);
        }
    });
    sim.run();

    let trace = sim.causal_trace();
    let jsonl = obs::to_jsonl(&trace);
    match obs::from_jsonl(&jsonl) {
        Ok(re) if re.events.len() == trace.events.len() => {}
        Ok(re) => failures.push(format!(
            "pipelined: jsonl round-trip lost events: {} exported, {} re-imported",
            trace.events.len(),
            re.events.len()
        )),
        Err(e) => failures.push(format!("pipelined: jsonl re-import failed: {e}")),
    }
    if let Err(e) = obs::validate_chrome(&obs::to_chrome_json(&trace)) {
        failures.push(format!("pipelined: chrome export invalid: {e}"));
    }

    let paths = obs::critical_paths(&trace);
    let complete = paths.iter().filter(|p| p.ok.is_some()).count();
    println!(
        "pipelined smoke: {} requests reconstructed ({} complete) from depth-8 traffic",
        paths.len(),
        complete
    );
    if complete == 0 {
        failures.push("pipelined: no complete critical path reconstructed".into());
    }
    for p in paths.iter().filter(|p| p.ok.is_some()) {
        let total = p.total_ns as f64;
        let err = (p.components_ns() as f64 - total).abs();
        if total > 0.0 && err / total > SUM_TOLERANCE {
            failures.push(format!(
                "pipelined {} {}/{}: components {}us vs span {}us (off by {:.1}%)",
                p.span,
                p.service,
                p.op,
                us(p.components_ns()),
                us(p.total_ns),
                100.0 * err / total
            ));
        }
    }
    let violations = sim.obs().verify_causality();
    if violations.is_empty() {
        println!("pipelined causality: no violations");
    } else {
        for v in &violations {
            failures.push(format!("pipelined causality violation: {v}"));
        }
    }
}

fn cmd_analyze(path: &str, top: usize) -> ExitCode {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("tracectl: cannot read {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let trace = match obs::from_jsonl(&text) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("tracectl: {path} is not a valid trace: {e}");
            return ExitCode::FAILURE;
        }
    };
    let mut failures = Vec::new();
    print_analysis(&trace, top, &mut failures);
    finish(&failures)
}

/// Validates an exported artifact, dispatching on its shape: a
/// flight-recorder CSV (leading `# width_ns=` comment or a `.csv`
/// path), a Chrome trace (JSON with `traceEvents`), or a full run
/// report (JSON with `end_time_ns`, including the timeseries and
/// exemplar sections).
fn cmd_check(path: &str) -> ExitCode {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("tracectl: cannot read {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    if path.ends_with(".csv") || text.starts_with("# width_ns=") {
        return match obs::validate_timeseries_csv(&text) {
            Ok(s) => {
                println!(
                    "{path}: valid timeseries CSV — {} rows over {} windows, {} series ({} counter, {} gauge, {} hist rows)",
                    s.rows, s.windows, s.series, s.counters, s.gauges, s.hists
                );
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("{path}: INVALID timeseries CSV — {e}");
                ExitCode::FAILURE
            }
        };
    }
    if path.ends_with(".folded") {
        return match obs::validate_folded(&text) {
            Ok(s) => {
                println!(
                    "{path}: valid folded flamegraph — {} stacks ({} roots, max depth {}), total value {}, canonical",
                    s.lines, s.roots, s.max_depth, s.total_value
                );
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("{path}: INVALID folded flamegraph — {e}");
                ExitCode::FAILURE
            }
        };
    }
    if path.ends_with(".jsonl") || text.lines().next().is_some_and(|l| l.contains("\"kind\"")) {
        return match obs::from_jsonl(&text) {
            Ok(trace) => {
                // The exporter is canonical: a parse + re-export must
                // reproduce the input byte for byte. This is what lets
                // `ci.sh` compare thread-sweep legs with a plain `cmp`.
                if obs::to_jsonl(&trace) != text {
                    eprintln!("{path}: INVALID trace JSONL — re-export is not byte-identical");
                    return ExitCode::FAILURE;
                }
                println!(
                    "{path}: valid trace JSONL — {} events ({} spans, {} net, {} evicted), canonical round-trip",
                    trace.events.len(),
                    trace.spans().count(),
                    trace.net_events().count(),
                    trace.evicted
                );
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("{path}: INVALID trace JSONL — {e}");
                ExitCode::FAILURE
            }
        };
    }
    if text.contains("\"traceEvents\"") {
        return match obs::validate_chrome(&text) {
            Ok(s) => {
                println!(
                    "{path}: valid Chrome trace — {} events ({} spans, {} instants, {} flow arrows) on {} tracks",
                    s.events, s.spans, s.instants, s.flows, s.tracks
                );
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("{path}: INVALID Chrome trace — {e}");
                ExitCode::FAILURE
            }
        };
    }
    match obs::validate_report(&text) {
        Ok(s) => {
            println!(
                "{path}: valid run report — {} timeseries windows, {} exemplars ({} with causal breakdown), {} spans retired / {} resident, {} profile frames ({} evicted)",
                s.windows, s.exemplars, s.with_breakdown, s.spans_retired, s.spans_resident,
                s.prof_frames, s.prof_evicted
            );
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("{path}: INVALID run report — {e}");
            ExitCode::FAILURE
        }
    }
}

/// Renders the `profile` section of a run-report JSON in the standard
/// collapsed-flamegraph format (`frame;frame value` per line, ready for
/// any stock flamegraph renderer), validating the output before writing
/// it to `--out=FILE` or stdout.
fn cmd_flame(path: &str, out: Option<&str>) -> ExitCode {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("tracectl: cannot read {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let doc = match obs::json::parse(&text) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("{path}: not valid JSON — {e}");
            return ExitCode::FAILURE;
        }
    };
    let Some(frames) = doc
        .get("profile")
        .and_then(|p| p.get("frames"))
        .and_then(|f| f.as_obj())
    else {
        eprintln!("{path}: no profile section (was the profiler enabled for this run?)");
        return ExitCode::FAILURE;
    };
    let mut report = obs::ProfileReport::default();
    for (frame, st) in frames {
        let (Some(calls), Some(wall_ns)) = (st.u64_field("calls"), st.u64_field("wall_ns")) else {
            eprintln!("{path}: profile frame {frame:?} lacks calls/wall_ns");
            return ExitCode::FAILURE;
        };
        report
            .frames
            .insert(frame.clone(), obs::FrameStat { calls, wall_ns });
    }
    if report.frames.is_empty() {
        eprintln!("{path}: profile section has no frames");
        return ExitCode::FAILURE;
    }
    let folded = obs::profile_to_folded(&report);
    if let Err(e) = obs::validate_folded(&folded) {
        eprintln!("{path}: exporter produced an invalid folded artifact — {e}");
        return ExitCode::FAILURE;
    }
    match out {
        Some(file) => {
            if let Err(e) = std::fs::write(file, &folded) {
                eprintln!("tracectl: cannot write {file}: {e}");
                return ExitCode::FAILURE;
            }
            println!("{path}: wrote {} stacks to {file}", report.frames.len());
        }
        None => print!("{folded}"),
    }
    ExitCode::SUCCESS
}

/// Prints the trace summary, top-k critical paths (with the slowest
/// request's timeline), and per-link attribution. Pushes a failure for
/// every complete path whose components don't sum to its measured
/// duration within [`SUM_TOLERANCE`]. Returns how many complete paths
/// reconstructed.
fn print_analysis(trace: &obs::CausalTrace, top: usize, failures: &mut Vec<String>) -> usize {
    println!(
        "trace: {} events ({} spans, {} net), evicted {}, sampled out {} spans / {} events{}",
        trace.events.len(),
        trace.spans().count(),
        trace.net_events().count(),
        trace.evicted,
        trace.sampled_out_spans,
        trace.sampled_out_events,
        if trace.is_complete() {
            " — complete"
        } else {
            " — INCOMPLETE"
        },
    );

    let paths = obs::critical_paths(trace);
    let complete = paths.iter().filter(|p| p.ok.is_some()).count();
    println!(
        "critical paths: {} requests reconstructed ({} complete)",
        paths.len(),
        complete
    );

    let mut t = Table::new(
        format!("top-{top} slowest requests (critical-path components, us)"),
        &[
            "span",
            "service",
            "op",
            "ok",
            "total",
            "queue",
            "wire",
            "server",
            "retx wait",
            "retx",
            "drops",
            "dominant",
        ],
    );
    for p in paths.iter().take(top) {
        t.add_row(vec![
            p.span.to_string(),
            p.service.clone(),
            p.op.clone(),
            match p.ok {
                Some(true) => "yes".into(),
                Some(false) => "no".into(),
                None => "open".into(),
            },
            us(p.total_ns),
            us(p.queue_ns),
            us(p.wire_ns),
            us(p.server_ns),
            us(p.retransmit_ns),
            p.retransmissions.to_string(),
            p.drops.to_string(),
            p.dominant().into(),
        ]);
    }
    print!("{}", t.render());

    // The acceptance bar: components tile the measured span duration.
    for p in paths.iter().filter(|p| p.ok.is_some()) {
        let total = p.total_ns as f64;
        let err = (p.components_ns() as f64 - total).abs();
        if total > 0.0 && err / total > SUM_TOLERANCE {
            failures.push(format!(
                "{} {}/{}: components {}us vs span {}us (off by {:.1}%)",
                p.span,
                p.service,
                p.op,
                us(p.components_ns()),
                us(p.total_ns),
                100.0 * err / total
            ));
        }
    }
    if complete > 0 && failures.is_empty() {
        println!(
            "  component sums match span durations within {:.0}%\n",
            SUM_TOLERANCE * 100.0
        );
    }

    if let Some(worst) = paths.first() {
        println!(
            "  slowest request {} ({}/{}) timeline:",
            worst.span, worst.service, worst.op
        );
        for e in &worst.timeline {
            println!(
                "    +{:>9}us {} {}",
                (e.at_ns.saturating_sub(worst.start_ns)) / 1_000,
                e.span,
                e.label
            );
        }
    }

    let links = obs::link_attribution(trace);
    if !links.is_empty() {
        let mut lt = Table::new(
            "per-link attribution".to_string(),
            &[
                "link",
                "sent",
                "delivered",
                "dropped",
                "blackholed",
                "retx",
                "loss %",
            ],
        );
        for ((a, b), s) in &links {
            lt.add_row(vec![
                format!("n{a}->n{b}"),
                s.sent.to_string(),
                s.delivered.to_string(),
                s.dropped.to_string(),
                s.blackholed.to_string(),
                s.retransmits.to_string(),
                format!("{:.1}", s.loss_rate() * 100.0),
            ]);
        }
        print!("{}", lt.render());
    }
    println!();
    complete
}

fn us(ns: u64) -> String {
    format!("{:.1}", ns as f64 / 1_000.0)
}

fn finish(failures: &[String]) -> ExitCode {
    if failures.is_empty() {
        println!("tracectl: OK");
        ExitCode::SUCCESS
    } else {
        for f in failures {
            eprintln!("tracectl: FAIL — {f}");
        }
        ExitCode::FAILURE
    }
}
