//! Runs experiment e1 standalone.
fn main() {
    let ok = bench::experiments::e1_access_methods::run().print();
    std::process::exit(if ok { 0 } else { 1 });
}
