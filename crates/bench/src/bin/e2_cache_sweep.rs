//! Runs experiment e2 standalone.
fn main() {
    let ok = bench::experiments::e2_cache_sweep::run().print();
    std::process::exit(if ok { 0 } else { 1 });
}
