//! Runs experiment E11 standalone.
fn main() {
    let ok = bench::experiments::e11_recovery::run().print();
    std::process::exit(if ok { 0 } else { 1 });
}
