//! Runs experiment e18 standalone. Set `PROXIDE_E18_SMOKE=1` for the
//! fast CI configuration.
fn main() {
    let ok = bench::experiments::e18_multicore::run().print();
    std::process::exit(if ok { 0 } else { 1 });
}
