//! Runs experiment e6 standalone.
fn main() {
    let ok = bench::experiments::e6_binding_cost::run().print();
    std::process::exit(if ok { 0 } else { 1 });
}
