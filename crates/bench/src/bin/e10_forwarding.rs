//! Runs experiment e10 standalone.
fn main() {
    let ok = bench::experiments::e10_forwarding::run().print();
    std::process::exit(if ok { 0 } else { 1 });
}
