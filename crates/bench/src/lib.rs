//! # bench — the experiment harness
//!
//! One module per experiment in `DESIGN.md` §3 (E1–E12). Each experiment
//! builds a deterministic simulation, runs its workload sweep, prints the
//! table(s) the paper's evaluation would contain, and then *checks its
//! expected qualitative shape* (who wins, where the crossover falls) so a
//! regression in any layer turns the run red.
//!
//! Run one experiment: `cargo run -p bench --bin e2_cache_sweep`
//! Run everything:     `cargo run -p bench --bin all_experiments`
//!
//! Simulated-time results (latency, message counts) come from these
//! binaries; real-CPU-time results (marshalling throughput, dispatch
//! overhead — experiment E8) live in the Criterion bench
//! `benches/overhead.rs`.

pub mod experiments;
pub mod perfgate;

use std::fmt::Write as _;
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// A result table, printed with aligned columns.
#[derive(Debug, Clone)]
pub struct Table {
    /// Table caption.
    pub title: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Row cells (stringified by the experiment).
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates an empty table.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Table {
        Table {
            title: title.into(),
            headers: headers.iter().map(|h| h.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    pub fn add_row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len(), "row arity mismatch");
        self.rows.push(cells);
    }

    /// Renders with aligned columns.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "\n  {}", self.title);
        let line = |out: &mut String, cells: &[String]| {
            let mut s = String::from("  | ");
            for (i, c) in cells.iter().enumerate() {
                let _ = write!(s, "{:>w$} | ", c, w = widths[i]);
            }
            let _ = writeln!(out, "{}", s.trim_end());
        };
        line(&mut out, &self.headers);
        let sep: Vec<String> = widths.iter().map(|w| "-".repeat(*w)).collect();
        line(&mut out, &sep);
        for row in &self.rows {
            line(&mut out, row);
        }
        out
    }
}

/// A labelled unified observability report, serialized as JSON.
///
/// Captured from a representative run of each experiment so the whole
/// suite emits machine-readable `obs::RunReport` records alongside its
/// human-readable tables.
#[derive(Debug, Clone)]
pub struct ObsReport {
    /// Which run/configuration the report covers.
    pub label: String,
    /// The `obs::RunReport` JSON from [`simnet::Simulation::obs_report`].
    pub json: String,
}

/// Captures the unified run report of a finished simulation.
pub fn obs_report(label: impl Into<String>, sim: &simnet::Simulation) -> ObsReport {
    ObsReport {
        label: label.into(),
        json: sim.obs_report().to_json(),
    }
}

/// A labelled causal trace captured from a representative run.
///
/// `ExperimentOutput::print` exports each artifact to the trace
/// directory (`PROXIDE_TRACE_DIR`, default `target/traces`) in both the
/// compact JSONL format and the Chrome Trace Format, and validates the
/// Chrome output before writing it.
#[derive(Debug, Clone)]
pub struct TraceArtifact {
    /// Which run/configuration the trace covers.
    pub label: String,
    /// The merged span + network-event timeline.
    pub trace: obs::CausalTrace,
}

/// Captures the causal trace of a finished simulation. The simulation
/// must have had tracing enabled ([`simnet::Simulation::enable_trace`])
/// for network events to appear; spans are always present.
pub fn capture_trace(label: impl Into<String>, sim: &simnet::Simulation) -> TraceArtifact {
    TraceArtifact {
        label: label.into(),
        trace: sim.causal_trace(),
    }
}

/// Where exported traces land: `$PROXIDE_TRACE_DIR` or `target/traces`.
pub fn trace_dir() -> std::path::PathBuf {
    std::env::var_os("PROXIDE_TRACE_DIR")
        .map(std::path::PathBuf::from)
        .unwrap_or_else(|| std::path::PathBuf::from("target/traces"))
}

/// Lower-cases a label and replaces anything outside `[a-z0-9._-]` with
/// `-` so it is safe inside a file name.
fn sanitize_label(label: &str) -> String {
    label
        .chars()
        .map(|c| {
            let c = c.to_ascii_lowercase();
            if c.is_ascii_alphanumeric() || c == '.' || c == '_' || c == '-' {
                c
            } else {
                '-'
            }
        })
        .collect()
}

/// One asserted property of an experiment's shape.
#[derive(Debug, Clone)]
pub struct Check {
    /// What is being checked.
    pub name: String,
    /// Whether it held.
    pub pass: bool,
    /// Supporting numbers.
    pub detail: String,
}

/// One-line digest of a `RunReport` JSON blob for the experiment log:
/// the loss-shaped counters a reader would otherwise have to dig out of
/// the blob (proxy-discarded datagrams, trace-ring evictions) plus the
/// flight-recorder headlines (pinned exemplars, recorded windows) and
/// the obs-plane honesty counts (spans retired vs resident, time spent
/// inside the plane itself) and the profiler's (frames resident vs
/// evicted, fold overhead). `None` only when the blob does not parse.
fn obs_summary_line(json: &str) -> Option<String> {
    let doc = obs::json::parse(json).ok()?;
    let discarded: u64 = doc
        .get("proxies")
        .and_then(|p| p.as_obj())
        .map(|m| {
            m.values()
                .filter_map(|s| s.u64_field("datagrams_discarded"))
                .sum()
        })
        .unwrap_or(0);
    let trace_evicted = doc.u64_field("trace_evicted").unwrap_or(0);
    let exemplars = doc
        .get("exemplars")
        .and_then(|e| e.as_arr())
        .map_or(0, <[obs::json::Json]>::len);
    let windows = doc
        .get("timeseries")
        .and_then(|t| t.get("windows"))
        .and_then(|w| w.as_arr())
        .map_or(0, <[obs::json::Json]>::len);
    let procs_spawned = doc
        .get("net")
        .and_then(|n| n.u64_field("processes_spawned"))
        .unwrap_or(0);
    let procs_peak = doc
        .get("net")
        .and_then(|n| n.u64_field("processes_peak"))
        .unwrap_or(0);
    let inversions = doc
        .get("net")
        .and_then(|n| n.u64_field("sched_time_inversions"))
        .unwrap_or(0);
    let spans_retired = doc
        .get("obs")
        .and_then(|o| o.u64_field("spans_retired"))
        .unwrap_or(0);
    let spans_resident = doc
        .get("obs")
        .and_then(|o| o.u64_field("spans_resident"))
        .unwrap_or(0);
    let obs_self_us = doc
        .get("obs")
        .and_then(|o| o.u64_field("self_ns"))
        .unwrap_or(0)
        / 1_000;
    let prof = doc.get("profile");
    let prof_frames = prof
        .and_then(|p| p.u64_field("frames_resident"))
        .unwrap_or(0);
    let prof_evicted = prof
        .and_then(|p| p.u64_field("frames_evicted"))
        .unwrap_or(0);
    let prof_self_us = prof.and_then(|p| p.u64_field("self_ns")).unwrap_or(0) / 1_000;
    Some(format!(
        "datagrams_discarded={discarded} trace_evicted={trace_evicted} \
         exemplars={exemplars} ts_windows={windows} \
         procs_spawned={procs_spawned} procs_peak={procs_peak} \
         sched_time_inversions={inversions} \
         spans_retired={spans_retired} spans_resident={spans_resident} \
         obs_self_us={obs_self_us} \
         prof_frames={prof_frames} prof_evicted={prof_evicted} \
         prof_self_us={prof_self_us}"
    ))
}

/// Builds a check.
pub fn check(name: impl Into<String>, pass: bool, detail: impl Into<String>) -> Check {
    Check {
        name: name.into(),
        pass,
        detail: detail.into(),
    }
}

/// Everything an experiment produces.
#[derive(Debug, Clone)]
pub struct ExperimentOutput {
    /// Experiment id, e.g. "E2".
    pub id: &'static str,
    /// Human title.
    pub title: &'static str,
    /// Result tables.
    pub tables: Vec<Table>,
    /// Shape assertions.
    pub checks: Vec<Check>,
    /// Unified observability reports from representative runs.
    pub reports: Vec<ObsReport>,
    /// Causal traces from representative runs, exported on print.
    pub traces: Vec<TraceArtifact>,
}

impl ExperimentOutput {
    /// Prints tables and checks, exports trace artifacts; returns
    /// whether every check passed (a trace whose Chrome export fails
    /// validation counts as a failed check).
    pub fn print(&self) -> bool {
        println!("\n================================================================");
        println!("{} — {}", self.id, self.title);
        println!("================================================================");
        for t in &self.tables {
            print!("{}", t.render());
        }
        println!();
        let mut all = true;
        for c in &self.checks {
            let mark = if c.pass { "PASS" } else { "FAIL" };
            println!("  [{mark}] {} — {}", c.name, c.detail);
            all &= c.pass;
        }
        for r in &self.reports {
            println!("  obs-report[{}] {}", r.label, r.json);
            if let Some(line) = obs_summary_line(&r.json) {
                println!("  obs-summary[{}] {}", r.label, line);
            }
        }
        all &= self.export_traces();
        all
    }

    /// Writes every trace artifact as `<id>-<label>.trace.jsonl` plus
    /// `<id>-<label>.chrome.json` under [`trace_dir`]. Returns false if
    /// any Chrome export fails validation (IO trouble only warns).
    fn export_traces(&self) -> bool {
        let mut ok = true;
        if self.traces.is_empty() {
            return ok;
        }
        let dir = trace_dir();
        if let Err(e) = std::fs::create_dir_all(&dir) {
            println!("  trace[*] cannot create {}: {e}", dir.display());
            return ok;
        }
        for a in &self.traces {
            let stem = format!(
                "{}-{}",
                self.id.to_ascii_lowercase(),
                sanitize_label(&a.label)
            );
            let jsonl_path = dir.join(format!("{stem}.trace.jsonl"));
            let chrome_path = dir.join(format!("{stem}.chrome.json"));
            let chrome = obs::to_chrome_json(&a.trace);
            match obs::validate_chrome(&chrome) {
                Ok(summary) => {
                    if let Err(e) = std::fs::write(&jsonl_path, obs::to_jsonl(&a.trace)) {
                        println!("  trace[{}] write failed: {e}", a.label);
                        continue;
                    }
                    if let Err(e) = std::fs::write(&chrome_path, &chrome) {
                        println!("  trace[{}] write failed: {e}", a.label);
                        continue;
                    }
                    println!(
                        "  trace[{}] {} events ({} spans, {} net, {} evicted) -> {} (+ .chrome.json: {} tracks)",
                        a.label,
                        a.trace.events.len(),
                        a.trace.spans().count(),
                        a.trace.net_events().count(),
                        a.trace.evicted,
                        jsonl_path.display(),
                        summary.tracks,
                    );
                }
                Err(e) => {
                    println!("  [FAIL] trace[{}] Chrome export invalid — {e}", a.label);
                    ok = false;
                }
            }
        }
        ok
    }
}

/// Shared single-value cell used to smuggle a measurement out of a
/// simulated process.
pub type Slot<T> = Arc<Mutex<Option<T>>>;

/// A slot for smuggling one value out of a simulated process.
pub fn slot<T>() -> (Slot<T>, Slot<T>) {
    let a = Arc::new(Mutex::new(None));
    (Arc::clone(&a), a)
}

/// Reads a slot after the simulation finished.
///
/// # Panics
///
/// Panics if the process never filled it.
pub fn take<T>(s: Slot<T>) -> T {
    s.lock()
        .unwrap()
        .take()
        .expect("measurement never recorded")
}

/// Formats a duration as microseconds with 1 decimal.
pub fn us(d: Duration) -> String {
    format!("{:.1}", d.as_secs_f64() * 1e6)
}

/// Formats a mean per-op duration from a total and a count.
pub fn us_per_op(total: Duration, ops: u64) -> String {
    if ops == 0 {
        "-".into()
    } else {
        format!("{:.1}", total.as_secs_f64() * 1e6 / ops as f64)
    }
}

/// Mean microseconds per op as a number (for shape checks).
pub fn us_per_op_f(total: Duration, ops: u64) -> f64 {
    total.as_secs_f64() * 1e6 / ops.max(1) as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new("demo", &["name", "value"]);
        t.add_row(vec!["a".into(), "1".into()]);
        t.add_row(vec!["long-name".into(), "22".into()]);
        let r = t.render();
        assert!(r.contains("demo"));
        assert!(r.contains("long-name"));
        // Both data rows have the same width.
        let lines: Vec<&str> = r.lines().filter(|l| l.contains('|')).collect();
        assert!(lines.windows(2).all(|w| w[0].len() == w[1].len()));
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn row_arity_checked() {
        let mut t = Table::new("demo", &["a", "b"]);
        t.add_row(vec!["only-one".into()]);
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(us(Duration::from_micros(1500)), "1500.0");
        assert_eq!(us_per_op(Duration::from_millis(1), 10), "100.0");
        assert_eq!(us_per_op(Duration::ZERO, 0), "-");
    }

    #[test]
    fn slot_roundtrip() {
        let (w, r) = slot::<u32>();
        *w.lock().unwrap() = Some(7);
        assert_eq!(take(r), 7);
    }
}
