//! E8 — Real-CPU-time overheads (Criterion).
//!
//! Everything measured here is wall-clock cost on the host, not
//! simulated time: the marshalling path every call pays, the framing
//! checksum, and the cost of dispatching through the proxy abstraction
//! (dynamic dispatch + self-describing arguments) versus a plain method
//! call — the paper's "encapsulation must not tax invocation" claim at
//! the CPU level.

use std::time::{Duration, Instant};

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use proxy_core::{ClientRuntime, OpDesc};
use services::kv::KvStore;
use simnet::{NetworkConfig, NodeId, Simulation};
use wire::{crc32, crc32_bytewise, decode, decode_bytes, encode, frame, unframe, Encoder, Value};

fn kv_request(value_len: usize) -> Value {
    Value::record([
        ("op", Value::str("put")),
        ("key", Value::str("some/interesting/key")),
        ("value", Value::blob(vec![0xA5u8; value_len])),
    ])
}

fn bench_marshalling(c: &mut Criterion) {
    let mut group = c.benchmark_group("wire");
    for size in [64usize, 1024, 16 * 1024] {
        let v = kv_request(size);
        let encoded = encode(&v);
        group.throughput(Throughput::Bytes(encoded.len() as u64));
        group.bench_with_input(BenchmarkId::new("encode", size), &v, |b, v| {
            b.iter(|| encode(std::hint::black_box(v)))
        });
        group.bench_with_input(BenchmarkId::new("decode", size), &encoded, |b, e| {
            b.iter(|| decode(std::hint::black_box(e)).unwrap())
        });
        // Zero-copy decode: Str/Blob payloads alias the input frame
        // instead of being copied out — the new hot path.
        let shared = bytes::Bytes::copy_from_slice(&encoded);
        group.bench_with_input(BenchmarkId::new("decode_bytes", size), &shared, |b, s| {
            b.iter(|| decode_bytes(std::hint::black_box(s)).unwrap())
        });
        // Pooled encode: one scratch buffer reused across messages vs a
        // fresh allocation per `encode` call.
        group.bench_with_input(BenchmarkId::new("encode_pooled", size), &v, |b, v| {
            let mut enc = Encoder::with_capacity(encoded.len());
            b.iter(|| enc.encode(std::hint::black_box(v)))
        });
        group.bench_with_input(BenchmarkId::new("frame+crc", size), &v, |b, v| {
            b.iter(|| frame(std::hint::black_box(v)))
        });
        let framed = frame(&v);
        group.bench_with_input(BenchmarkId::new("unframe+verify", size), &framed, |b, f| {
            b.iter(|| unframe(std::hint::black_box(f)).unwrap())
        });
    }
    group.finish();
}

fn bench_crc(c: &mut Criterion) {
    let mut group = c.benchmark_group("crc32");
    for size in [1024usize, 64 * 1024] {
        let data = vec![0x5Au8; size];
        group.throughput(Throughput::Bytes(size as u64));
        group.bench_with_input(BenchmarkId::new("slice16", size), &data, |b, d| {
            b.iter(|| crc32(std::hint::black_box(d)))
        });
        // The byte-at-a-time oracle the slice-by-16 kernel is verified
        // against — kept here so the speedup stays measured.
        group.bench_with_input(BenchmarkId::new("bytewise", size), &data, |b, d| {
            b.iter(|| crc32_bytewise(std::hint::black_box(d)))
        });
    }
    group.finish();
}

fn bench_value_ops(c: &mut Criterion) {
    let mut group = c.benchmark_group("value");
    let v = kv_request(128);
    group.bench_function("record_get", |b| {
        b.iter(|| std::hint::black_box(&v).get_str("key").unwrap().len())
    });
    let op = OpDesc::write("put", "key");
    group.bench_function("op_tag", |b| b.iter(|| op.tag(std::hint::black_box(&v))));
    let spec = proxy_core::ProxySpec::Caching(proxy_core::CachingParams::default());
    group.bench_function("proxyspec_roundtrip", |b| {
        b.iter(|| {
            let enc = std::hint::black_box(&spec).to_value();
            proxy_core::ProxySpec::from_value(&enc).unwrap()
        })
    });
    group.finish();
}

/// Dispatch through the full proxy abstraction (trait object, runtime
/// routing, self-describing args) for a local object vs. what a plain
/// method call would do. Measured by running N in-context invocations
/// inside a simulation and dividing the wall time.
fn bench_dispatch(c: &mut Criterion) {
    let mut group = c.benchmark_group("dispatch");
    group.bench_function("local_proxy_invoke", |b| {
        b.iter_custom(|iters| {
            let mut sim = Simulation::new(NetworkConfig::lan(), 0);
            let ns = simnet::Endpoint::new(NodeId(0), simnet::PortId(1));
            let start = std::sync::Arc::new(std::sync::Mutex::new(Duration::ZERO));
            let s2 = std::sync::Arc::clone(&start);
            sim.spawn("host", NodeId(0), move |ctx| {
                let mut rt = ClientRuntime::new(ns);
                let kv = rt.host_local("kv", Box::new(KvStore::new()));
                let args = Value::record([("key", Value::str("k")), ("value", Value::str("v"))]);
                let t0 = Instant::now();
                for _ in 0..iters {
                    rt.invoke(ctx, kv, "put", args.clone()).unwrap();
                }
                *s2.lock().unwrap() = t0.elapsed();
            });
            sim.run();
            let elapsed = *start.lock().unwrap();
            elapsed
        })
    });
    group.bench_function("direct_btreemap_insert", |b| {
        let mut map = std::collections::BTreeMap::new();
        b.iter(|| {
            map.insert(
                std::hint::black_box("k".to_string()),
                std::hint::black_box("v".to_string()),
            )
        })
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .measurement_time(Duration::from_secs(2))
        .warm_up_time(Duration::from_millis(500))
        .sample_size(30);
    targets = bench_marshalling, bench_crc, bench_value_ops, bench_dispatch
}
criterion_main!(benches);
