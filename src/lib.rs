//! # proxide — the proxy principle, reproduced
//!
//! A production-quality Rust reproduction of Marc Shapiro's ICDCS 1986
//! paper *"Structure and Encapsulation in Distributed Systems: The Proxy
//! Principle"* — the origin of the stub/proxy pattern behind every
//! modern RPC system.
//!
//! The workspace is layered exactly as `DESIGN.md` lays out:
//!
//! * [`simnet`] — deterministic discrete-event network simulation (the
//!   testbed substitute),
//! * [`wire`] — the marshalling substrate,
//! * [`rpc`] — at-most-once request/response (the Birrell & Nelson
//!   baseline the paper generalizes),
//! * [`naming`] — the name service used by the binding protocol,
//! * [`proxy_core`] — **the contribution**: contexts, interfaces, the
//!   binding protocol and the proxy zoo,
//! * [`migration`] — cross-node relocation with forwarding chains,
//! * [`replication`] — primary/backup groups and the replica proxy,
//! * [`dsm`] — page-based distributed shared memory (the third access
//!   method in the era's comparison, built for experiment E12),
//! * [`services`] — realistic services built on the framework.
//!
//! This crate re-exports everything; depend on it and use the
//! [`prelude`]:
//!
//! ```
//! use proxide::prelude::*;
//!
//! let mut sim = Simulation::new(NetworkConfig::lan(), 7);
//! let ns = spawn_name_server(&sim, NodeId(0));
//! ServiceBuilder::new("kv")
//!     .spec(ProxySpec::Caching(CachingParams::default()))
//!     .object(|| Box::new(services::kv::KvStore::new()))
//!     .spawn(&sim, NodeId(1), ns);
//! sim.spawn("client", NodeId(2), move |ctx| {
//!     let mut rt = ClientRuntime::new(ns);
//!     let mut session = Session::new(&mut rt, ctx);
//!     let kv = services::kv::KvClient::bind(&mut session, "kv").unwrap();
//!     kv.put(&mut session, "color", "blue").unwrap();
//!     assert_eq!(kv.get(&mut session, "color").unwrap().as_deref(), Some("blue"));
//! });
//! sim.run();
//! ```

#![warn(missing_docs)]

pub use dsm;
pub use migration;
pub use naming;
pub use proxy_core;
pub use replication;
pub use rpc;
pub use services;
pub use simnet;
pub use wire;

/// The most commonly used items, importable in one line.
pub mod prelude {
    pub use migration::{request_migration, spawn_migratable, ForwardMode, MigratableConfig};
    pub use naming::{spawn_name_server, NameClient};
    pub use proxy_core::{
        AdaptiveParams, Binder, CachingParams, ClientRuntime, Coherence, FactoryRegistry,
        InterfaceDesc, OpDesc, Proxy, ProxySpec, ReadTarget, ServiceBuilder, ServiceObject,
        ServiceServer, Session,
    };
    pub use replication::{client_runtime, spawn_replica_group, Propagation, ReplicaGroupConfig};
    pub use rpc::{ErrorCode, RemoteError, RpcClient, RpcError, RpcServer};
    pub use services;
    pub use simnet::{Ctx, Endpoint, NetworkConfig, NodeId, PortId, SimTime, Simulation};
    pub use wire::Value;
}
