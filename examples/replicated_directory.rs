//! A replicated office directory: read-mostly data served by the
//! nearest replica.
//!
//! Run with: `cargo run --example replicated_directory`
//!
//! Three sites host replicas of a staff directory. Clients at each site
//! bind the same service name and get replica-reading proxies; reads are
//! answered locally-ish, writes go to the primary, and the version floor
//! guarantees everyone reads their own writes.

use std::time::Duration;

use proxide::prelude::*;
use proxide::replication::client_runtime;
use proxide::services::directory::{Directory, DirectoryClient};

fn main() {
    let mut sim = Simulation::new(NetworkConfig::lan(), 11);
    let ns = spawn_name_server(&sim, NodeId(0));

    // Three sites: Paris (1), London (2), Oslo (3). Inter-site links are
    // slow; each client is fast to its own site only.
    {
        let mut net = sim.net();
        for (a, b) in [(1u32, 2u32), (1, 3), (2, 3)] {
            net.set_link_latency(NodeId(a), NodeId(b), Duration::from_millis(12));
        }
        // Clients 11/12/13 sit next to replicas 1/2/3.
        for (client, site) in [(11u32, 1u32), (12, 2), (13, 3)] {
            for s in [1u32, 2, 3] {
                let lat = if s == site {
                    Duration::from_micros(150)
                } else {
                    Duration::from_millis(12)
                };
                net.set_link_latency(NodeId(client), NodeId(s), lat);
            }
        }
    }

    spawn_replica_group(
        &sim,
        ns,
        ReplicaGroupConfig {
            service: "staff".into(),
            nodes: vec![NodeId(1), NodeId(2), NodeId(3)],
            propagation: Propagation::Sync,
            read_target: ReadTarget::Nearest,
        },
        || Box::new(Directory::new()),
    );

    // The Paris client seeds the directory.
    sim.spawn("paris", NodeId(11), move |ctx| {
        let mut rt = client_runtime(ns);
        let mut session = Session::new(&mut rt, ctx);
        let dir = DirectoryClient::bind(&mut session, "staff").expect("bind");
        for (path, name) in [
            ("/eng/alice", "Alice — systems"),
            ("/eng/bob", "Bob — networks"),
            ("/ops/carol", "Carol — sites"),
        ] {
            dir.insert(&mut session, path, name).expect("insert");
        }
        println!(
            "paris: seeded {} entries",
            dir.list(&mut session, "/").unwrap().len()
        );
    });

    // London and Oslo read heavily, each from their nearest replica.
    for (name, node) in [("london", 12u32), ("oslo", 13)] {
        sim.spawn(name, NodeId(node), move |ctx| {
            let mut rt = client_runtime(ns);
            let mut session = Session::new(&mut rt, ctx);
            let dir = DirectoryClient::bind(&mut session, "staff").expect("bind");
            // Wait for the Paris seed (sync-propagated writes over slow
            // inter-site links) to become visible.
            while dir.list(&mut session, "/").expect("list").len() < 3 {
                session.ctx().sleep(Duration::from_millis(10)).unwrap();
            }
            let t0 = session.ctx().now();
            for _ in 0..20 {
                let eng = dir.list(&mut session, "/eng/").expect("list");
                assert_eq!(eng.len(), 2);
                let alice = dir.lookup(&mut session, "/eng/alice").expect("lookup");
                assert!(alice.unwrap().value.starts_with("Alice"));
            }
            let elapsed = session.ctx().now() - t0;
            println!(
                "{}: 40 reads in {} (simulated)",
                session.ctx().name(),
                fmt(elapsed)
            );
            // 40 nearest reads at ~300µs RTT ≈ 12ms ≪ 40 × 24ms remote.
            assert!(
                elapsed < Duration::from_millis(100),
                "reads were not served nearby"
            );
        });
    }

    let report = sim.run();
    println!("simulated time: {}", report.end_time);
    println!("replicated_directory OK");
}

fn fmt(d: Duration) -> String {
    format!("{:.2}ms", d.as_secs_f64() * 1e3)
}
