//! Crash and recovery: a persistent service behind an unchanging proxy.
//!
//! Run with: `cargo run --example persistent_store`
//!
//! A key-value service checkpoints to its node's stable storage every
//! few writes. We kill it mid-session, restart it from the checkpoint,
//! and the client — same proxy handle, no special code — carries on,
//! losing only the writes since the last checkpoint.

use std::time::Duration;

use proxide::prelude::*;
use proxide::proxy_core::{CheckpointPolicy, ServiceServer, StableStore};
use proxide::services::all_factories;
use proxide::services::kv::{KvClient, KvStore};

fn main() {
    let mut sim = Simulation::new(NetworkConfig::lan(), 99);
    let ns = spawn_name_server(&sim, NodeId(0));
    let store = StableStore::new();

    // A kv service that checkpoints after every 3 writes.
    let incarnation_one = ServiceBuilder::new("ledger")
        .factories(all_factories())
        .recovered(CheckpointPolicy::every(store.clone(), 3))
        .object(|| Box::new(KvStore::new()))
        .spawn(&sim, NodeId(1), ns);

    sim.spawn("client", NodeId(2), move |ctx| {
        let mut rt = ClientRuntime::new(ns);
        let mut session = Session::new(&mut rt, ctx);
        let ledger = KvClient::bind(&mut session, "ledger").expect("bind");

        for (k, v) in [("mon", "12"), ("tue", "7"), ("wed", "31"), ("thu", "4")] {
            ledger.put(&mut session, k, v).expect("put");
        }
        println!("client: wrote 4 entries (checkpoint covers the first 3)");

        // ── The service crashes. ────────────────────────────────────
        assert!(session.ctx().kill(incarnation_one));
        match ledger.get(&mut session, "mon") {
            Err(RpcError::Timeout { .. }) => println!("client: service is down (call timed out)"),
            other => panic!("expected an outage, got {other:?}"),
        }

        // ── Operations restarts it on the same node from its disk. ──
        let factories = all_factories();
        let policy = CheckpointPolicy::every(store.clone(), 3);
        session
            .ctx()
            .spawn("ledger-reborn", NodeId(1), move |sctx| {
                let default: Box<dyn ServiceObject> = Box::new(KvStore::new());
                let object = match policy.store.load(sctx.node(), "ledger") {
                    Some(snapshot) => factories
                        .create(proxide::services::kv::TYPE_NAME, &snapshot)
                        .unwrap_or(default),
                    None => default,
                };
                ServiceServer::new("ledger", object, ProxySpec::Stub)
                    .with_factories(factories)
                    .with_checkpointing(policy)
                    .run(sctx, ns);
            });
        session.ctx().sleep(Duration::from_millis(10)).unwrap();

        // Same proxy keeps working: it re-resolves through the name
        // service on its next call.
        let mon = ledger.get(&mut session, "mon").expect("get after recovery");
        let thu = ledger.get(&mut session, "thu").expect("get after recovery");
        println!(
            "client: after recovery mon={:?} (checkpointed), thu={:?} (lost with the crash)",
            mon, thu
        );
        assert_eq!(mon.as_deref(), Some("12"));
        assert_eq!(thu, None);
        println!(
            "client: proxy rebinds performed transparently: {}",
            session.stats(ledger.handle()).rebinds
        );
    });

    sim.run();
    println!("persistent_store OK");
}
