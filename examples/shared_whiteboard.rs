//! A shared whiteboard over distributed shared memory.
//!
//! Run with: `cargo run --example shared_whiteboard`
//!
//! Three workstations share a drawing canvas as DSM pages. Each artist
//! paints its own region — page-aligned, so after the first fault every
//! stroke is a free local memory write — and then everyone reads the
//! whole canvas, faulting in the others' regions once.
//!
//! Contrast with `mobile_document`: same "bring the data to the user"
//! idea, but expressed as memory mapping instead of object migration.

use std::time::Duration;

use proxide::dsm::{spawn_dsm_manager, DsmClient, PageId};
use proxide::prelude::*;

const PAGE: usize = 256;
const ARTISTS: u32 = 3;

fn main() {
    let mut sim = Simulation::new(NetworkConfig::lan(), 21);
    let manager = spawn_dsm_manager(&sim, NodeId(0), PAGE);

    for a in 0..ARTISTS {
        sim.spawn(format!("artist{a}"), NodeId(1 + a), move |ctx| {
            let mut canvas = DsmClient::attach(ctx, manager);
            let my_page = PageId(a);
            let brush = b'A' + a as u8;

            // Paint my region: one fault, then free local strokes.
            let t0 = ctx.now();
            for stroke in 0..PAGE {
                canvas.write(ctx, my_page, stroke, &[brush]).unwrap();
            }
            let paint_time = ctx.now() - t0;
            println!(
                "artist{a}: painted {PAGE} strokes in {:.2}ms ({} fault, {} local)",
                paint_time.as_secs_f64() * 1e3,
                canvas.stats.write_faults,
                canvas.stats.write_hits,
            );

            // Wait for everyone, then view the whole canvas.
            ctx.sleep(Duration::from_millis(50)).unwrap();
            let mut seen = Vec::new();
            for p in 0..ARTISTS {
                let region = canvas.read(ctx, PageId(p), 0, PAGE).unwrap();
                assert!(
                    region.iter().all(|&b| b == b'A' + p as u8),
                    "artist{a} saw a torn region {p}"
                );
                seen.push(region[0] as char);
            }
            println!("artist{a}: sees complete canvas {seen:?}");
        });
    }

    let report = sim.run();
    println!(
        "simulated time: {} | total protocol messages: {} (vs {} strokes painted)",
        report.end_time,
        report.metrics.msgs_sent,
        PAGE as u32 * ARTISTS
    );
    assert!(
        report.metrics.msgs_sent < 100,
        "DSM should need far fewer messages than strokes"
    );
    println!("shared_whiteboard OK");
}
