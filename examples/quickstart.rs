//! Quickstart: one service, one client, through the proxy principle.
//!
//! Run with: `cargo run --example quickstart`
//!
//! The service publishes a *caching* proxy spec; the client just binds
//! and calls. Watch the stats: repeated reads never touch the network.

use proxide::prelude::*;
use proxide::services::kv::{KvClient, KvStore};

fn main() {
    // A deterministic world: LAN latencies, seed 42.
    let mut sim = Simulation::new(NetworkConfig::lan(), 42);

    // The name service bootstraps binding (well-known endpoint).
    let ns = spawn_name_server(&sim, NodeId(0));

    // The SERVICE decides its clients run caching proxies. Changing this
    // one line to `ProxySpec::Stub` changes the distribution strategy of
    // every client — without touching any client code.
    ServiceBuilder::new("settings")
        .spec(ProxySpec::Caching(CachingParams::default()))
        .object(|| Box::new(KvStore::new()))
        .spawn(&sim, NodeId(1), ns);

    sim.spawn("client", NodeId(2), move |ctx| {
        let mut rt = ClientRuntime::new(ns);
        let mut session = Session::new(&mut rt, ctx);
        let kv = KvClient::bind(&mut session, "settings").expect("bind");

        kv.put(&mut session, "theme", "dark").expect("put");
        kv.put(&mut session, "lang", "en").expect("put");

        // Read each key a few times; only the first read of each goes
        // over the network.
        for _ in 0..5 {
            let theme = kv.get(&mut session, "theme").expect("get");
            let lang = kv.get(&mut session, "lang").expect("get");
            assert_eq!(theme.as_deref(), Some("dark"));
            assert_eq!(lang.as_deref(), Some("en"));
        }

        let stats = session.stats(kv.handle());
        println!("invocations : {}", stats.invocations);
        println!("remote calls: {}", stats.remote_calls);
        println!("cache hits  : {}", stats.local_hits);
        assert_eq!(stats.remote_calls, 4, "2 puts + 2 fills");
        assert_eq!(stats.local_hits, 8, "8 of 10 reads from the cache");
    });

    let report = sim.run();
    println!(
        "simulated time: {} | messages: {}",
        report.end_time, report.metrics.msgs_sent
    );
    println!("quickstart OK");
}
