//! A mobile document: migration as an invocation optimization.
//!
//! Run with: `cargo run --example mobile_document`
//!
//! A shared counter ("document edit count") starts on a server node. An
//! editor hammers it; the service's *migratory* proxy checks the object
//! out into the editor's context, turning remote calls into local ones.
//! When a reviewer elsewhere needs it, the service recalls it — all
//! behind the same interface.

use std::time::Duration;

use proxide::prelude::*;
use proxide::services::counter::{Counter, CounterClient};

fn main() {
    let mut sim = Simulation::new(NetworkConfig::lan(), 5);
    let ns = spawn_name_server(&sim, NodeId(0));

    let factories = proxide::services::all_factories();

    // The service chooses a migratory proxy: any client that makes 10
    // calls takes custody of the object.
    ServiceBuilder::new("edit-count")
        .spec(ProxySpec::Migratory { threshold: 10 })
        .factories(factories.clone())
        .object(|| Box::new(Counter::new()))
        .spawn(&sim, NodeId(1), ns);

    let f_editor = factories.clone();
    sim.spawn("editor", NodeId(2), move |ctx| {
        let mut rt = ClientRuntime::new(ns).with_factories(f_editor);
        let mut session = Session::new(&mut rt, ctx);
        let doc = CounterClient::bind(&mut session, "edit-count").expect("bind");

        let t0 = session.ctx().now();
        for _ in 0..200 {
            doc.inc(&mut session).expect("inc");
        }
        let elapsed = session.ctx().now() - t0;
        let s = session.stats(doc.handle());
        println!(
            "editor: 200 increments in {:.2}ms — {} remote, {} local, {} migration(s)",
            elapsed.as_secs_f64() * 1e3,
            s.remote_calls,
            s.local_hits,
            s.migrations
        );
        assert_eq!(s.migrations, 1);
        assert!(s.local_hits >= 190, "post-checkout calls must be local");

        // Stay responsive so the recall (for the reviewer) is honoured.
        for _ in 0..30 {
            session.ctx().sleep(Duration::from_millis(2)).unwrap();
            session.pump();
        }
        println!(
            "editor: checkins = {}",
            session.stats(doc.handle()).checkins
        );
    });

    sim.spawn("reviewer", NodeId(3), move |ctx| {
        ctx.sleep(Duration::from_millis(25)).unwrap();
        let mut rt = ClientRuntime::new(ns).with_factories(factories);
        let mut session = Session::new(&mut rt, ctx);
        let doc = CounterClient::bind(&mut session, "edit-count").expect("bind");
        // The object is checked out to the editor; the service recalls
        // it on our behalf. Retry until the transfer completes.
        for attempt in 0..100 {
            match doc.get(&mut session) {
                Ok(v) => {
                    println!("reviewer: edit count = {v} (after {attempt} retries)");
                    assert_eq!(v, 200);
                    return;
                }
                Err(RpcError::Remote(ref e)) if e.code == ErrorCode::Unavailable => {
                    session.ctx().sleep(Duration::from_millis(2)).unwrap();
                }
                Err(e) => panic!("unexpected error: {e}"),
            }
        }
        panic!("object was never recalled");
    });

    sim.run();
    println!("mobile_document OK");
}
