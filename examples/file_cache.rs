//! The paper's motivating scenario: a remote file service whose proxy
//! caches blocks at the client.
//!
//! Run with: `cargo run --example file_cache`
//!
//! Two engineers on different workstations edit and build against the
//! same source tree. The build re-reads the same blocks over and over —
//! the caching proxy turns those into local hits — while saves by the
//! other engineer push invalidations that keep both caches coherent.

use std::time::Duration;

use proxide::prelude::*;
use proxide::services::file::{BlockFile, FileClient};

fn main() {
    let mut sim = Simulation::new(NetworkConfig::lan(), 7);
    let ns = spawn_name_server(&sim, NodeId(0));

    // File server on node 1, with 100µs of simulated disk time per block.
    // The service chooses invalidation-coherent caching proxies.
    ServiceBuilder::new("src-tree")
        .spec(ProxySpec::Caching(CachingParams {
            coherence: Coherence::Invalidate,
            capacity: 4096,
        }))
        .object(|| Box::new(BlockFile::new().with_disk_time(Duration::from_micros(100))))
        .spawn(&sim, NodeId(1), ns);

    // Engineer A: writes a file, then "builds" (re-reads it many times).
    sim.spawn("engineer-a", NodeId(2), move |ctx| {
        let mut rt = ClientRuntime::new(ns);
        let mut session = Session::new(&mut rt, ctx);
        let fs = FileClient::bind(&mut session, "src-tree").expect("bind");

        for block in 0..8u64 {
            fs.write(&mut session, "main.rs", block, vec![b'a'; 512])
                .expect("write");
        }
        // Three "build passes" over the whole file.
        for _pass in 0..3 {
            for block in 0..8u64 {
                let data = fs.read(&mut session, "main.rs", block).expect("read");
                assert!(data.is_some());
            }
        }
        let s = session.stats(fs.handle());
        println!(
            "engineer-a: {} reads, {} from cache, {} remote",
            24, s.local_hits, s.remote_calls
        );
        // One hit is forfeited when engineer B's save invalidates block 0
        // mid-build — coherence costing exactly one refetch.
        assert!(s.local_hits >= 15, "second and third passes should hit");

        // Keep polling briefly so engineer B's save can invalidate us.
        session.ctx().sleep(Duration::from_millis(30)).unwrap();
        let after_save = fs.read(&mut session, "main.rs", 0).expect("read");
        assert_eq!(
            after_save.as_deref(),
            Some(&[b'B'; 512][..]),
            "must observe engineer B's save"
        );
        println!("engineer-a: observed B's save after invalidation");
    });

    // Engineer B: saves block 0 of the same file mid-build.
    sim.spawn("engineer-b", NodeId(3), move |ctx| {
        ctx.sleep(Duration::from_millis(15)).unwrap();
        let mut rt = ClientRuntime::new(ns);
        let mut session = Session::new(&mut rt, ctx);
        let fs = FileClient::bind(&mut session, "src-tree").expect("bind");
        fs.write(&mut session, "main.rs", 0, vec![b'B'; 512])
            .expect("save");
        println!("engineer-b: saved main.rs block 0");
    });

    let report = sim.run();
    println!(
        "simulated time: {} | messages on the wire: {}",
        report.end_time, report.metrics.msgs_sent
    );
    println!("file_cache OK");
}
